"""Synthetic Mondial: the geography database used throughout the paper.

The real Mondial data set (May, 1999) cannot be redistributed here, so this
module generates a deterministic synthetic database with the same schema
shape and the same join structure the paper's motivating example relies on:

* ``Country`` / ``Province`` / ``City`` with their containment joins,
* ``Lake`` / ``geo_lake``, ``River`` / ``geo_river``,
  ``Mountain`` / ``geo_mountain`` linking geographic features to the
  provinces and countries they lie in.

The motivating example's entities (Lake Tahoe in California/Nevada with an
area of 497 km², Crater Lake in Oregon, ...) are included verbatim so the
demo walk-through of §3 can be reproduced exactly.  The remaining content
is seeded pseudo-random filler that gives the Bayesian models realistic
value distributions.
"""

from __future__ import annotations

import random

from repro.dataset.database import Database
from repro.dataset.schema import Column
from repro.dataset.types import DataType

__all__ = ["load_mondial"]

_REAL_COUNTRIES = [
    # (name, code, capital, population, area_km2)
    ("United States", "USA", "Washington", 331_000_000, 9_834_000),
    ("Canada", "CDN", "Ottawa", 38_000_000, 9_985_000),
    ("Mexico", "MEX", "Mexico City", 126_000_000, 1_964_000),
    ("Germany", "D", "Berlin", 83_000_000, 357_000),
    ("France", "F", "Paris", 67_000_000, 644_000),
    ("Italy", "I", "Rome", 60_000_000, 301_000),
    ("Spain", "E", "Madrid", 47_000_000, 506_000),
    ("Japan", "J", "Tokyo", 126_000_000, 378_000),
    ("China", "CN", "Beijing", 1_402_000_000, 9_597_000),
    ("India", "IND", "New Delhi", 1_380_000_000, 3_287_000),
    ("Brazil", "BR", "Brasilia", 212_000_000, 8_516_000),
    ("Australia", "AUS", "Canberra", 25_000_000, 7_692_000),
    ("Russia", "R", "Moscow", 144_000_000, 17_098_000),
    ("Egypt", "ET", "Cairo", 102_000_000, 1_010_000),
    ("Kenya", "EAK", "Nairobi", 53_000_000, 580_000),
    ("Norway", "N", "Oslo", 5_400_000, 385_000),
    ("Sweden", "S", "Stockholm", 10_400_000, 450_000),
    ("Finland", "SF", "Helsinki", 5_500_000, 338_000),
    ("Switzerland", "CH", "Bern", 8_600_000, 41_000),
    ("Austria", "A", "Vienna", 8_900_000, 84_000),
]

_US_PROVINCES = [
    # (name, population, area_km2)
    ("California", 39_500_000, 423_967),
    ("Nevada", 3_100_000, 286_380),
    ("Oregon", 4_200_000, 254_799),
    ("Washington State", 7_700_000, 184_661),
    ("Montana", 1_070_000, 380_831),
    ("Florida", 21_500_000, 170_312),
    ("Texas", 29_000_000, 695_662),
    ("New York", 20_200_000, 141_297),
    ("Arizona", 7_300_000, 295_234),
    ("Utah", 3_300_000, 219_882),
    ("Colorado", 5_800_000, 269_601),
    ("Michigan", 10_000_000, 250_487),
]

_REAL_LAKES = [
    # (name, area_km2, depth_m, altitude_m, provinces)
    ("Lake Tahoe", 497.0, 501.0, 1897.0, ["California", "Nevada"]),
    ("Crater Lake", 53.2, 594.0, 1883.0, ["Oregon"]),
    ("Fort Peck Lake", 981.0, 67.0, 681.0, ["Montana"]),
    ("Lake Okeechobee", 1715.0, 3.7, 4.0, ["Florida"]),
    ("Great Salt Lake", 4400.0, 10.0, 1280.0, ["Utah"]),
    ("Lake Powell", 653.0, 178.0, 1128.0, ["Utah", "Arizona"]),
    ("Lake Michigan", 58030.0, 281.0, 176.0, ["Michigan"]),
    ("Mono Lake", 183.0, 48.0, 1945.0, ["California"]),
    ("Pyramid Lake", 487.0, 103.0, 1157.0, ["Nevada"]),
    ("Lake Mead", 640.0, 158.0, 372.0, ["Nevada", "Arizona"]),
]

_REAL_RIVERS = [
    # (name, length_km, provinces)
    ("Colorado River", 2330.0, ["Colorado", "Utah", "Arizona", "Nevada", "California"]),
    ("Columbia River", 2000.0, ["Washington State", "Oregon"]),
    ("Missouri River", 3767.0, ["Montana"]),
    ("Rio Grande", 3051.0, ["Colorado", "Texas"]),
    ("Hudson River", 507.0, ["New York"]),
    ("Sacramento River", 719.0, ["California"]),
]

_REAL_MOUNTAINS = [
    # (name, height_m, provinces)
    ("Mount Whitney", 4421.0, ["California"]),
    ("Mount Rainier", 4392.0, ["Washington State"]),
    ("Mount Hood", 3429.0, ["Oregon"]),
    ("Denali Peak", 6190.0, ["Montana"]),
    ("Mount Elbert", 4401.0, ["Colorado"]),
    ("Wheeler Peak", 3982.0, ["Nevada"]),
]

_CITY_SUFFIXES = ["ville", "burg", " City", " Falls", " Springs", "ton", " Harbor"]
_FEATURE_SYLLABLES = [
    "Kar", "Bel", "Tor", "Mira", "Vel", "Oro", "Lin", "San", "Gran", "Alta",
    "Nor", "Sil", "Cal", "Mon", "Ria", "Del", "Ash", "Wind", "Stone", "Clear",
]


def _invent_name(rng: random.Random, suffix: str = "") -> str:
    parts = rng.sample(_FEATURE_SYLLABLES, 2)
    return "".join(parts).capitalize() + suffix


def load_mondial(
    seed: int = 7,
    extra_provinces_per_country: int = 3,
    extra_cities_per_province: int = 2,
    extra_lakes: int = 60,
    extra_rivers: int = 50,
    extra_mountains: int = 40,
) -> Database:
    """Build the synthetic Mondial database.

    Args:
        seed: seed for the deterministic pseudo-random filler.
        extra_provinces_per_country: generated provinces per non-US country.
        extra_cities_per_province: generated cities per province.
        extra_lakes / extra_rivers / extra_mountains: generated geographic
            features on top of the real, hand-curated ones.
    """
    rng = random.Random(seed)
    database = Database("mondial")

    country = database.create_table(
        "Country",
        [
            Column("Name", DataType.TEXT, primary_key=True),
            Column("Code", DataType.TEXT),
            Column("Capital", DataType.TEXT),
            Column("Population", DataType.INT),
            Column("Area", DataType.DECIMAL),
        ],
    )
    province = database.create_table(
        "Province",
        [
            Column("Name", DataType.TEXT, primary_key=True),
            Column("Country", DataType.TEXT),
            Column("Population", DataType.INT),
            Column("Area", DataType.DECIMAL),
            Column("Capital", DataType.TEXT, nullable=True),
        ],
    )
    city = database.create_table(
        "City",
        [
            Column("Name", DataType.TEXT, primary_key=True),
            Column("Country", DataType.TEXT),
            Column("Province", DataType.TEXT),
            Column("Population", DataType.INT),
            Column("Longitude", DataType.DECIMAL),
            Column("Latitude", DataType.DECIMAL),
        ],
    )
    lake = database.create_table(
        "Lake",
        [
            Column("Name", DataType.TEXT, primary_key=True),
            Column("Area", DataType.DECIMAL),
            Column("Depth", DataType.DECIMAL),
            Column("Altitude", DataType.DECIMAL, nullable=True),
            Column("Type", DataType.TEXT, nullable=True),
        ],
    )
    geo_lake = database.create_table(
        "geo_lake",
        [
            Column("Lake", DataType.TEXT),
            Column("Country", DataType.TEXT),
            Column("Province", DataType.TEXT),
        ],
    )
    river = database.create_table(
        "River",
        [
            Column("Name", DataType.TEXT, primary_key=True),
            Column("Length", DataType.DECIMAL),
            Column("SourceAltitude", DataType.DECIMAL, nullable=True),
        ],
    )
    geo_river = database.create_table(
        "geo_river",
        [
            Column("River", DataType.TEXT),
            Column("Country", DataType.TEXT),
            Column("Province", DataType.TEXT),
        ],
    )
    mountain = database.create_table(
        "Mountain",
        [
            Column("Name", DataType.TEXT, primary_key=True),
            Column("Height", DataType.DECIMAL),
            Column("Type", DataType.TEXT, nullable=True),
        ],
    )
    geo_mountain = database.create_table(
        "geo_mountain",
        [
            Column("Mountain", DataType.TEXT),
            Column("Country", DataType.TEXT),
            Column("Province", DataType.TEXT),
        ],
    )

    # ------------------------------------------------------------------
    # Countries and provinces
    # ------------------------------------------------------------------
    provinces_by_country: dict[str, list[str]] = {}
    for name, code, capital, population, area in _REAL_COUNTRIES:
        country.insert((name, code, capital, population, float(area)))
        provinces_by_country[name] = []

    lake_types = ["natural", "reservoir", "salt", "crater"]
    usa = "United States"
    for name, population, area in _US_PROVINCES:
        capital = _invent_name(rng, " City")
        province.insert((name, usa, population, float(area), capital))
        provinces_by_country[usa].append(name)

    for country_name, __, __, population, area in _REAL_COUNTRIES:
        if country_name == usa:
            continue
        for __ in range(extra_provinces_per_country):
            province_name = _invent_name(rng) + " Province"
            if province_name in provinces_by_country.get(country_name, []):
                continue
            share = rng.uniform(0.01, 0.2)
            province.insert(
                (
                    province_name,
                    country_name,
                    int(population * share),
                    round(float(area) * share, 1),
                    _invent_name(rng, " City"),
                )
            )
            provinces_by_country[country_name].append(province_name)

    # ------------------------------------------------------------------
    # Cities
    # ------------------------------------------------------------------
    for country_name, province_names in provinces_by_country.items():
        for province_name in province_names:
            for __ in range(extra_cities_per_province):
                city_name = _invent_name(rng, rng.choice(_CITY_SUFFIXES))
                city.insert(
                    (
                        city_name,
                        country_name,
                        province_name,
                        rng.randint(20_000, 4_000_000),
                        round(rng.uniform(-180.0, 180.0), 2),
                        round(rng.uniform(-60.0, 70.0), 2),
                    )
                )

    # ------------------------------------------------------------------
    # Lakes / rivers / mountains with their geo_* link tables
    # ------------------------------------------------------------------
    all_provinces = [
        (province_name, country_name)
        for country_name, names in provinces_by_country.items()
        for province_name in names
    ]

    for name, area, depth, altitude, province_names in _REAL_LAKES:
        lake.insert((name, area, depth, altitude, rng.choice(lake_types)))
        for province_name in province_names:
            geo_lake.insert((name, usa, province_name))
    for __ in range(extra_lakes):
        name = "Lake " + _invent_name(rng)
        lake.insert(
            (
                name,
                round(rng.uniform(1.0, 30_000.0), 1),
                round(rng.uniform(2.0, 900.0), 1),
                round(rng.uniform(0.0, 4_000.0), 1),
                rng.choice(lake_types),
            )
        )
        province_name, country_name = rng.choice(all_provinces)
        geo_lake.insert((name, country_name, province_name))

    for name, length, province_names in _REAL_RIVERS:
        river.insert((name, length, round(rng.uniform(100.0, 3_500.0), 1)))
        for province_name in province_names:
            geo_river.insert((name, usa, province_name))
    for __ in range(extra_rivers):
        name = _invent_name(rng, " River")
        river.insert(
            (name, round(rng.uniform(50.0, 6_000.0), 1),
             round(rng.uniform(100.0, 5_000.0), 1))
        )
        province_name, country_name = rng.choice(all_provinces)
        geo_river.insert((name, country_name, province_name))

    mountain_types = ["volcano", "granite", "fold", "dome"]
    for name, height, province_names in _REAL_MOUNTAINS:
        mountain.insert((name, height, rng.choice(mountain_types)))
        for province_name in province_names:
            geo_mountain.insert((name, usa, province_name))
    for __ in range(extra_mountains):
        name = "Mount " + _invent_name(rng)
        mountain.insert(
            (name, round(rng.uniform(500.0, 8_000.0), 1), rng.choice(mountain_types))
        )
        province_name, country_name = rng.choice(all_provinces)
        geo_mountain.insert((name, country_name, province_name))

    # ------------------------------------------------------------------
    # Foreign keys (the schema graph)
    # ------------------------------------------------------------------
    database.link("Province.Country", "Country.Name")
    database.link("City.Country", "Country.Name")
    database.link("City.Province", "Province.Name")
    database.link("geo_lake.Lake", "Lake.Name")
    database.link("geo_lake.Country", "Country.Name")
    database.link("geo_lake.Province", "Province.Name")
    database.link("geo_river.River", "River.Name")
    database.link("geo_river.Country", "Country.Name")
    database.link("geo_river.Province", "Province.Name")
    database.link("geo_mountain.Mountain", "Mountain.Name")
    database.link("geo_mountain.Country", "Country.Name")
    database.link("geo_mountain.Province", "Province.Name")
    return database
