"""Generic synthetic database generator.

Used by property-based tests and the scalability benchmark: generates a
database with a configurable number of tables arranged in a chain, star or
random-tree schema, with controllable row counts and value vocabularies.
The generator is deterministic given its seed.
"""

from __future__ import annotations

import random
from typing import Literal, Optional

from repro.dataset.database import Database
from repro.dataset.schema import Column
from repro.dataset.types import DataType
from repro.errors import WorkloadError
from repro.storage import StorageBackend

__all__ = ["generate_synthetic_database"]

_WORDS = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
    "oscar", "papa", "quebec", "romeo", "sierra", "tango", "uniform",
    "victor", "whiskey", "xray", "yankee", "zulu",
]

Topology = Literal["chain", "star", "random"]


def generate_synthetic_database(
    num_tables: int = 4,
    rows_per_table: int = 200,
    extra_columns: int = 2,
    topology: Topology = "chain",
    seed: int = 0,
    name: str = "synthetic",
    backend: Optional[StorageBackend] = None,
) -> Database:
    """Generate a synthetic relational database.

    Every table ``T{i}`` has an integer key ``id``, a text ``label``, a
    numeric ``measure`` plus ``extra_columns`` additional attributes.
    Non-root tables carry a foreign key ``parent_id`` to their parent table
    according to the chosen topology.

    Args:
        num_tables: number of tables (>= 1).
        rows_per_table: rows inserted into each table.
        extra_columns: additional attribute columns per table.
        topology: ``chain`` (T1-T2-T3-...), ``star`` (all link to T1) or
            ``random`` (each table links to a random earlier table).
        seed: RNG seed controlling both structure and content.
        name: database name.
        backend: storage backend for the generated tables (the process
            default when omitted) — differential tests generate the same
            seeded database once per backend under comparison.
    """
    if num_tables < 1:
        raise WorkloadError("num_tables must be at least 1")
    if rows_per_table < 1:
        raise WorkloadError("rows_per_table must be at least 1")
    rng = random.Random(seed)
    database = Database(name, backend=backend)

    parents: dict[int, int] = {}
    for index in range(1, num_tables):
        if topology == "chain":
            parents[index] = index - 1
        elif topology == "star":
            parents[index] = 0
        elif topology == "random":
            parents[index] = rng.randint(0, index - 1)
        else:
            raise WorkloadError(f"unknown topology: {topology!r}")

    for index in range(num_tables):
        columns = [
            Column("id", DataType.INT, primary_key=True),
            Column("label", DataType.TEXT),
            Column("measure", DataType.DECIMAL),
        ]
        if index in parents:
            columns.append(Column("parent_id", DataType.INT))
        for extra in range(extra_columns):
            columns.append(Column(f"attr{extra}", DataType.TEXT))
        table = database.create_table(f"T{index}", columns)

        parent_rows = rows_per_table if index in parents else None
        for row_id in range(rows_per_table):
            row: list = [
                row_id,
                f"{rng.choice(_WORDS)}-{rng.choice(_WORDS)}-{index}",
                round(rng.uniform(0.0, 1_000.0), 2),
            ]
            if index in parents:
                row.append(rng.randint(0, parent_rows - 1))
            for __ in range(extra_columns):
                row.append(rng.choice(_WORDS))
            table.insert(row)

    for index, parent_index in parents.items():
        database.link(f"T{index}.parent_id", f"T{parent_index}.id")
    return database
