"""Generic synthetic database generator.

Used by property-based tests and the scalability benchmark: generates a
database with a configurable number of tables arranged in a chain, star or
random-tree schema, with controllable row counts and value vocabularies.
The generator is deterministic given its seed.
"""

from __future__ import annotations

import bisect
import random
from typing import Literal, Optional

from repro.dataset.database import Database
from repro.dataset.schema import Column
from repro.dataset.types import DataType
from repro.errors import WorkloadError
from repro.storage import StorageBackend

__all__ = ["generate_synthetic_database"]

_WORDS = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
    "oscar", "papa", "quebec", "romeo", "sierra", "tango", "uniform",
    "victor", "whiskey", "xray", "yankee", "zulu",
]

Topology = Literal["chain", "star", "random"]


def generate_synthetic_database(
    num_tables: int = 4,
    rows_per_table: int = 200,
    extra_columns: int = 2,
    topology: Topology = "chain",
    seed: int = 0,
    name: str = "synthetic",
    backend: Optional[StorageBackend] = None,
    skew: float = 0.0,
    dangling_fk_fraction: float = 0.0,
) -> Database:
    """Generate a synthetic relational database.

    Every table ``T{i}`` has an integer key ``id``, a text ``label``, a
    numeric ``measure`` plus ``extra_columns`` additional attributes.
    Non-root tables carry a foreign key ``parent_id`` to their parent table
    according to the chosen topology.

    Args:
        num_tables: number of tables (>= 1).
        rows_per_table: rows inserted into each table.
        extra_columns: additional attribute columns per table.
        topology: ``chain`` (T1-T2-T3-...), ``star`` (all link to T1) or
            ``random`` (each table links to a random earlier table).
        seed: RNG seed controlling both structure and content.
        name: database name.
        backend: storage backend for the generated tables (the process
            default when omitted) — differential tests generate the same
            seeded database once per backend under comparison.
        skew: Zipf exponent for foreign-key values.  ``0.0`` (the
            default) keeps the historical uniform draw; larger values
            concentrate references on low parent ids (``s≈1`` is classic
            Zipf), giving joins the hot-key/long-tail shape real data
            has and making sketch-based cardinality estimates diverge
            from uniform-containment ones.
        dangling_fk_fraction: fraction of foreign-key values (in
            ``[0, 1]``) pointing *past* the parent table's id range —
            dangling references that can never join.  Bloom filters on
            the parent key detect these without probing.
    """
    if num_tables < 1:
        raise WorkloadError("num_tables must be at least 1")
    if rows_per_table < 1:
        raise WorkloadError("rows_per_table must be at least 1")
    if skew < 0:
        raise WorkloadError("skew must be non-negative")
    if not 0.0 <= dangling_fk_fraction <= 1.0:
        raise WorkloadError("dangling_fk_fraction must be in [0, 1]")
    rng = random.Random(seed)
    database = Database(name, backend=backend)

    parents: dict[int, int] = {}
    for index in range(1, num_tables):
        if topology == "chain":
            parents[index] = index - 1
        elif topology == "star":
            parents[index] = 0
        elif topology == "random":
            parents[index] = rng.randint(0, index - 1)
        else:
            raise WorkloadError(f"unknown topology: {topology!r}")

    # Inverse-CDF table for the Zipf draw over parent ids, built lazily
    # (every non-root table shares the same parent-id range).  Kept off
    # the rng stream entirely when skew is 0 so the default databases are
    # byte-identical to the generator's historical output.
    zipf_cdf: list[float] = []
    if skew > 0:
        total = 0.0
        for rank in range(rows_per_table):
            total += (rank + 1.0) ** -skew
            zipf_cdf.append(total)
        zipf_cdf = [weight / total for weight in zipf_cdf]

    def draw_parent_id(parent_rows: int) -> int:
        if dangling_fk_fraction > 0 and rng.random() < dangling_fk_fraction:
            # Past the end of the parent's id range: never joins.
            return rng.randint(parent_rows, 2 * parent_rows - 1)
        if skew > 0:
            return bisect.bisect_left(zipf_cdf, rng.random())
        return rng.randint(0, parent_rows - 1)

    for index in range(num_tables):
        columns = [
            Column("id", DataType.INT, primary_key=True),
            Column("label", DataType.TEXT),
            Column("measure", DataType.DECIMAL),
        ]
        if index in parents:
            columns.append(Column("parent_id", DataType.INT))
        for extra in range(extra_columns):
            columns.append(Column(f"attr{extra}", DataType.TEXT))
        table = database.create_table(f"T{index}", columns)

        parent_rows = rows_per_table if index in parents else None
        for row_id in range(rows_per_table):
            row: list = [
                row_id,
                f"{rng.choice(_WORDS)}-{rng.choice(_WORDS)}-{index}",
                round(rng.uniform(0.0, 1_000.0), 2),
            ]
            if index in parents:
                row.append(draw_parent_id(parent_rows))
            for __ in range(extra_columns):
                row.append(rng.choice(_WORDS))
            table.insert(row)

    for index, parent_index in parents.items():
        database.link(f"T{index}.parent_id", f"T{parent_index}.id")
    return database
