"""Synthetic IMDB: the movie database offered in the demo (§3).

Schema shape follows the classic IMDB relational export: movies, people,
cast membership, directing credits, genres and a movie-genre link table.
A hand-curated core of well-known titles and people keeps interactive
examples meaningful; seeded pseudo-random filler provides volume for the
statistics and the Bayesian models.
"""

from __future__ import annotations

import random

from repro.dataset.database import Database
from repro.dataset.schema import Column
from repro.dataset.types import DataType

__all__ = ["load_imdb"]

_REAL_MOVIES = [
    # (title, year, rating, votes, runtime_min)
    ("The Shawshank Redemption", 1994, 9.3, 2_600_000, 142),
    ("The Godfather", 1972, 9.2, 1_800_000, 175),
    ("The Dark Knight", 2008, 9.0, 2_500_000, 152),
    ("Pulp Fiction", 1994, 8.9, 2_000_000, 154),
    ("Inception", 2010, 8.8, 2_300_000, 148),
    ("Fight Club", 1999, 8.8, 2_100_000, 139),
    ("Forrest Gump", 1994, 8.8, 2_000_000, 142),
    ("The Matrix", 1999, 8.7, 1_900_000, 136),
    ("Goodfellas", 1990, 8.7, 1_100_000, 145),
    ("Interstellar", 2014, 8.6, 1_800_000, 169),
    ("Parasite", 2019, 8.5, 800_000, 132),
    ("Whiplash", 2014, 8.5, 900_000, 106),
    ("The Prestige", 2006, 8.5, 1_300_000, 130),
    ("Memento", 2000, 8.4, 1_200_000, 113),
    ("Alien", 1979, 8.5, 900_000, 117),
]

_REAL_PEOPLE = [
    # (name, birth_year)
    ("Morgan Freeman", 1937),
    ("Tim Robbins", 1958),
    ("Marlon Brando", 1924),
    ("Al Pacino", 1940),
    ("Christian Bale", 1974),
    ("Heath Ledger", 1979),
    ("John Travolta", 1954),
    ("Samuel Jackson", 1948),
    ("Leonardo DiCaprio", 1974),
    ("Brad Pitt", 1963),
    ("Tom Hanks", 1956),
    ("Keanu Reeves", 1964),
    ("Robert De Niro", 1943),
    ("Matthew McConaughey", 1969),
    ("Christopher Nolan", 1970),
    ("Quentin Tarantino", 1963),
    ("Martin Scorsese", 1942),
    ("David Fincher", 1962),
    ("Ridley Scott", 1937),
    ("Bong Joon-ho", 1969),
    ("Sigourney Weaver", 1949),
]

_REAL_CAST = [
    # (movie title, person name, role)
    ("The Shawshank Redemption", "Morgan Freeman", "lead"),
    ("The Shawshank Redemption", "Tim Robbins", "lead"),
    ("The Godfather", "Marlon Brando", "lead"),
    ("The Godfather", "Al Pacino", "lead"),
    ("The Dark Knight", "Christian Bale", "lead"),
    ("The Dark Knight", "Heath Ledger", "villain"),
    ("Pulp Fiction", "John Travolta", "lead"),
    ("Pulp Fiction", "Samuel Jackson", "lead"),
    ("Inception", "Leonardo DiCaprio", "lead"),
    ("Fight Club", "Brad Pitt", "lead"),
    ("Forrest Gump", "Tom Hanks", "lead"),
    ("The Matrix", "Keanu Reeves", "lead"),
    ("Goodfellas", "Robert De Niro", "lead"),
    ("Interstellar", "Matthew McConaughey", "lead"),
    ("The Prestige", "Christian Bale", "lead"),
    ("Alien", "Sigourney Weaver", "lead"),
]

_REAL_DIRECTORS = [
    # (movie title, director name)
    ("The Dark Knight", "Christopher Nolan"),
    ("Inception", "Christopher Nolan"),
    ("Interstellar", "Christopher Nolan"),
    ("The Prestige", "Christopher Nolan"),
    ("Memento", "Christopher Nolan"),
    ("Pulp Fiction", "Quentin Tarantino"),
    ("Goodfellas", "Martin Scorsese"),
    ("Fight Club", "David Fincher"),
    ("Alien", "Ridley Scott"),
    ("Parasite", "Bong Joon-ho"),
]

_GENRES = [
    "Drama", "Crime", "Action", "Thriller", "Sci-Fi", "Comedy",
    "Romance", "Horror", "Adventure", "Mystery", "Biography", "War",
]

_TITLE_WORDS = [
    "Midnight", "Echo", "Shadow", "Crimson", "Silent", "Broken", "Last",
    "Hidden", "Golden", "Iron", "Lost", "Winter", "Electric", "Paper",
    "Glass", "Burning", "Distant", "Final", "Forgotten", "Northern",
]
_TITLE_NOUNS = [
    "Horizon", "Garden", "Protocol", "Empire", "Voyage", "Letters",
    "Harbor", "Signal", "Kingdom", "Paradox", "Station", "Covenant",
    "Symphony", "Frontier", "Requiem", "Mirage",
]
_FIRST_NAMES = [
    "Ava", "Noah", "Mia", "Liam", "Zoe", "Ethan", "Lena", "Owen", "Iris",
    "Felix", "Nora", "Jonas", "Clara", "Hugo", "Stella", "Marco",
]
_LAST_NAMES = [
    "Kowalski", "Navarro", "Lindqvist", "Okafor", "Tanaka", "Moreau",
    "Petrov", "Silva", "Haddad", "Novak", "Fischer", "Romano",
]


def load_imdb(
    seed: int = 11,
    extra_movies: int = 150,
    extra_people: int = 120,
) -> Database:
    """Build the synthetic IMDB database."""
    rng = random.Random(seed)
    database = Database("imdb")

    movie = database.create_table(
        "Movie",
        [
            Column("Id", DataType.INT, primary_key=True),
            Column("Title", DataType.TEXT),
            Column("Year", DataType.INT),
            Column("Rating", DataType.DECIMAL),
            Column("Votes", DataType.INT),
            Column("Runtime", DataType.INT),
        ],
    )
    person = database.create_table(
        "Person",
        [
            Column("Id", DataType.INT, primary_key=True),
            Column("Name", DataType.TEXT),
            Column("BirthYear", DataType.INT),
        ],
    )
    cast = database.create_table(
        "Cast",
        [
            Column("MovieId", DataType.INT),
            Column("PersonId", DataType.INT),
            Column("Role", DataType.TEXT),
        ],
    )
    directs = database.create_table(
        "Directs",
        [
            Column("MovieId", DataType.INT),
            Column("PersonId", DataType.INT),
        ],
    )
    genre = database.create_table(
        "Genre",
        [
            Column("Id", DataType.INT, primary_key=True),
            Column("Name", DataType.TEXT),
        ],
    )
    movie_genre = database.create_table(
        "MovieGenre",
        [
            Column("MovieId", DataType.INT),
            Column("GenreId", DataType.INT),
        ],
    )

    # People ------------------------------------------------------------
    person_ids: list[int] = []
    for person_id, (name, birth_year) in enumerate(_REAL_PEOPLE, start=1):
        person.insert((person_id, name, birth_year))
        person_ids.append(person_id)
    next_person_id = len(_REAL_PEOPLE) + 1
    for __ in range(extra_people):
        name = f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
        person.insert((next_person_id, name, rng.randint(1930, 2000)))
        person_ids.append(next_person_id)
        next_person_id += 1

    # Genres ------------------------------------------------------------
    for genre_id, name in enumerate(_GENRES, start=1):
        genre.insert((genre_id, name))

    # Movies, cast, directors, genres ------------------------------------
    roles = ["lead", "supporting", "cameo", "villain", "narrator"]

    def link_movie(movie_id: int) -> None:
        for person_id in rng.sample(person_ids, rng.randint(2, 5)):
            cast.insert((movie_id, person_id, rng.choice(roles)))
        directs.insert((movie_id, rng.choice(person_ids)))
        for genre_id in rng.sample(range(1, len(_GENRES) + 1), rng.randint(1, 3)):
            movie_genre.insert((movie_id, genre_id))

    movie_id_by_title: dict[str, int] = {}
    person_id_by_name: dict[str, int] = {
        name: person_id
        for person_id, (name, __) in enumerate(_REAL_PEOPLE, start=1)
    }
    for movie_id, (title, year, rating, votes, runtime) in enumerate(
        _REAL_MOVIES, start=1
    ):
        movie.insert((movie_id, title, year, rating, votes, runtime))
        movie_id_by_title[title] = movie_id
        link_movie(movie_id)
    # Curated, always-present credits so the famous pairings the examples
    # rely on (e.g. DiCaprio in Inception) exist regardless of the seed.
    for title, person_name, role in _REAL_CAST:
        if title in movie_id_by_title and person_name in person_id_by_name:
            cast.insert((movie_id_by_title[title], person_id_by_name[person_name], role))
    for title, person_name in _REAL_DIRECTORS:
        if title in movie_id_by_title and person_name in person_id_by_name:
            directs.insert((movie_id_by_title[title], person_id_by_name[person_name]))
    next_movie_id = len(_REAL_MOVIES) + 1
    for __ in range(extra_movies):
        title = f"{rng.choice(_TITLE_WORDS)} {rng.choice(_TITLE_NOUNS)}"
        movie.insert(
            (
                next_movie_id,
                title,
                rng.randint(1960, 2023),
                round(rng.uniform(3.0, 9.0), 1),
                rng.randint(1_000, 2_000_000),
                rng.randint(80, 200),
            )
        )
        link_movie(next_movie_id)
        next_movie_id += 1

    # Foreign keys -------------------------------------------------------
    database.link("Cast.MovieId", "Movie.Id")
    database.link("Cast.PersonId", "Person.Id")
    database.link("Directs.MovieId", "Movie.Id")
    database.link("Directs.PersonId", "Person.Id")
    database.link("MovieGenre.MovieId", "Movie.Id")
    database.link("MovieGenre.GenreId", "Genre.Id")
    return database
