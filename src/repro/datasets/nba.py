"""Synthetic NBA: the basketball database offered in the demo (§3).

Teams, players, coaches and games with the obvious foreign keys.  A small
hand-curated core (all 30 franchises, a handful of famous players) plus
seeded pseudo-random rosters and schedules.
"""

from __future__ import annotations

import datetime
import random

from repro.dataset.database import Database
from repro.dataset.schema import Column
from repro.dataset.types import DataType

__all__ = ["load_nba"]

_TEAMS = [
    # (name, city, conference)
    ("Lakers", "Los Angeles", "West"),
    ("Warriors", "San Francisco", "West"),
    ("Celtics", "Boston", "East"),
    ("Bulls", "Chicago", "East"),
    ("Heat", "Miami", "East"),
    ("Spurs", "San Antonio", "West"),
    ("Knicks", "New York", "East"),
    ("Nets", "Brooklyn", "East"),
    ("Bucks", "Milwaukee", "East"),
    ("Suns", "Phoenix", "West"),
    ("Mavericks", "Dallas", "West"),
    ("Nuggets", "Denver", "West"),
    ("Clippers", "Los Angeles", "West"),
    ("Raptors", "Toronto", "East"),
    ("Sixers", "Philadelphia", "East"),
    ("Grizzlies", "Memphis", "West"),
    ("Kings", "Sacramento", "West"),
    ("Hawks", "Atlanta", "East"),
    ("Cavaliers", "Cleveland", "East"),
    ("Timberwolves", "Minneapolis", "West"),
]

_REAL_PLAYERS = [
    # (name, team, position, height_cm, ppg)
    ("LeBron James", "Lakers", "SF", 206, 27.1),
    ("Stephen Curry", "Warriors", "PG", 188, 24.8),
    ("Jayson Tatum", "Celtics", "SF", 203, 26.9),
    ("Giannis Antetokounmpo", "Bucks", "PF", 211, 29.9),
    ("Kevin Durant", "Suns", "SF", 208, 27.3),
    ("Luka Doncic", "Mavericks", "PG", 201, 28.4),
    ("Nikola Jokic", "Nuggets", "C", 211, 24.5),
    ("Jimmy Butler", "Heat", "SF", 201, 21.4),
    ("Joel Embiid", "Sixers", "C", 213, 30.6),
    ("Ja Morant", "Grizzlies", "PG", 188, 26.2),
]

_FIRST = ["Marcus", "Tyrese", "Jalen", "Devin", "Andre", "Malik", "Trey",
          "Jordan", "Cameron", "Darius", "Isaiah", "Kyle", "Grant", "Victor"]
_LAST = ["Johnson", "Williams", "Brooks", "Carter", "Mitchell", "Porter",
         "Thompson", "Edwards", "Murray", "Bridges", "Hayes", "Bennett"]
_POSITIONS = ["PG", "SG", "SF", "PF", "C"]


def load_nba(
    seed: int = 23,
    players_per_team: int = 10,
    games: int = 250,
) -> Database:
    """Build the synthetic NBA database."""
    rng = random.Random(seed)
    database = Database("nba")

    team = database.create_table(
        "Team",
        [
            Column("Name", DataType.TEXT, primary_key=True),
            Column("City", DataType.TEXT),
            Column("Conference", DataType.TEXT),
            Column("Founded", DataType.INT),
        ],
    )
    player = database.create_table(
        "Player",
        [
            Column("Id", DataType.INT, primary_key=True),
            Column("Name", DataType.TEXT),
            Column("Team", DataType.TEXT),
            Column("Position", DataType.TEXT),
            Column("Height", DataType.INT),
            Column("PointsPerGame", DataType.DECIMAL),
        ],
    )
    coach = database.create_table(
        "Coach",
        [
            Column("Id", DataType.INT, primary_key=True),
            Column("Name", DataType.TEXT),
            Column("Team", DataType.TEXT),
            Column("Wins", DataType.INT),
            Column("Losses", DataType.INT),
        ],
    )
    game = database.create_table(
        "Game",
        [
            Column("Id", DataType.INT, primary_key=True),
            Column("HomeTeam", DataType.TEXT),
            Column("AwayTeam", DataType.TEXT),
            Column("HomeScore", DataType.INT),
            Column("AwayScore", DataType.INT),
            Column("PlayedOn", DataType.DATE),
        ],
    )

    team_names = [name for name, __, __ in _TEAMS]
    for name, city, conference in _TEAMS:
        team.insert((name, city, conference, rng.randint(1946, 1995)))

    player_id = 1
    for name, team_name, position, height, ppg in _REAL_PLAYERS:
        player.insert((player_id, name, team_name, position, height, ppg))
        player_id += 1
    for team_name in team_names:
        for __ in range(players_per_team):
            name = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
            player.insert(
                (
                    player_id,
                    name,
                    team_name,
                    rng.choice(_POSITIONS),
                    rng.randint(175, 222),
                    round(rng.uniform(2.0, 28.0), 1),
                )
            )
            player_id += 1

    for coach_id, team_name in enumerate(team_names, start=1):
        name = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
        coach.insert((coach_id, name, team_name, rng.randint(10, 70),
                      rng.randint(10, 70)))

    season_start = datetime.date(2023, 10, 24)
    for game_id in range(1, games + 1):
        home, away = rng.sample(team_names, 2)
        game.insert(
            (
                game_id,
                home,
                away,
                rng.randint(85, 135),
                rng.randint(85, 135),
                season_start + datetime.timedelta(days=rng.randint(0, 170)),
            )
        )

    database.link("Player.Team", "Team.Name")
    database.link("Coach.Team", "Team.Name")
    database.link("Game.HomeTeam", "Team.Name")
    database.link("Game.AwayTeam", "Team.Name")
    return database
