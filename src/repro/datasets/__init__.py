"""Synthetic source databases: Mondial, IMDB, NBA and a generic generator.

These stand in for the real data sets the demo uses (which cannot be
redistributed); they reproduce the same schema shapes and join structure.
"""

from typing import Callable

from repro.dataset.database import Database
from repro.datasets.imdb import load_imdb
from repro.datasets.mondial import load_mondial
from repro.datasets.nba import load_nba
from repro.datasets.synthetic import generate_synthetic_database

__all__ = [
    "available_databases",
    "generate_synthetic_database",
    "load_database_by_name",
    "load_imdb",
    "load_mondial",
    "load_nba",
]

_LOADERS: dict[str, Callable[[], Database]] = {
    "mondial": load_mondial,
    "imdb": load_imdb,
    "nba": load_nba,
}


def available_databases() -> list[str]:
    """Names of the bundled demo databases."""
    return sorted(_LOADERS)


def load_database_by_name(name: str) -> Database:
    """Load one of the bundled demo databases by name."""
    normalized = name.strip().lower()
    if normalized not in _LOADERS:
        raise KeyError(
            f"unknown database {name!r}; available: {available_databases()}"
        )
    return _LOADERS[normalized]()
