"""Constraint degradation: deriving looser specs from ground-truth cases.

The paper studies what happens "as user constraints became loose
(containing constraints with disjunctions, value ranges, etc.)" and notes a
special regime "when there were too many missing values" (§2.4).  Starting
from a case's exact sample rows, this module derives mapping specs at the
looseness levels the evaluation sweeps over:

========== ============================================================
level      meaning
========== ============================================================
exact      complete sample rows with exact values (high resolution)
partial    one cell per row left blank
disjunct   every text cell becomes a disjunction with extra distractors
range      every numeric cell becomes a value range around the truth
mixed      disjunctions for text cells, ranges for numeric cells
sparse     only one cell per row kept, metadata for the dropped numerics
metadata   a single anchor cell; every other column metadata-only
========== ============================================================
"""

from __future__ import annotations

import enum
import random
from typing import Any, Optional

from repro.constraints.metadata import (
    MetadataConjunction,
    MetadataConstraint,
    MetadataField,
    MetadataPredicate,
)
from repro.constraints.sample import SampleConstraint
from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue, OneOf, Range, ValueConstraint
from repro.dataset.catalog import MetadataCatalog
from repro.dataset.database import Database
from repro.dataset.types import DataType
from repro.errors import WorkloadError
from repro.workloads.generator import WorkloadCase

__all__ = ["ResolutionLevel", "spec_for_level", "DEFAULT_SWEEP_LEVELS"]


class ResolutionLevel(enum.Enum):
    """Looseness levels used by the evaluation sweeps."""

    EXACT = "exact"
    PARTIAL = "partial"
    DISJUNCTION = "disjunct"
    RANGE = "range"
    MIXED = "mixed"
    SPARSE = "sparse"
    METADATA = "metadata"

    @classmethod
    def from_name(cls, name: str) -> "ResolutionLevel":
        """Resolve a level from its textual name."""
        normalized = name.strip().lower()
        for level in cls:
            if level.value == normalized or level.name.lower() == normalized:
                return level
        raise WorkloadError(f"unknown resolution level: {name!r}")


DEFAULT_SWEEP_LEVELS = (
    ResolutionLevel.EXACT,
    ResolutionLevel.PARTIAL,
    ResolutionLevel.DISJUNCTION,
    ResolutionLevel.RANGE,
    ResolutionLevel.MIXED,
    ResolutionLevel.SPARSE,
)


def _distractors(
    database: Database, case: WorkloadCase, position: int, value: Any,
    count: int, rng: random.Random,
) -> list[Any]:
    """Draw distractor values from the same source column as ``value``."""
    ref = case.ground_truth.projections[position]
    # distinct_values returns a set whose iteration order depends on
    # PYTHONHASHSEED for strings; sort first so the seeded shuffle draws
    # the same distractors in every run.
    pool = sorted(
        (
            candidate
            for candidate in database.table(ref.table).distinct_values(
                ref.column
            )
            if candidate != value
        ),
        key=repr,
    )
    if not pool:
        return []
    rng.shuffle(pool)
    return pool[: count]


def _range_around(value: Any, slack: float, rng: random.Random) -> Optional[Range]:
    """A numeric range of relative width ``slack`` containing ``value``."""
    try:
        numeric = float(value)
    except (TypeError, ValueError):
        return None
    spread = max(abs(numeric) * slack, 1.0)
    low = numeric - rng.uniform(0.2, 1.0) * spread
    high = numeric + rng.uniform(0.2, 1.0) * spread
    return Range(round(low, 3), round(high, 3))


def _metadata_for_column(
    catalog: MetadataCatalog, case: WorkloadCase, position: int
) -> MetadataConstraint:
    """A truthful metadata constraint describing the ground-truth column."""
    ref = case.ground_truth.projections[position]
    stats = catalog.stats(ref)
    type_predicate = MetadataPredicate(
        MetadataField.DATA_TYPE,
        "==",
        DataType.DECIMAL if stats.data_type is DataType.INT else stats.data_type,
    )
    if stats.is_numeric and stats.min_value is not None:
        bound = MetadataPredicate(MetadataField.MIN_VALUE, ">=", float(stats.min_value))
        return MetadataConjunction([type_predicate, bound])
    if stats.data_type is DataType.TEXT and stats.max_text_length is not None:
        bound = MetadataPredicate(
            MetadataField.MAX_LENGTH, "<=", int(stats.max_text_length)
        )
        return MetadataConjunction([type_predicate, bound])
    return type_predicate


def spec_for_level(
    case: WorkloadCase,
    level: ResolutionLevel,
    database: Database,
    catalog: Optional[MetadataCatalog] = None,
    seed: int = 0,
    num_distractors: int = 2,
    range_slack: float = 0.25,
) -> MappingSpec:
    """Derive a mapping spec at ``level`` from a ground-truth case.

    Args:
        case: the workload case (provides the exact sample rows).
        level: the looseness level to derive.
        database: the source database (distractor values are drawn from it).
        catalog: metadata catalog; required for the SPARSE and METADATA
            levels (built on demand when omitted).
        seed: RNG seed; combined with the case id for determinism.
        num_distractors: extra values per disjunction.
        range_slack: relative width of derived numeric ranges.
    """
    if not case.sample_rows:
        raise WorkloadError("the case carries no sample rows to degrade")
    rng = random.Random(f"{seed}-{case.case_id}-{level.value}")
    if catalog is None and level in (ResolutionLevel.SPARSE, ResolutionLevel.METADATA):
        catalog = MetadataCatalog.build(database)

    spec = MappingSpec(case.num_columns)
    numeric_positions = {
        position
        for position, ref in enumerate(case.ground_truth.projections)
        if database.column(ref).data_type.is_numeric
    }

    for row in case.sample_rows:
        cells: list[Optional[ValueConstraint]] = []
        drop_position = rng.randrange(case.num_columns)
        keep_position = rng.randrange(case.num_columns)
        for position, value in enumerate(row):
            exact = ExactValue(value)
            if level is ResolutionLevel.EXACT:
                cells.append(exact)
            elif level is ResolutionLevel.PARTIAL:
                cells.append(None if position == drop_position else exact)
            elif level is ResolutionLevel.DISJUNCTION:
                others = _distractors(database, case, position, value,
                                      num_distractors, rng)
                cells.append(OneOf([value] + others) if others else exact)
            elif level is ResolutionLevel.RANGE:
                derived = (
                    _range_around(value, range_slack, rng)
                    if position in numeric_positions
                    else None
                )
                cells.append(derived if derived is not None else exact)
            elif level is ResolutionLevel.MIXED:
                if position in numeric_positions:
                    derived = _range_around(value, range_slack, rng)
                    cells.append(derived if derived is not None else exact)
                else:
                    others = _distractors(database, case, position, value,
                                          num_distractors, rng)
                    cells.append(OneOf([value] + others) if others else exact)
            elif level in (ResolutionLevel.SPARSE, ResolutionLevel.METADATA):
                cells.append(exact if position == keep_position else None)
            else:  # pragma: no cover - enum is exhaustive
                raise WorkloadError(f"unhandled level {level!r}")
        spec.add_sample(SampleConstraint(cells))

        if level in (ResolutionLevel.SPARSE, ResolutionLevel.METADATA):
            for position in range(case.num_columns):
                if position == keep_position:
                    continue
                if level is ResolutionLevel.SPARSE and position not in numeric_positions:
                    continue
                spec.set_metadata(
                    position, _metadata_for_column(catalog, case, position)
                )
    return spec
