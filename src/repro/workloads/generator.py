"""Synthesised workload cases (§2.4).

The paper evaluates Prism "on a set of synthesized test cases created from
a public relational database Mondial".  A :class:`WorkloadCase` is one such
test case: a ground-truth Project-Join query drawn from the source
database's schema graph together with sample rows taken from its actual
result.  Constraint specs of varying resolution are then derived from the
case by :mod:`repro.workloads.degrade`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.dataset.database import Database
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.dataset.schema_graph import SchemaGraph
from repro.errors import WorkloadError
from repro.query.executor import Executor
from repro.query.pj_query import ProjectJoinQuery

__all__ = ["WorkloadCase", "WorkloadGenerator"]


@dataclass
class WorkloadCase:
    """One synthesised schema mapping task with known ground truth."""

    case_id: int
    ground_truth: ProjectJoinQuery
    sample_rows: list[tuple[Any, ...]] = field(default_factory=list)

    @property
    def num_columns(self) -> int:
        """Width of the target schema."""
        return self.ground_truth.width

    @property
    def join_size(self) -> int:
        """Number of join edges in the ground-truth query."""
        return self.ground_truth.join_size

    def matches_query(self, query: ProjectJoinQuery) -> bool:
        """Whether ``query`` is exactly the ground-truth mapping."""
        return query.signature() == self.ground_truth.signature()


class WorkloadGenerator:
    """Generates ground-truth cases from a source database."""

    def __init__(self, database: Database, seed: int = 0):
        self._database = database
        self._graph = SchemaGraph(database)
        self._executor = Executor(database)
        self._rng = random.Random(seed)
        self._next_id = 0

    @property
    def database(self) -> Database:
        """The source database cases are drawn from."""
        return self._database

    # ------------------------------------------------------------------
    # Case generation
    # ------------------------------------------------------------------
    def generate_case(
        self,
        num_columns: int = 3,
        num_tables: int = 2,
        num_samples: int = 1,
        max_attempts: int = 200,
    ) -> WorkloadCase:
        """Generate one case with the requested shape.

        Args:
            num_columns: width of the target schema.
            num_tables: number of tables in the ground-truth join tree.
            num_samples: number of ground-truth sample rows to record.
            max_attempts: how many random draws to try before giving up.

        Raises:
            WorkloadError: when no non-empty ground-truth query of the
                requested shape could be found within ``max_attempts``.
        """
        if num_columns < 1:
            raise WorkloadError("num_columns must be at least 1")
        if num_tables < 1:
            raise WorkloadError("num_tables must be at least 1")
        for __ in range(max_attempts):
            tree = self._random_join_tree(num_tables)
            if tree is None:
                continue
            tables, edges = tree
            projections = self._random_projections(tables, num_columns)
            if projections is None:
                continue
            query = ProjectJoinQuery(tuple(projections), tuple(edges))
            rows = self._executor.execute(query, limit=500)
            usable_rows = [
                row for row in rows if all(cell is not None for cell in row)
            ]
            if len(usable_rows) < num_samples:
                continue
            samples = self._rng.sample(usable_rows, num_samples)
            case = WorkloadCase(
                case_id=self._next_id,
                ground_truth=query,
                sample_rows=[tuple(row) for row in samples],
            )
            self._next_id += 1
            return case
        raise WorkloadError(
            f"could not synthesise a case with {num_columns} columns over "
            f"{num_tables} tables after {max_attempts} attempts"
        )

    def generate_cases(
        self,
        count: int,
        num_columns: int = 3,
        num_tables: int = 2,
        num_samples: int = 1,
    ) -> list[WorkloadCase]:
        """Generate ``count`` cases of the same shape."""
        return [
            self.generate_case(
                num_columns=num_columns,
                num_tables=num_tables,
                num_samples=num_samples,
            )
            for __ in range(count)
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _random_join_tree(
        self, num_tables: int
    ) -> Optional[tuple[set[str], list[ForeignKey]]]:
        """Grow a random connected join tree with ``num_tables`` tables."""
        tables = [
            table
            for table in self._graph.tables
            if self._database.table(table).num_rows > 0
        ]
        if not tables:
            return None
        start = self._rng.choice(tables)
        chosen = {start}
        edges: list[ForeignKey] = []
        while len(chosen) < num_tables:
            frontier: list[ForeignKey] = []
            # Iterate in sorted order: a set of strings iterates in a
            # PYTHONHASHSEED-dependent order, which would make the
            # rng.choice below (and every generated workload) differ
            # between otherwise identical runs.
            for table in sorted(chosen):
                for edge in self._graph.incident_foreign_keys(table):
                    other = (
                        edge.parent_table
                        if edge.child_table in chosen
                        else edge.child_table
                    )
                    if other not in chosen and self._database.table(other).num_rows:
                        frontier.append(edge)
            if not frontier:
                return None
            edge = self._rng.choice(frontier)
            chosen.update(edge.tables())
            edges.append(edge)
        return chosen, edges

    def _random_projections(
        self, tables: set[str], num_columns: int
    ) -> Optional[list[ColumnRef]]:
        """Pick projection columns covering every chosen table when possible."""
        available: list[ColumnRef] = []
        for table_name in sorted(tables):
            table = self._database.table(table_name)
            for column in table.columns:
                available.append(ColumnRef(table_name, column.name))
        if len(available) < num_columns:
            return None
        if num_columns >= len(tables):
            # Force at least one projection per table so the join matters.
            projections: list[ColumnRef] = []
            for table_name in sorted(tables):
                table_columns = [ref for ref in available if ref.table == table_name]
                projections.append(self._rng.choice(table_columns))
            remaining = [ref for ref in available if ref not in projections]
            extra_needed = num_columns - len(projections)
            if extra_needed > len(remaining):
                return None
            projections.extend(self._rng.sample(remaining, extra_needed))
        else:
            projections = self._rng.sample(available, num_columns)
        self._rng.shuffle(projections)
        return projections
