"""Synthesised workloads: ground-truth cases and constraint degradation."""

from repro.workloads.degrade import (
    DEFAULT_SWEEP_LEVELS,
    ResolutionLevel,
    spec_for_level,
)
from repro.workloads.generator import WorkloadCase, WorkloadGenerator

__all__ = [
    "DEFAULT_SWEEP_LEVELS",
    "ResolutionLevel",
    "WorkloadCase",
    "WorkloadGenerator",
    "spec_for_level",
]
