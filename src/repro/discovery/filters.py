"""Filter decomposition and the filter dependency DAG (step 2, part 1).

"We divide such an expensive verification task into a set of cheap
validations of filters, i.e. sub(join)trees along with projected attributes
(shorter PJ queries) ... If a filter fails, its parent filters and entire
candidate schema mapping query, from which the filter is derived,
automatically fail, and thereby pruned" (§2.3).

A :class:`Filter` is a sub-PJ-query of one candidate (a connected subtree
of its join tree plus the projected attributes falling inside that subtree)
paired with one sample constraint.  Filters are deduplicated across
candidates — the same single-table probe is typically shared by many
candidates, which is exactly where the pruning leverage comes from.

Containment gives the dependency structure:

* if filter B is contained in filter A (same sample, B's join edges,
  tables and projections are subsets of A's) then **B failing implies A
  fails**, and **A passing implies B passes**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.constraints.spec import MappingSpec
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.discovery.candidates import CandidateQuery
from repro.errors import DiscoveryError
from repro.query.pj_query import ProjectJoinQuery

__all__ = ["Filter", "FilterSet", "build_filters"]


@dataclass(frozen=True)
class _FilterKey:
    """Structural identity of a filter (used for cross-candidate sharing)."""

    sample_index: int
    positions: tuple[int, ...]
    projections: tuple[ColumnRef, ...]
    edges: frozenset[ForeignKey]
    tables: frozenset[str]


@dataclass
class Filter:
    """One validation unit: a sub-PJ-query checked against one sample."""

    id: int
    sample_index: int
    positions: tuple[int, ...]
    query: ProjectJoinQuery
    tables: frozenset[str]
    candidate_ids: set[int] = field(default_factory=set)

    @property
    def join_size(self) -> int:
        """Number of join edges in the filter's sub-query."""
        return self.query.join_size

    @property
    def num_tables(self) -> int:
        """Number of tables the filter touches."""
        return len(self.tables)

    def contains(self, other: "Filter") -> bool:
        """Whether ``other`` is structurally contained in this filter."""
        if self.sample_index != other.sample_index:
            return False
        if not other.tables <= self.tables:
            return False
        if not set(other.query.joins) <= set(self.query.joins):
            return False
        own_cells = set(zip(self.positions, self.query.projections))
        other_cells = set(zip(other.positions, other.query.projections))
        return other_cells <= own_cells

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Filter(id={self.id}, sample={self.sample_index}, "
            f"positions={self.positions}, tables={sorted(self.tables)})"
        )


class FilterSet:
    """All filters derived from a candidate set, with their dependencies."""

    def __init__(self, spec: MappingSpec, candidates: Sequence[CandidateQuery]):
        self.spec = spec
        self.candidates = list(candidates)
        self.filters: list[Filter] = []
        self._by_key: dict[_FilterKey, Filter] = {}
        # candidate id -> sample index -> id of the candidate's *top* filter
        self.candidate_tops: dict[int, dict[int, int]] = {}
        # candidate id -> every filter id derived from it
        self.candidate_filters: dict[int, set[int]] = {}
        self._ancestors: Optional[dict[int, set[int]]] = None
        self._descendants: Optional[dict[int, set[int]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(
        self,
        candidate: CandidateQuery,
        sample_index: int,
        positions: Sequence[int],
        query: ProjectJoinQuery,
        is_top: bool,
    ) -> Filter:
        """Register one filter occurrence for ``candidate``."""
        key = _FilterKey(
            sample_index=sample_index,
            positions=tuple(positions),
            projections=query.projections,
            edges=frozenset(query.joins),
            tables=query.tables,
        )
        existing = self._by_key.get(key)
        if existing is None:
            existing = Filter(
                id=len(self.filters),
                sample_index=sample_index,
                positions=tuple(positions),
                query=query,
                tables=query.tables,
            )
            self.filters.append(existing)
            self._by_key[key] = existing
        existing.candidate_ids.add(candidate.id)
        self.candidate_filters.setdefault(candidate.id, set()).add(existing.id)
        if is_top:
            self.candidate_tops.setdefault(candidate.id, {})[sample_index] = existing.id
        self._ancestors = None
        self._descendants = None
        return existing

    # ------------------------------------------------------------------
    # Dependency structure
    # ------------------------------------------------------------------
    def _compute_containment(self) -> None:
        ancestors: dict[int, set[int]] = {f.id: set() for f in self.filters}
        descendants: dict[int, set[int]] = {f.id: set() for f in self.filters}
        by_sample: dict[int, list[Filter]] = {}
        for filter_ in self.filters:
            by_sample.setdefault(filter_.sample_index, []).append(filter_)
        for group in by_sample.values():
            for outer in group:
                for inner in group:
                    if outer.id == inner.id:
                        continue
                    if outer.contains(inner):
                        ancestors[inner.id].add(outer.id)
                        descendants[outer.id].add(inner.id)
        self._ancestors = ancestors
        self._descendants = descendants

    def ancestors(self, filter_id: int) -> set[int]:
        """Filters that contain ``filter_id`` (fail together with it)."""
        if self._ancestors is None:
            self._compute_containment()
        return self._ancestors[filter_id]

    def descendants(self, filter_id: int) -> set[int]:
        """Filters contained in ``filter_id`` (pass together with it)."""
        if self._descendants is None:
            self._compute_containment()
        return self._descendants[filter_id]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_filters(self) -> int:
        """Total number of distinct filters."""
        return len(self.filters)

    def filter(self, filter_id: int) -> Filter:
        """Filter by id."""
        return self.filters[filter_id]

    def top_filter_ids(self) -> set[int]:
        """Filters that are the top (full) filter of some candidate."""
        tops: set[int] = set()
        for per_sample in self.candidate_tops.values():
            tops.update(per_sample.values())
        return tops


def _connected_subtrees(
    tables: frozenset[str],
    edges: Sequence[ForeignKey],
    max_tables: Optional[int] = None,
) -> list[tuple[frozenset[str], tuple[ForeignKey, ...]]]:
    """Enumerate connected subtrees (node set, induced edges) of a join tree."""
    adjacency: dict[str, list[ForeignKey]] = {table: [] for table in tables}
    for edge in edges:
        left, right = edge.tables()
        adjacency[left].append(edge)
        adjacency[right].append(edge)

    results: dict[frozenset[str], tuple[ForeignKey, ...]] = {}
    for table in tables:
        results.setdefault(frozenset({table}), ())
    frontier: list[tuple[frozenset[str], tuple[ForeignKey, ...]]] = [
        (frozenset({table}), ()) for table in tables
    ]
    limit = max_tables if max_tables is not None else len(tables)
    while frontier:
        next_frontier = []
        for node_set, tree_edges in frontier:
            if len(node_set) >= limit:
                continue
            for table in node_set:
                for edge in adjacency[table]:
                    left, right = edge.tables()
                    other = right if left == table else left
                    if other in node_set:
                        continue
                    new_nodes = node_set | {other}
                    if new_nodes in results:
                        continue
                    new_edges = tree_edges + (edge,)
                    results[new_nodes] = new_edges
                    next_frontier.append((new_nodes, new_edges))
        frontier = next_frontier
    return [(nodes, results[nodes]) for nodes in results]


def build_filters(
    spec: MappingSpec,
    candidates: Sequence[CandidateQuery],
    max_subtree_tables: Optional[int] = None,
) -> FilterSet:
    """Decompose every candidate into filters for every sample constraint.

    Args:
        spec: the mapping specification (provides the sample constraints).
        candidates: candidate queries from the generator.
        max_subtree_tables: optionally restrict sub-filters to at most this
            many tables (the top filter is always included regardless).
    """
    filter_set = FilterSet(spec, candidates)
    samples = spec.samples
    if not samples:
        return filter_set

    for candidate in candidates:
        query = candidate.query
        candidate_tables = query.tables
        for sample_index, sample in enumerate(samples):
            constrained = [
                position
                for position in sample.constrained_positions()
                if position < query.width
            ]
            if not constrained:
                continue
            # Sub-filters: every connected subtree containing >= 1 constrained column.
            for node_set, sub_edges in _connected_subtrees(
                candidate_tables, query.joins, max_subtree_tables
            ):
                positions = [
                    position
                    for position in constrained
                    if query.projections[position].table in node_set
                ]
                if not positions:
                    continue
                projections = tuple(query.projections[p] for p in positions)
                sub_query = ProjectJoinQuery(projections, sub_edges)
                filter_set.add(
                    candidate,
                    sample_index,
                    positions,
                    sub_query,
                    is_top=False,
                )
            # The top filter spans the *entire* candidate join tree with all
            # constrained positions: passing it certifies the candidate's
            # result truly contains the sample.
            top_projections = tuple(query.projections[p] for p in constrained)
            top_query = ProjectJoinQuery(top_projections, query.joins)
            filter_set.add(
                candidate, sample_index, constrained, top_query, is_top=True
            )
        if candidate.id not in filter_set.candidate_tops and samples:
            raise DiscoveryError(
                f"candidate {candidate.id} produced no top filter; "
                "samples may not constrain any projected column"
            )
    return filter_set
