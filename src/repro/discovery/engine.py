"""The Prism engine: the public entry point for query discovery.

Wires together preprocessing (inverted index, metadata catalog, schema
graph, Bayesian models), the discovery pipeline (related columns →
candidates → filters) and the filter-validation scheduler, under the
paper's interactive time limit (60 seconds per round by default, §2.2).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Optional

from repro.bayesian.estimator import SelectivityEstimator
from repro.bayesian.training import BayesianModelSet, train_models
from repro.constraints.spec import MappingSpec
from repro.dataset.catalog import MetadataCatalog
from repro.dataset.database import Database
from repro.dataset.index import InvertedIndex
from repro.dataset.schema_graph import SchemaGraph
from repro.discovery.candidates import CandidateGenerator, GenerationLimits
from repro.discovery.filters import build_filters
from repro.discovery.related_columns import RelatedColumnFinder
from repro.discovery.result import DiscoveryResult, DiscoveryStats
from repro.discovery.scheduler import ValidationDriver, make_policy
from repro.discovery.validation import FilterValidator
from repro.errors import DiscoveryError, DiscoveryTimeout
from repro.query.executor import Executor
from repro.query.sql import to_sql

__all__ = ["Prism", "DEFAULT_TIME_LIMIT_SECONDS"]

DEFAULT_TIME_LIMIT_SECONDS = 60.0


class Prism:
    """Multiresolution schema mapping query discovery over one database.

    Example:
        >>> from repro import (Column, Database, DataType, MappingSpec,
        ...                    Prism, parse_value_constraint)
        >>> db = Database("docs")
        >>> city = db.create_table("City", [
        ...     Column("Name", DataType.TEXT),
        ...     Column("Population", DataType.INT),
        ... ])
        >>> city.insert_many([("Springfield", 117_000), ("Shelbyville", 42_000)])
        2
        >>> prism = Prism(db, time_limit=5.0)
        >>> spec = MappingSpec(num_columns=2)
        >>> _ = spec.add_sample_cells([parse_value_constraint("Springfield"), None])
        >>> prism.discover(spec).sql()
        ['SELECT City.Name, City.Population FROM City']
    """

    def __init__(
        self,
        database: Database,
        scheduler: str = "bayesian",
        time_limit: float = DEFAULT_TIME_LIMIT_SECONDS,
        limits: Optional[GenerationLimits] = None,
        train_bayesian: bool = True,
        batch_validation: bool = True,
        *,
        use_sketches: bool = True,
        index: Optional[InvertedIndex] = None,
        catalog: Optional[MetadataCatalog] = None,
        schema_graph: Optional[SchemaGraph] = None,
        models: Optional[BayesianModelSet] = None,
    ):
        """Preprocess ``database`` and prepare the engine.

        Each preprocessing artifact (inverted index, metadata catalog,
        schema graph, Bayesian models) may be injected instead of built, so
        many engines can serve over one shared, immutable artifact set —
        see :meth:`from_artifacts` and :class:`repro.service.ArtifactStore`.
        An engine constructed from injected artifacts holds no mutable
        state of its own beyond its private :class:`Executor` caches.

        Args:
            database: the source database.
            scheduler: default scheduling policy (``naive``, ``filter``,
                ``bayesian``/``prism`` or ``optimal``).
            time_limit: per-discovery interactive time budget in seconds.
            limits: candidate-generation bounds.
            train_bayesian: train the Bayesian models eagerly (required for
                the ``bayesian`` scheduler; ignored when ``models`` is
                injected).
            batch_validation: validate filters sharing one join structure
                in batched executor passes (see
                :meth:`~repro.query.executor.Executor.exists_batch`).
                Discovery results and validation counts are identical
                either way; disabling it forces the per-candidate
                execution path (used by benchmarks and differential
                tests).
            use_sketches: consult the catalog's statistics sketches
                (HyperLogLog join estimates, Bloom probe pre-filtering,
                histogram selectivity, sketch-informed scheduling cost).
                Discovered queries are identical either way; only plan
                choices and probe work change.  Off is the raw-count
                baseline the sketch benchmark compares against.
            index: prebuilt inverted index for ``database``.
            catalog: prebuilt metadata catalog for ``database``.
            schema_graph: prebuilt schema graph for ``database``.
            models: pretrained Bayesian model set for ``database``.
        """
        if time_limit <= 0:
            raise DiscoveryError("time_limit must be positive")
        self.database = database
        self.scheduler = scheduler
        self.time_limit = time_limit
        self.index = index if index is not None else InvertedIndex.build(database)
        self.catalog = (
            catalog if catalog is not None else MetadataCatalog.build(database)
        )
        self.schema_graph = (
            schema_graph if schema_graph is not None else SchemaGraph(database)
        )
        # The executor plans with the catalog's cardinalities; its
        # physical plans are keyed by canonical plan hash and therefore
        # shared across every candidate joining the same structure.
        self.use_sketches = use_sketches
        self.executor = Executor(
            database, catalog=self.catalog, use_sketches=use_sketches
        )
        self.limits = limits or GenerationLimits()
        self.batch_validation = batch_validation
        self.models: Optional[BayesianModelSet] = None
        self._estimator: Optional[SelectivityEstimator] = None
        if models is not None:
            self.models = models
            self._estimator = models.estimator()
        elif train_bayesian:
            self.models = train_models(database)
            self._estimator = self.models.estimator()
        self._finder = RelatedColumnFinder(database, self.index, self.catalog)
        self._generator = CandidateGenerator(database, self.schema_graph, self.limits)

    @classmethod
    def from_artifacts(
        cls,
        bundle,
        scheduler: Optional[str] = None,
        time_limit: float = DEFAULT_TIME_LIMIT_SECONDS,
        limits: Optional[GenerationLimits] = None,
    ) -> "Prism":
        """Build a per-request engine over a shared preprocessing bundle.

        ``bundle`` is an :class:`repro.service.ArtifactBundle` (or any
        object exposing ``database``, ``index``, ``catalog``,
        ``schema_graph`` and ``models``).  No preprocessing runs: the
        returned engine is a cheap, stateless view over the bundle's
        immutable artifacts plus a private executor, so constructing one
        per request is the intended usage under concurrency.
        """
        return cls(
            bundle.database,
            scheduler=scheduler if scheduler is not None else "bayesian",
            time_limit=time_limit,
            limits=limits,
            train_bayesian=False,
            index=bundle.index,
            catalog=bundle.catalog,
            schema_graph=bundle.schema_graph,
            models=bundle.models,
        )

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    @property
    def estimator(self) -> Optional[SelectivityEstimator]:
        """The trained selectivity estimator (None when not trained)."""
        return self._estimator

    def discover(
        self,
        spec: MappingSpec,
        scheduler: Optional[str] = None,
        time_limit: Optional[float] = None,
        raise_on_timeout: bool = False,
        validation_budget: Optional[int] = None,
    ) -> DiscoveryResult:
        """Discover every schema mapping query satisfying ``spec``.

        Args:
            spec: the user's multiresolution constraints.
            scheduler: override the engine's default scheduling policy.
            time_limit: override the engine's time budget (seconds).
                ``math.inf`` is accepted: combined with a
                ``validation_budget`` it makes a run's work — and all its
                counters — fully deterministic (no wall-clock cutoffs),
                which is how the benchmark harness pins byte-stable
                reports.
            raise_on_timeout: raise :class:`DiscoveryTimeout` instead of
                returning a partial, ``timed_out`` result.
            validation_budget: optional cap on the number of filter
                validations this run may execute; the scheduler stops
                (reporting ``timed_out``) when the cap is reached.  A
                count-based budget, unlike the wall-clock limit, is
                deterministic across runs and machines.

        Returns:
            A :class:`DiscoveryResult` whose queries are guaranteed to match
            every constraint in ``spec``.
        """
        spec.validate()
        scheduler_name = scheduler or self.scheduler
        budget = time_limit if time_limit is not None else self.time_limit
        policy = make_policy(scheduler_name)
        if policy.name == "bayesian" and self._estimator is None:
            raise DiscoveryError(
                "the bayesian scheduler requires trained models; construct "
                "Prism with train_bayesian=True"
            )

        started = time.monotonic()
        deadline = started + budget
        stats = DiscoveryStats(scheduler_name=policy.name)

        stage_start = time.monotonic()
        related = self._finder.find(spec)
        stats.related_column_seconds = time.monotonic() - stage_start
        stats.num_related_columns = related.total_columns

        result = DiscoveryResult(stats=stats)
        if not related.is_satisfiable():
            stats.elapsed_seconds = time.monotonic() - started
            return result

        stage_start = time.monotonic()
        candidates = self._generator.generate(spec, related, deadline=deadline)
        stats.candidate_seconds = time.monotonic() - stage_start
        stats.num_candidates = len(candidates)
        result.candidates = candidates
        if not candidates:
            stats.elapsed_seconds = time.monotonic() - started
            stats.timed_out = time.monotonic() > deadline
            if stats.timed_out and raise_on_timeout:
                raise DiscoveryTimeout(
                    "candidate generation exceeded the time limit", result
                )
            return result

        filter_set = build_filters(spec, candidates)
        stats.num_filters = filter_set.num_filters

        stage_start = time.monotonic()
        validator = FilterValidator(self.executor, spec)
        driver = ValidationDriver(
            filter_set,
            validator,
            policy,
            estimator=self._estimator,
            deadline=deadline,
            batch=self.batch_validation,
            max_validations=validation_budget,
            planner=self.executor.planner if self.use_sketches else None,
        )
        executor_before = replace(self.executor.stats)
        scheduling = driver.run()
        executor_after = self.executor.stats
        stats.validation_seconds = time.monotonic() - stage_start
        stats.validations = scheduling.validations
        stats.implied_outcomes = scheduling.implied_outcomes
        stats.num_confirmed = scheduling.num_confirmed
        stats.num_pruned = len(scheduling.pruned_candidate_ids)
        stats.timed_out = scheduling.timed_out
        # Cache effectiveness of this run's validation stage: the executor
        # is shared across discover() calls, so report deltas, not totals.
        stats.exists_cache_hits = (
            executor_after.exists_cache_hits - executor_before.exists_cache_hits
        )
        stats.exists_cache_misses = (
            executor_after.exists_cache_misses - executor_before.exists_cache_misses
        )
        stats.join_index_hits = (
            executor_after.join_index_hits - executor_before.join_index_hits
        )
        stats.join_index_builds = (
            executor_after.join_index_builds - executor_before.join_index_builds
        )
        stats.joins_performed = (
            executor_after.joins_performed - executor_before.joins_performed
        )
        stats.plan_cache_hits = (
            executor_after.plan_cache_hits - executor_before.plan_cache_hits
        )
        stats.plan_cache_builds = (
            executor_after.plan_cache_builds - executor_before.plan_cache_builds
        )
        stats.bloom_rejections = (
            executor_after.bloom_rejections - executor_before.bloom_rejections
        )
        stats.sketch_estimates_used = (
            executor_after.sketch_estimates_used
            - executor_before.sketch_estimates_used
        )
        stats.validation_batches = validator.stats.batches
        stats.batched_outcomes = validator.stats.batched_outcomes

        confirmed_ids = set(scheduling.confirmed_candidate_ids)
        confirmed = [
            candidate for candidate in candidates if candidate.id in confirmed_ids
        ]
        confirmed.sort(key=lambda candidate: (candidate.join_size, to_sql(candidate.query)))
        result.queries = [candidate.query for candidate in confirmed]
        stats.elapsed_seconds = time.monotonic() - started

        if stats.timed_out and raise_on_timeout:
            raise DiscoveryTimeout("query discovery exceeded the time limit", result)
        return result

    # ------------------------------------------------------------------
    # Introspection helpers used by the workbench and evaluation harness
    # ------------------------------------------------------------------
    def related_columns(self, spec: MappingSpec):
        """Expose step 1 (related-column discovery) for inspection."""
        return self._finder.find(spec)

    def candidate_queries(self, spec: MappingSpec):
        """Expose candidate enumeration (no validation) for inspection."""
        related = self._finder.find(spec)
        return self._generator.generate(spec, related)
