"""Candidate schema-mapping query generation (step 1, second half).

"With related columns found, we exhaustively search through the source
database schema graph and find all possible join paths, each connecting a
set of related columns that altogether can be mapped to all columns in the
target schema.  Every join path along with the set of related columns it
connects becomes a candidate schema mapping query" (§2.3).

The generator takes the related-column sets, enumerates column assignments
for the constrained target positions, finds every join tree connecting the
assigned tables (bounded by ``max_tables``), and — for target positions the
user left completely unconstrained — assigns any remaining column of the
join tree's tables.  Candidates are deduplicated by query signature and the
overall number is bounded to keep the search interactive.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.constraints.spec import MappingSpec
from repro.dataset.database import Database
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.dataset.schema_graph import SchemaGraph
from repro.discovery.related_columns import RelatedColumns
from repro.errors import DiscoveryError
from repro.query.pj_query import ProjectJoinQuery

__all__ = ["CandidateQuery", "CandidateGenerator", "GenerationLimits"]


@dataclass(frozen=True)
class CandidateQuery:
    """A candidate schema mapping query awaiting validation."""

    id: int
    query: ProjectJoinQuery

    @property
    def join_size(self) -> int:
        """Number of join edges in the candidate."""
        return self.query.join_size


@dataclass(frozen=True)
class GenerationLimits:
    """Bounds keeping candidate enumeration interactive."""

    max_tables: int = 4
    max_trees_per_assignment: int = 8
    max_assignments: int = 2_000
    max_candidates: int = 1_000
    max_unconstrained_choices: int = 20


class CandidateGenerator:
    """Enumerates candidate PJ queries from related columns."""

    def __init__(
        self,
        database: Database,
        schema_graph: SchemaGraph,
        limits: Optional[GenerationLimits] = None,
    ):
        self._database = database
        self._graph = schema_graph
        self._limits = limits or GenerationLimits()

    @property
    def limits(self) -> GenerationLimits:
        """The active generation limits."""
        return self._limits

    def generate(
        self,
        spec: MappingSpec,
        related: RelatedColumns,
        deadline: Optional[float] = None,
    ) -> list[CandidateQuery]:
        """Enumerate candidate queries for ``spec``.

        Args:
            spec: the mapping specification.
            related: related columns per constrained position.
            deadline: optional ``time.monotonic()`` deadline; generation
                stops (returning what it has) once it is reached.
        """
        constrained_positions = related.constrained_positions()
        if not constrained_positions:
            raise DiscoveryError(
                "cannot generate candidates: no target position is constrained"
            )
        if not related.is_satisfiable():
            return []

        unconstrained_positions = [
            position
            for position in range(spec.num_columns)
            if position not in related.per_position
        ]

        candidates: list[CandidateQuery] = []
        seen_signatures: set[tuple] = set()
        next_id = 0

        assignment_iter = self._assignments(related, constrained_positions)
        for assignment_count, assignment in enumerate(assignment_iter):
            if assignment_count >= self._limits.max_assignments:
                break
            if deadline is not None and time.monotonic() > deadline:
                break
            required_tables = {ref.table for ref in assignment.values()}
            try:
                trees = self._graph.join_trees(
                    required_tables,
                    max_tables=self._limits.max_tables,
                    max_trees=self._limits.max_trees_per_assignment,
                )
            except Exception:  # pragma: no cover - defensive
                continue
            for tree in trees:
                for projections in self._complete_projections(
                    spec, assignment, unconstrained_positions, tree, required_tables
                ):
                    query = ProjectJoinQuery(tuple(projections), tuple(tree))
                    signature = query.signature()
                    if signature in seen_signatures:
                        continue
                    seen_signatures.add(signature)
                    candidates.append(CandidateQuery(id=next_id, query=query))
                    next_id += 1
                    if len(candidates) >= self._limits.max_candidates:
                        return candidates
        return candidates

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _assignments(
        self,
        related: RelatedColumns,
        constrained_positions: Sequence[int],
    ) -> Iterable[dict[int, ColumnRef]]:
        """Cartesian product of related columns across constrained positions."""
        ordered_choices = [
            sorted(related.columns_for(position)) for position in constrained_positions
        ]
        for combination in itertools.product(*ordered_choices):
            assignment = dict(zip(constrained_positions, combination))
            # Two target columns cannot map to the same source column.
            if len(set(combination)) != len(combination):
                continue
            yield assignment

    def _complete_projections(
        self,
        spec: MappingSpec,
        assignment: dict[int, ColumnRef],
        unconstrained_positions: Sequence[int],
        tree: Sequence[ForeignKey],
        required_tables: set[str],
    ) -> Iterable[list[ColumnRef]]:
        """Fill unconstrained positions with columns from the join tree."""
        tree_tables = SchemaGraph.tree_tables(tree)
        tree_tables.update(required_tables)
        if not unconstrained_positions:
            yield [assignment[position] for position in range(spec.num_columns)]
            return

        used = set(assignment.values())
        available: list[ColumnRef] = []
        for table_name in sorted(tree_tables):
            table = self._database.table(table_name)
            for column in table.columns:
                ref = ColumnRef(table_name, column.name)
                if ref not in used:
                    available.append(ref)
        available = available[: self._limits.max_unconstrained_choices * max(
            1, len(unconstrained_positions)
        )]
        if len(available) < len(unconstrained_positions):
            return

        for combination in itertools.permutations(
            available, len(unconstrained_positions)
        ):
            projections: list[Optional[ColumnRef]] = [None] * spec.num_columns
            for position, ref in assignment.items():
                projections[position] = ref
            for position, ref in zip(unconstrained_positions, combination):
                projections[position] = ref
            yield [ref for ref in projections if ref is not None]
