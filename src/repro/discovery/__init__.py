"""The Prism discovery pipeline: related columns → candidates → filters →
scheduled validation → satisfying Project-Join queries."""

from repro.discovery.candidates import (
    CandidateGenerator,
    CandidateQuery,
    GenerationLimits,
)
from repro.discovery.engine import DEFAULT_TIME_LIMIT_SECONDS, Prism
from repro.discovery.filters import Filter, FilterSet, build_filters
from repro.discovery.related_columns import RelatedColumnFinder, RelatedColumns
from repro.discovery.result import DiscoveryResult, DiscoveryStats
from repro.discovery.scheduler import (
    BayesianPolicy,
    NaivePolicy,
    OptimalPolicy,
    PathLengthPolicy,
    POLICY_NAMES,
    SchedulingPolicy,
    SchedulingResult,
    ValidationDriver,
    make_policy,
)
from repro.discovery.validation import FilterValidator, ValidationStats

__all__ = [
    "BayesianPolicy",
    "CandidateGenerator",
    "CandidateQuery",
    "DEFAULT_TIME_LIMIT_SECONDS",
    "DiscoveryResult",
    "DiscoveryStats",
    "Filter",
    "FilterSet",
    "FilterValidator",
    "GenerationLimits",
    "NaivePolicy",
    "OptimalPolicy",
    "PathLengthPolicy",
    "POLICY_NAMES",
    "Prism",
    "RelatedColumnFinder",
    "RelatedColumns",
    "SchedulingPolicy",
    "SchedulingResult",
    "ValidationDriver",
    "ValidationStats",
    "build_filters",
    "make_policy",
]
