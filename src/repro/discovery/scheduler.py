"""Filter-validation scheduling (step 2, part 2).

"A new important issue becomes the filter validation scheduling: in what
order the filters are validated so that the most number of filters are
pruned, as well as overall filter validation time is minimized" (§2.3).

This module provides the shared :class:`ValidationDriver` (which validates
filters, propagates implied outcomes through the containment DAG and
decides candidates) plus four scheduling policies:

* :class:`NaivePolicy` — validate full candidate queries one by one (the
  strawman the paper calls "very expensive");
* :class:`PathLengthPolicy` — the "Filter" baseline (after Shen et al.):
  failure probability proportional to join-path length;
* :class:`BayesianPolicy` — Prism: failure probability from the Bayesian
  selectivity models;
* :class:`OptimalPolicy` — an oracle that knows every filter's true outcome
  and greedily maximises pruning; it provides the "optimum" reference the
  paper measures the gap against.

Every policy scores pending filters by ``pruning power / cost`` where
pruning power combines the failure-probability estimate with the number of
still-undecided candidates the filter would prune.
"""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.bayesian.estimator import SelectivityEstimator
from repro.constraints.spec import MappingSpec
from repro.discovery.filters import Filter, FilterSet
from repro.discovery.validation import FilterValidator
from repro.errors import DiscoveryError
from repro.query.plan import join_prefix_key
from repro.query.planner import Planner

__all__ = [
    "SchedulingPolicy",
    "NaivePolicy",
    "PathLengthPolicy",
    "BayesianPolicy",
    "OptimalPolicy",
    "ValidationDriver",
    "SchedulingResult",
    "make_policy",
    "POLICY_NAMES",
]


@dataclass
class SchedulingResult:
    """Outcome of one validation-scheduling run."""

    scheduler_name: str
    confirmed_candidate_ids: list[int] = field(default_factory=list)
    pruned_candidate_ids: list[int] = field(default_factory=list)
    validations: int = 0
    implied_outcomes: int = 0
    elapsed_seconds: float = 0.0
    timed_out: bool = False

    @property
    def num_confirmed(self) -> int:
        """Number of candidates confirmed as satisfying every constraint."""
        return len(self.confirmed_candidate_ids)


class _DriverContext:
    """Read-only view of the driver's state handed to policies."""

    def __init__(
        self,
        filter_set: FilterSet,
        spec: MappingSpec,
        estimator: Optional[SelectivityEstimator],
        validator: FilterValidator,
        planner: Optional[Planner] = None,
    ):
        self.filter_set = filter_set
        self.spec = spec
        self.estimator = estimator
        self.validator = validator
        self.planner = planner
        self.undecided_candidates: set[int] = set()
        self.top_filter_ids: set[int] = filter_set.top_filter_ids()
        self._max_join_size = max(
            (filter_.join_size for filter_ in filter_set.filters), default=0
        )

    def impact(self, filter_: Filter) -> int:
        """Number of still-undecided candidates this filter could prune."""
        return len(filter_.candidate_ids & self.undecided_candidates)

    def cost(self, filter_: Filter) -> float:
        """Estimated validation cost of one filter.

        Without a planner this is the classic structural unit
        ``1 + join_size``.  With one (the engine passes its executor's
        planner when sketches are on), the filter's estimated join
        cardinality — memoized per join structure, HLL-informed when
        sketches exist — is added on a log scale: probing a join whose
        sketched key overlap is near-empty dies almost immediately
        (early-terminating semijoins), while a high-overlap join streams
        a large intermediate result.  The log damping reflects that
        early termination makes probe cost sublinear in result size.
        """
        base = self.structural_cost(filter_)
        planner = self.planner
        if planner is None:
            return base
        try:
            rows = planner.structure_rows(filter_.query)
        except Exception:
            return base
        return base + math.log2(1.0 + max(rows, 0.0))

    @staticmethod
    def structural_cost(filter_: Filter) -> float:
        """The classic structural validation-cost unit, ``1 + join_size``.

        The oracle policy ranks by this regardless of sketches: the
        "optimum" is the paper's fixed reference point, so its choices
        must not move when the estimator changes.
        """
        return 1.0 + filter_.join_size

    def cell_constraints(self, filter_: Filter) -> dict[int, object]:
        """Cell constraints keyed by projection index within the filter."""
        sample = self.spec.samples[filter_.sample_index]
        constraints = {}
        for projection_index, position in enumerate(filter_.positions):
            cell = sample.cell(position)
            if cell is not None:
                constraints[projection_index] = cell
        return constraints

    @property
    def max_join_size(self) -> int:
        """Largest join size among all filters (for normalisation)."""
        return self._max_join_size


class SchedulingPolicy(ABC):
    """Chooses which pending filter to validate next."""

    name: str = "abstract"

    @abstractmethod
    def select(self, pending: Sequence[Filter], context: _DriverContext) -> Filter:
        """Pick one filter from ``pending`` (guaranteed non-empty)."""

    def _cost(self, filter_: Filter) -> float:
        """Structural validation-cost unit (no statistics)."""
        return 1.0 + filter_.join_size


class NaivePolicy(SchedulingPolicy):
    """Validate full candidate queries directly, one at a time."""

    name = "naive"

    def select(self, pending: Sequence[Filter], context: _DriverContext) -> Filter:
        tops = [f for f in pending if f.id in context.top_filter_ids]
        pool = tops or list(pending)
        return min(pool, key=lambda f: (f.id,))


class PathLengthPolicy(SchedulingPolicy):
    """The "Filter" baseline: failure probability ∝ join-path length.

    As the prior-work reference point it ranks by the structural cost
    unit only — the sketch-informed cost is Prism's improvement and
    feeding it to the baseline would blur the comparison the paper
    makes (and can even push the baseline past the greedy oracle).
    """

    name = "filter"

    def select(self, pending: Sequence[Filter], context: _DriverContext) -> Filter:
        denominator = context.max_join_size + 2.0

        def score(filter_: Filter) -> float:
            failure_probability = (filter_.join_size + 1.0) / denominator
            return (
                failure_probability
                * context.impact(filter_)
                / context.structural_cost(filter_)
            )

        return max(pending, key=lambda f: (score(f), -f.id))


class BayesianPolicy(SchedulingPolicy):
    """Prism: failure probability from the Bayesian selectivity models."""

    name = "bayesian"

    def select(self, pending: Sequence[Filter], context: _DriverContext) -> Filter:
        if context.estimator is None:
            raise DiscoveryError("BayesianPolicy requires a trained estimator")

        def score(filter_: Filter) -> float:
            failure_probability = context.estimator.failure_probability(
                filter_.query, context.cell_constraints(filter_)
            )
            return failure_probability * context.impact(filter_) / context.cost(filter_)

        return max(pending, key=lambda f: (score(f), -f.id))


class OptimalPolicy(SchedulingPolicy):
    """Oracle scheduler: knows each filter's true outcome in advance.

    Greedy strategy: if some truly-failing filter can still prune undecided
    candidates, validate the one pruning the most (cheapest on ties);
    otherwise validate the top filter of an undecided candidate (which will
    pass and confirm it).  This is the reference "optimum" of §2.4.
    """

    name = "optimal"

    def select(self, pending: Sequence[Filter], context: _DriverContext) -> Filter:
        failing = [
            filter_
            for filter_ in pending
            if context.impact(filter_) > 0 and not context.validator.peek(filter_)
        ]
        if failing:
            return max(
                failing,
                key=lambda f: (
                    context.impact(f), -context.structural_cost(f), -f.id,
                ),
            )
        tops = [
            filter_
            for filter_ in pending
            if filter_.id in context.top_filter_ids and context.impact(filter_) > 0
        ]
        pool = tops or list(pending)
        return min(pool, key=lambda f: (context.structural_cost(f), f.id))


POLICY_NAMES = ("naive", "filter", "bayesian", "optimal")


def make_policy(name: str) -> SchedulingPolicy:
    """Create a scheduling policy by name.

    Accepted names: ``naive``, ``filter`` (alias ``path_length``),
    ``bayesian`` (alias ``prism``), ``optimal`` (alias ``oracle``).
    """
    normalized = name.strip().lower()
    policies = {
        "naive": NaivePolicy,
        "filter": PathLengthPolicy,
        "path_length": PathLengthPolicy,
        "path-length": PathLengthPolicy,
        "bayesian": BayesianPolicy,
        "prism": BayesianPolicy,
        "optimal": OptimalPolicy,
        "oracle": OptimalPolicy,
    }
    if normalized not in policies:
        raise DiscoveryError(
            f"unknown scheduler {name!r}; expected one of {sorted(set(policies))}"
        )
    return policies[normalized]()


class ValidationDriver:
    """Validates filters under a policy until every candidate is decided.

    When ``batch`` is enabled (the default), each time the policy picks a
    filter with at least one join, every other pending filter sharing the
    chosen filter's join structure (its *join prefix*,
    :func:`~repro.query.plan.join_prefix_key`) is handed to the validator
    as a batch-mate: one streamed pass over the shared join decides all
    of them (:meth:`FilterValidator.validate_batch`), and batch-mates the
    policy picks later resolve from the validator cache.  Scheduling
    order, validation counts and discovery results are bit-for-bit
    identical to the unbatched path — only the executor work is shared.
    """

    #: Bound on how many filters one batched pass may decide.
    DEFAULT_BATCH_SIZE = 32

    def __init__(
        self,
        filter_set: FilterSet,
        validator: FilterValidator,
        policy: SchedulingPolicy,
        estimator: Optional[SelectivityEstimator] = None,
        deadline: Optional[float] = None,
        batch: bool = True,
        batch_size: Optional[int] = None,
        max_validations: Optional[int] = None,
        planner: Optional[Planner] = None,
    ):
        self._filter_set = filter_set
        self._validator = validator
        self._policy = policy
        self._estimator = estimator
        self._deadline = deadline
        self._batch = batch
        self._batch_size = (
            batch_size if batch_size is not None else self.DEFAULT_BATCH_SIZE
        )
        # Deterministic alternative to the wall-clock deadline: stop after
        # this many scheduling decisions (reported as timed_out).
        self._max_validations = max_validations
        # Optional cost oracle: policies fold the planner's (sketch-backed)
        # join-cardinality estimates into their cost denominators.
        self._planner = planner

    def run(self) -> SchedulingResult:
        """Run validation to completion (or until the deadline)."""
        started = time.monotonic()
        filter_set = self._filter_set
        spec = filter_set.spec
        num_samples = len(spec.samples)

        result = SchedulingResult(scheduler_name=self._policy.name)
        filter_state: dict[int, Optional[bool]] = {
            filter_.id: None for filter_ in filter_set.filters
        }
        candidate_state: dict[int, str] = {
            candidate.id: "undecided" for candidate in filter_set.candidates
        }

        context = _DriverContext(
            filter_set, spec, self._estimator, self._validator, self._planner
        )
        # Filters sharing one join structure, grouped once up front —
        # the candidates for each batched validation pass.
        prefix_groups = (
            Planner.group_by_prefix(filter_set.filters) if self._batch else {}
        )

        if num_samples == 0:
            # Metadata-only specs have nothing to validate: every candidate
            # already satisfies the (column-level) constraints by construction.
            result.confirmed_candidate_ids = sorted(candidate_state)
            result.elapsed_seconds = time.monotonic() - started
            return result

        def undecided() -> set[int]:
            return {
                candidate_id
                for candidate_id, state in candidate_state.items()
                if state == "undecided"
            }

        def refresh_confirmations() -> None:
            for candidate_id in list(undecided()):
                tops = filter_set.candidate_tops.get(candidate_id, {})
                if len(tops) < num_samples:
                    continue
                if all(
                    filter_state[top_id] is True for top_id in tops.values()
                ):
                    candidate_state[candidate_id] = "confirmed"

        while True:
            remaining = undecided()
            context.undecided_candidates = remaining
            if not remaining:
                break
            if self._deadline is not None and time.monotonic() > self._deadline:
                result.timed_out = True
                break
            if (
                self._max_validations is not None
                and result.validations >= self._max_validations
            ):
                result.timed_out = True
                break
            pending = [
                filter_
                for filter_ in filter_set.filters
                if filter_state[filter_.id] is None
                and filter_.candidate_ids & remaining
            ]
            if not pending:
                break
            chosen = self._policy.select(pending, context)
            if self._batch and chosen.join_size >= 1:
                # Batch-mates: still-pending filters over the chosen
                # filter's join structure, except its containment
                # relatives — if the chosen filter fails its ancestors
                # fail for free, and if it passes its descendants pass
                # for free, so computing those eagerly would waste the
                # very outcomes implication is about to hand us.
                related = filter_set.ancestors(chosen.id) | filter_set.descendants(
                    chosen.id
                )
                peers = [
                    filter_
                    for filter_ in prefix_groups.get(
                        join_prefix_key(chosen.query), ()
                    )
                    if filter_.id != chosen.id
                    and filter_.id not in related
                    and filter_state[filter_.id] is None
                    and filter_.candidate_ids & remaining
                ]
                outcome = self._validator.validate_batch(
                    chosen, peers[: self._batch_size - 1]
                )
            else:
                outcome = self._validator.validate(chosen)
            filter_state[chosen.id] = outcome
            # Count scheduling decisions, not executor work: the oracle's
            # free peeks and validator cache hits must not distort the
            # number of validations a policy is charged for.
            result.validations += 1

            if outcome:
                for descendant_id in filter_set.descendants(chosen.id):
                    if filter_state[descendant_id] is None:
                        filter_state[descendant_id] = True
                        result.implied_outcomes += 1
                refresh_confirmations()
            else:
                for ancestor_id in filter_set.ancestors(chosen.id):
                    if filter_state[ancestor_id] is None:
                        filter_state[ancestor_id] = False
                        result.implied_outcomes += 1
                for candidate_id in chosen.candidate_ids:
                    if candidate_state.get(candidate_id) == "undecided":
                        candidate_state[candidate_id] = "pruned"

        result.confirmed_candidate_ids = sorted(
            candidate_id
            for candidate_id, state in candidate_state.items()
            if state == "confirmed"
        )
        result.pruned_candidate_ids = sorted(
            candidate_id
            for candidate_id, state in candidate_state.items()
            if state == "pruned"
        )
        result.elapsed_seconds = time.monotonic() - started
        return result
