"""Related-column discovery (step 1 of the paper's pipeline).

"Finding related columns is essentially finding columns in the database
matching at least a value constraint or metadata constraint" (§2.3).  For
every target-schema column this module computes the set of source columns
that could plausibly map to it:

* value constraints with literal seeds (exact keywords, disjunctions) are
  resolved through the inverted index;
* value constraints without seeds (ranges, comparison predicates) are first
  screened against the metadata catalog (type and min/max overlap) and then
  confirmed by a bounded scan with early exit — the same work an index-only
  DBMS probe would do;
* metadata constraints filter the surviving columns through the catalog.

Sample-constraint validation (which requires joins) is deliberately *not*
done here; that is step 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.constraints.metadata import MetadataConstraint
from repro.constraints.spec import MappingSpec
from repro.constraints.values import (
    AnyValue,
    Conjunction,
    Disjunction,
    ExactValue,
    OneOf,
    Predicate,
    Range,
    ValueConstraint,
)
from repro.dataset.catalog import ColumnStats, MetadataCatalog
from repro.dataset.database import Database
from repro.dataset.index import InvertedIndex
from repro.dataset.schema import ColumnRef
from repro.dataset.types import DataType

__all__ = ["RelatedColumns", "RelatedColumnFinder"]


@dataclass
class RelatedColumns:
    """Related columns per target-schema position."""

    per_position: dict[int, set[ColumnRef]] = field(default_factory=dict)

    def columns_for(self, position: int) -> set[ColumnRef]:
        """Related columns for one target position (empty set if none)."""
        return self.per_position.get(position, set())

    def constrained_positions(self) -> list[int]:
        """Positions that actually have related-column sets recorded."""
        return sorted(self.per_position)

    def all_tables(self) -> set[str]:
        """Every table owning at least one related column."""
        tables: set[str] = set()
        for columns in self.per_position.values():
            tables.update(ref.table for ref in columns)
        return tables

    @property
    def total_columns(self) -> int:
        """Total number of (position, column) pairs."""
        return sum(len(columns) for columns in self.per_position.values())

    def is_satisfiable(self) -> bool:
        """False when some constrained position has no related column."""
        return all(columns for columns in self.per_position.values())


class RelatedColumnFinder:
    """Computes related columns for a mapping specification."""

    def __init__(
        self,
        database: Database,
        index: InvertedIndex,
        catalog: MetadataCatalog,
        scan_limit: int = 100_000,
    ):
        self._database = database
        self._index = index
        self._catalog = catalog
        self._scan_limit = scan_limit

    def find(self, spec: MappingSpec) -> RelatedColumns:
        """Related columns for every constrained target position."""
        related = RelatedColumns()
        for position in range(spec.num_columns):
            value_constraints = [
                constraint
                for constraint in spec.value_constraints_for(position)
                if not isinstance(constraint, AnyValue)
            ]
            metadata_constraint = spec.metadata_for(position)
            if not value_constraints and metadata_constraint is None:
                # Unconstrained target column: handled later by the candidate
                # generator (it may map to any column of the join tree).
                continue
            columns = self._columns_for_position(value_constraints, metadata_constraint)
            related.per_position[position] = columns
        return related

    # ------------------------------------------------------------------
    # Per-position resolution
    # ------------------------------------------------------------------
    def _columns_for_position(
        self,
        value_constraints: list[ValueConstraint],
        metadata_constraint: Optional[MetadataConstraint],
    ) -> set[ColumnRef]:
        if value_constraints:
            candidates: Optional[set[ColumnRef]] = None
            for constraint in value_constraints:
                matching = self._columns_matching_value(constraint)
                # Every sample must be containable, so a column must match
                # the value constraint of each sample that constrains this
                # position (intersection across samples).
                candidates = matching if candidates is None else candidates & matching
            columns = candidates or set()
        else:
            columns = set(self._catalog.columns())
        if metadata_constraint is not None:
            columns = {
                ref
                for ref in columns
                if metadata_constraint.matches(self._catalog.stats(ref))
            }
        return columns

    def _columns_matching_value(self, constraint: ValueConstraint) -> set[ColumnRef]:
        seeds = constraint.seed_values()
        if seeds and self._only_positive_literals(constraint):
            return self._index.columns_containing_any(seeds)
        # No usable literals (range / inequality / negation): screen with the
        # catalog, then confirm with a bounded scan.
        columns: set[ColumnRef] = set()
        for ref in self._catalog.columns():
            stats = self._catalog.stats(ref)
            if not self._could_match(stats, constraint):
                continue
            if self._scan_confirms(ref, constraint):
                columns.add(ref)
        return columns

    @staticmethod
    def _only_positive_literals(constraint: ValueConstraint) -> bool:
        """Whether matching rows necessarily contain one of the seed literals."""
        if isinstance(constraint, (ExactValue, OneOf)):
            return True
        if isinstance(constraint, Disjunction):
            return all(
                RelatedColumnFinder._only_positive_literals(part)
                for part in constraint.parts
            )
        if isinstance(constraint, Predicate):
            return constraint.op == "=="
        return False

    def _could_match(self, stats: ColumnStats, constraint: ValueConstraint) -> bool:
        """Catalog-level screen: can this column possibly satisfy the constraint?"""
        if stats.non_null_count == 0:
            return False
        if isinstance(constraint, Range):
            if not stats.is_numeric:
                return False
            low = _as_float(constraint.low)
            high = _as_float(constraint.high)
            col_min = _as_float(stats.min_value)
            col_max = _as_float(stats.max_value)
            if col_min is None or col_max is None:
                return True
            if low is not None and col_max < low:
                return False
            if high is not None and col_min > high:
                return False
            return True
        if isinstance(constraint, Predicate) and constraint.op in (">", ">=", "<", "<="):
            constant = _as_float(constraint.constant)
            if constant is None:
                return True
            if not stats.is_numeric:
                return False
            col_min = _as_float(stats.min_value)
            col_max = _as_float(stats.max_value)
            if col_min is None or col_max is None:
                return True
            if constraint.op in (">", ">=") and col_max < constant:
                return False
            if constraint.op in ("<", "<=") and col_min > constant:
                return False
            return True
        if isinstance(constraint, Conjunction):
            return all(self._could_match(stats, part) for part in constraint.parts)
        if isinstance(constraint, Disjunction):
            return any(self._could_match(stats, part) for part in constraint.parts)
        return True

    def _scan_confirms(self, ref: ColumnRef, constraint: ValueConstraint) -> bool:
        """Confirm a catalog screen by scanning the column (early exit)."""
        values = self._database.column_values(ref)
        for scanned, value in enumerate(values):
            if scanned >= self._scan_limit:
                # Give the column the benefit of the doubt past the budget.
                return True
            if value is None:
                continue
            if constraint.matches(value):
                return True
        return False


def _as_float(value) -> Optional[float]:
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None
