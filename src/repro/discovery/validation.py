"""Filter validation against the source database.

A filter passes when the result of its sub-PJ-query contains at least one
row satisfying the sample constraint's cells at the filter's positions.
The validator builds cell predicates from the constraints, pushes them into
the executor (which applies them before joining and stops at the first
match) and caches outcomes so a filter is never executed twice.

Validation can be **batched across candidates**: filters whose sub-queries
share one join structure (same tables, same edges —
:func:`~repro.query.plan.join_prefix_key`) are decided together by
:meth:`~repro.query.executor.Executor.exists_batch`, which streams the
shared join once and tests every filter's pushed-down row selections
against each assignment.  Outcomes are bit-for-bit identical to the
per-candidate path; only the join work is shared.  The scheduling layer
(:class:`~repro.discovery.scheduler.ValidationDriver`) still chooses and
counts filters one at a time, so validation counts are unaffected —
batch-mates decided early simply become validator cache hits when the
policy later picks them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.constraints.spec import MappingSpec
from repro.discovery.filters import Filter
from repro.query.executor import BatchProbe, Executor
from repro.query.plan import join_prefix_key

__all__ = ["FilterValidator", "ValidationStats"]


@dataclass
class ValidationStats:
    """Counters kept by a :class:`FilterValidator`."""

    validations: int = 0
    cache_hits: int = 0
    passed: int = 0
    failed: int = 0
    #: Batched executor passes issued (each decided >= 2 filters at once).
    batches: int = 0
    #: Outcomes computed for batch-mates beyond the requested filter.
    batched_outcomes: int = 0

    def record(self, outcome: bool) -> None:
        """Record one (uncached) validation outcome."""
        self.validations += 1
        if outcome:
            self.passed += 1
        else:
            self.failed += 1


class FilterValidator:
    """Executes filters and caches their pass/fail outcomes."""

    def __init__(self, executor: Executor, spec: MappingSpec):
        self._executor = executor
        self._spec = spec
        self._cache: dict[tuple, bool] = {}
        self.stats = ValidationStats()

    def _cache_key(self, filter_: Filter) -> tuple:
        return (
            filter_.sample_index,
            filter_.positions,
            filter_.query.signature(),
        )

    def _memo_key(self, filter_: Filter) -> tuple:
        """Canonical (query, predicate) signature for the executor memo.

        Unlike :meth:`_cache_key`, this keys on the *constraint contents*
        rather than the sample index, so identical probes are shared
        across samples, validators and discovery runs on one executor.
        """
        sample = self._spec.samples[filter_.sample_index]
        constraints = tuple(
            (projection_index, constraint)
            for projection_index, position in enumerate(filter_.positions)
            if (constraint := sample.cell(position)) is not None
        )
        return (filter_.query.signature(), constraints)

    def _predicates(self, filter_: Filter) -> dict[int, callable]:
        sample = self._spec.samples[filter_.sample_index]
        predicates: dict[int, callable] = {}
        for projection_index, position in enumerate(filter_.positions):
            constraint = sample.cell(position)
            if constraint is not None:
                predicates[projection_index] = constraint.matches
        return predicates

    def validate(self, filter_: Filter) -> bool:
        """Validate ``filter_`` (counted; cached)."""
        key = self._cache_key(filter_)
        if key in self._cache:
            self.stats.cache_hits += 1
            return self._cache[key]
        outcome = self._execute(filter_)
        self._cache[key] = outcome
        self.stats.record(outcome)
        return outcome

    def validate_batch(
        self, filter_: Filter, peers: Sequence[Filter] = ()
    ) -> bool:
        """Validate ``filter_``, deciding same-structure peers on the side.

        ``peers`` are other filters the caller expects to need soon
        (typically every pending filter sharing ``filter_``'s join
        prefix).  Peers whose sub-query does not actually share the join
        structure, or whose outcome is already cached, are skipped.  All
        computed outcomes — the requested filter's and every batched
        peer's — land in the validator cache and the executor memo, so a
        later :meth:`validate` of a peer is a cache hit.

        Only the requested filter is recorded in
        :attr:`ValidationStats.validations`; peers are counted under
        :attr:`ValidationStats.batched_outcomes`.
        """
        key = self._cache_key(filter_)
        if key in self._cache:
            self.stats.cache_hits += 1
            return self._cache[key]
        prefix = join_prefix_key(filter_.query)
        batch = [filter_]
        seen = {key}
        for peer in peers:
            peer_key = self._cache_key(peer)
            if peer_key in seen or peer_key in self._cache:
                continue
            if join_prefix_key(peer.query) != prefix:
                continue
            seen.add(peer_key)
            batch.append(peer)
        if len(batch) == 1:
            outcome = self._execute(filter_)
            self._cache[key] = outcome
            self.stats.record(outcome)
            return outcome
        probes = []
        for member in batch:
            sample = self._spec.samples[member.sample_index]
            predicates: dict[int, callable] = {}
            tags: dict[int, object] = {}
            for projection_index, position in enumerate(member.positions):
                constraint = sample.cell(position)
                if constraint is not None:
                    predicates[projection_index] = constraint.matches
                    # Tagging by the (hashable, content-compared)
                    # constraint lets the executor scan each column once
                    # per distinct constraint across the whole batch.
                    tags[projection_index] = constraint
            probes.append(
                BatchProbe(
                    query=member.query,
                    cell_predicates=predicates,
                    cache_key=self._memo_key(member),
                    predicate_tags=tags,
                )
            )
        outcomes = self._executor.exists_batch(probes)
        self.stats.batches += 1
        self.stats.batched_outcomes += len(batch) - 1
        for member, outcome in zip(batch, outcomes):
            self._cache[self._cache_key(member)] = outcome
        self.stats.record(outcomes[0])
        return outcomes[0]

    def peek(self, filter_: Filter) -> bool:
        """Validate without counting (used by the optimal oracle)."""
        key = self._cache_key(filter_)
        if key in self._cache:
            return self._cache[key]
        outcome = self._execute(filter_)
        self._cache[key] = outcome
        return outcome

    def _execute(self, filter_: Filter) -> bool:
        predicates = self._predicates(filter_)
        return self._executor.exists(
            filter_.query,
            cell_predicates=predicates,
            cache_key=self._memo_key(filter_),
        )

    @property
    def validations_performed(self) -> int:
        """Number of counted (non-cached) validations performed so far."""
        return self.stats.validations
