"""Filter validation against the source database.

A filter passes when the result of its sub-PJ-query contains at least one
row satisfying the sample constraint's cells at the filter's positions.
The validator builds cell predicates from the constraints, pushes them into
the executor (which applies them before joining and stops at the first
match) and caches outcomes so a filter is never executed twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.constraints.spec import MappingSpec
from repro.discovery.filters import Filter
from repro.query.executor import Executor

__all__ = ["FilterValidator", "ValidationStats"]


@dataclass
class ValidationStats:
    """Counters kept by a :class:`FilterValidator`."""

    validations: int = 0
    cache_hits: int = 0
    passed: int = 0
    failed: int = 0

    def record(self, outcome: bool) -> None:
        """Record one (uncached) validation outcome."""
        self.validations += 1
        if outcome:
            self.passed += 1
        else:
            self.failed += 1


class FilterValidator:
    """Executes filters and caches their pass/fail outcomes."""

    def __init__(self, executor: Executor, spec: MappingSpec):
        self._executor = executor
        self._spec = spec
        self._cache: dict[tuple, bool] = {}
        self.stats = ValidationStats()

    def _cache_key(self, filter_: Filter) -> tuple:
        return (
            filter_.sample_index,
            filter_.positions,
            filter_.query.signature(),
        )

    def _memo_key(self, filter_: Filter) -> tuple:
        """Canonical (query, predicate) signature for the executor memo.

        Unlike :meth:`_cache_key`, this keys on the *constraint contents*
        rather than the sample index, so identical probes are shared
        across samples, validators and discovery runs on one executor.
        """
        sample = self._spec.samples[filter_.sample_index]
        constraints = tuple(
            (projection_index, constraint)
            for projection_index, position in enumerate(filter_.positions)
            if (constraint := sample.cell(position)) is not None
        )
        return (filter_.query.signature(), constraints)

    def _predicates(self, filter_: Filter) -> dict[int, callable]:
        sample = self._spec.samples[filter_.sample_index]
        predicates: dict[int, callable] = {}
        for projection_index, position in enumerate(filter_.positions):
            constraint = sample.cell(position)
            if constraint is not None:
                predicates[projection_index] = constraint.matches
        return predicates

    def validate(self, filter_: Filter) -> bool:
        """Validate ``filter_`` (counted; cached)."""
        key = self._cache_key(filter_)
        if key in self._cache:
            self.stats.cache_hits += 1
            return self._cache[key]
        outcome = self._execute(filter_)
        self._cache[key] = outcome
        self.stats.record(outcome)
        return outcome

    def peek(self, filter_: Filter) -> bool:
        """Validate without counting (used by the optimal oracle)."""
        key = self._cache_key(filter_)
        if key in self._cache:
            return self._cache[key]
        outcome = self._execute(filter_)
        self._cache[key] = outcome
        return outcome

    def _execute(self, filter_: Filter) -> bool:
        predicates = self._predicates(filter_)
        return self._executor.exists(
            filter_.query,
            cell_predicates=predicates,
            cache_key=self._memo_key(filter_),
        )

    @property
    def validations_performed(self) -> int:
        """Number of counted (non-cached) validations performed so far."""
        return self.stats.validations
