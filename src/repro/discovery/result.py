"""Discovery results and statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.discovery.candidates import CandidateQuery
from repro.query.pj_query import ProjectJoinQuery
from repro.query.sql import to_sql

__all__ = ["DiscoveryStats", "DiscoveryResult"]


@dataclass
class DiscoveryStats:
    """Quantitative record of one discovery run.

    These are the numbers the evaluation harness aggregates: related-column
    counts, candidate/filter counts, the number of filter validations the
    scheduler actually paid for, implied (free) outcomes, and wall-clock
    time split by pipeline stage.
    """

    scheduler_name: str = "bayesian"
    num_related_columns: int = 0
    num_candidates: int = 0
    num_filters: int = 0
    validations: int = 0
    implied_outcomes: int = 0
    num_confirmed: int = 0
    num_pruned: int = 0
    exists_cache_hits: int = 0
    exists_cache_misses: int = 0
    join_index_hits: int = 0
    join_index_builds: int = 0
    joins_performed: int = 0
    plan_cache_hits: int = 0
    plan_cache_builds: int = 0
    bloom_rejections: int = 0
    sketch_estimates_used: int = 0
    validation_batches: int = 0
    batched_outcomes: int = 0
    elapsed_seconds: float = 0.0
    related_column_seconds: float = 0.0
    candidate_seconds: float = 0.0
    validation_seconds: float = 0.0
    timed_out: bool = False

    def as_dict(self) -> dict:
        """Plain-dict view used by reports and benchmarks."""
        return {
            "scheduler": self.scheduler_name,
            "related_columns": self.num_related_columns,
            "candidates": self.num_candidates,
            "filters": self.num_filters,
            "validations": self.validations,
            "implied_outcomes": self.implied_outcomes,
            "confirmed": self.num_confirmed,
            "pruned": self.num_pruned,
            "exists_cache_hits": self.exists_cache_hits,
            "exists_cache_misses": self.exists_cache_misses,
            "join_index_hits": self.join_index_hits,
            "join_index_builds": self.join_index_builds,
            "joins_performed": self.joins_performed,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_builds": self.plan_cache_builds,
            "bloom_rejections": self.bloom_rejections,
            "sketch_estimates_used": self.sketch_estimates_used,
            "validation_batches": self.validation_batches,
            "batched_outcomes": self.batched_outcomes,
            "elapsed_seconds": self.elapsed_seconds,
            "timed_out": self.timed_out,
        }


@dataclass
class DiscoveryResult:
    """The queries Prism returns, plus how it found them."""

    queries: list[ProjectJoinQuery] = field(default_factory=list)
    candidates: list[CandidateQuery] = field(default_factory=list)
    stats: DiscoveryStats = field(default_factory=DiscoveryStats)

    @property
    def num_queries(self) -> int:
        """Number of satisfying schema mapping queries discovered."""
        return len(self.queries)

    @property
    def is_empty(self) -> bool:
        """Whether no satisfying query was found."""
        return not self.queries

    @property
    def timed_out(self) -> bool:
        """Whether the run hit its interactive time limit."""
        return self.stats.timed_out

    def best(self) -> Optional[ProjectJoinQuery]:
        """The first (smallest-join) satisfying query, if any."""
        return self.queries[0] if self.queries else None

    def sql(self) -> list[str]:
        """All satisfying queries rendered as SQL strings."""
        return [to_sql(query) for query in self.queries]

    def describe(self) -> str:
        """Human-readable summary used by the CLI and examples."""
        lines = [
            f"{self.num_queries} satisfying schema mapping "
            f"quer{'y' if self.num_queries == 1 else 'ies'} "
            f"({self.stats.validations} filter validations, "
            f"{self.stats.elapsed_seconds:.2f}s"
            f"{', TIMED OUT' if self.timed_out else ''})",
        ]
        for index, query in enumerate(self.queries, start=1):
            lines.append(f"  [{index}] {to_sql(query)}")
        return "\n".join(lines)
