"""Evaluation harness: metrics, experiment runners and text reporting."""

from repro.evaluation.experiments import (
    aggregate_resolution_sweep,
    aggregate_scheduler_comparison,
    build_cases,
    run_baseline_comparison,
    run_metadata_ablation,
    run_resolution_sweep,
    run_scalability_sweep,
    run_scheduler_comparison,
)
from repro.evaluation.metrics import (
    gap_reduction,
    gap_to_optimal,
    mean,
    median,
    summarize,
)
from repro.evaluation.reporting import format_table, format_value

__all__ = [
    "aggregate_resolution_sweep",
    "aggregate_scheduler_comparison",
    "build_cases",
    "format_table",
    "format_value",
    "gap_reduction",
    "gap_to_optimal",
    "mean",
    "median",
    "run_baseline_comparison",
    "run_metadata_ablation",
    "run_resolution_sweep",
    "run_scalability_sweep",
    "run_scheduler_comparison",
    "summarize",
]
