"""Metrics used by the evaluation harness.

The headline metric of §2.4 is the *gap* between a scheduler's number of
filter validations and the optimum, and how much Prism's Bayesian
scheduling reduces that gap relative to the Filter baseline (up to ~70 %,
on average ~30 % in the paper).
"""

from __future__ import annotations

import statistics
from typing import Iterable, Optional, Sequence

__all__ = [
    "gap_to_optimal",
    "gap_reduction",
    "mean",
    "median",
    "summarize",
]


def gap_to_optimal(validations: int, optimal_validations: int) -> int:
    """Extra validations a scheduler paid compared with the optimum."""
    return max(0, validations - optimal_validations)


def gap_reduction(
    baseline_validations: int,
    improved_validations: int,
    optimal_validations: int,
) -> Optional[float]:
    """Fraction of the baseline's gap-to-optimum that the improvement closes.

    Returns ``None`` when the baseline already matches the optimum (there is
    no gap to reduce, so the ratio is undefined); such cases are excluded
    from averages exactly as a per-case undefined ratio would be.
    """
    baseline_gap = gap_to_optimal(baseline_validations, optimal_validations)
    if baseline_gap == 0:
        return None
    improved_gap = gap_to_optimal(improved_validations, optimal_validations)
    return 1.0 - improved_gap / baseline_gap


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty input)."""
    values = list(values)
    return statistics.fmean(values) if values else 0.0


def median(values: Iterable[float]) -> float:
    """Median (0.0 for an empty input)."""
    values = list(values)
    return statistics.median(values) if values else 0.0


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean / median / min / max summary of a numeric series."""
    if not values:
        return {"mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0, "count": 0}
    return {
        "mean": statistics.fmean(values),
        "median": statistics.median(values),
        "min": min(values),
        "max": max(values),
        "count": len(values),
    }
