"""Experiment runners reproducing the paper's evaluation (§2.4).

Each function runs one experiment from DESIGN.md's per-experiment index and
returns plain dictionaries (one per measurement) so the benchmark harness
and EXPERIMENTS.md can render them as tables.  Aggregation helpers compute
the per-level / per-scheduler summaries the paper reports narratively.

* E1 / E2 — :func:`run_resolution_sweep`: execution time and number of
  satisfying queries as constraints loosen.
* E3 — :func:`run_scheduler_comparison`: filter validations for the Filter
  baseline, Prism (Bayesian) and the optimum, with gap reductions.
* E4 — :func:`run_scalability_sweep`: discovery time versus target-schema
  width and join size.
* E6 — :func:`run_baseline_comparison`: sample-driven (MWeaver-style)
  baseline versus Prism on degraded (non-exact) specs.
* Ablation — :func:`run_metadata_ablation`: effect of metadata constraints
  on the candidate space and validations.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.mweaver import MWeaverBaseline
from repro.constraints.spec import MappingSpec
from repro.dataset.catalog import MetadataCatalog
from repro.dataset.database import Database
from repro.discovery.candidates import GenerationLimits
from repro.discovery.engine import Prism
from repro.evaluation.metrics import gap_reduction, mean
from repro.workloads.degrade import (
    DEFAULT_SWEEP_LEVELS,
    ResolutionLevel,
    spec_for_level,
)
from repro.workloads.generator import WorkloadCase, WorkloadGenerator

__all__ = [
    "build_cases",
    "run_resolution_sweep",
    "aggregate_resolution_sweep",
    "run_scheduler_comparison",
    "aggregate_scheduler_comparison",
    "run_scalability_sweep",
    "run_baseline_comparison",
    "run_metadata_ablation",
]

_DEFAULT_SCHEDULERS = ("filter", "bayesian", "optimal")


def build_cases(
    database: Database,
    count: int = 5,
    num_columns: int = 3,
    num_tables: int = 2,
    seed: int = 0,
) -> list[WorkloadCase]:
    """Synthesise ``count`` ground-truth cases from ``database``."""
    generator = WorkloadGenerator(database, seed=seed)
    return generator.generate_cases(
        count, num_columns=num_columns, num_tables=num_tables
    )


def _make_engine(
    database: Database,
    time_limit: float,
    limits: Optional[GenerationLimits],
) -> Prism:
    return Prism(database, time_limit=time_limit, limits=limits)


# ----------------------------------------------------------------------
# E1 / E2: resolution sweep
# ----------------------------------------------------------------------
def run_resolution_sweep(
    database: Database,
    cases: Sequence[WorkloadCase],
    levels: Sequence[ResolutionLevel] = DEFAULT_SWEEP_LEVELS,
    scheduler: str = "bayesian",
    time_limit: float = 60.0,
    validation_budget: Optional[int] = None,
    seed: int = 0,
    limits: Optional[GenerationLimits] = None,
    engine: Optional[Prism] = None,
) -> list[dict]:
    """E1/E2: run every case at every looseness level.

    Returns one row per (case, level) with the discovery time, the number
    of satisfying queries, the validation count and whether the ground
    truth was recovered.
    """
    engine = engine or _make_engine(database, time_limit, limits)
    catalog = engine.catalog
    rows: list[dict] = []
    for case in cases:
        for level in levels:
            spec = spec_for_level(case, level, database, catalog=catalog, seed=seed)
            result = engine.discover(
                spec,
                scheduler=scheduler,
                time_limit=time_limit,
                validation_budget=validation_budget,
            )
            rows.append(
                {
                    "case": case.case_id,
                    "level": level.value,
                    "elapsed_seconds": result.stats.elapsed_seconds,
                    "num_queries": result.num_queries,
                    "candidates": result.stats.num_candidates,
                    "validations": result.stats.validations,
                    "found_ground_truth": any(
                        case.matches_query(query) for query in result.queries
                    ),
                    "timed_out": result.timed_out,
                }
            )
    return rows


def aggregate_resolution_sweep(rows: Sequence[dict]) -> list[dict]:
    """Per-level aggregation of the resolution sweep (E1/E2 summary)."""
    levels = []
    for row in rows:
        if row["level"] not in levels:
            levels.append(row["level"])
    summary = []
    for level in levels:
        level_rows = [row for row in rows if row["level"] == level]
        summary.append(
            {
                "level": level,
                "cases": len(level_rows),
                "mean_elapsed_seconds": mean(
                    row["elapsed_seconds"] for row in level_rows
                ),
                "mean_num_queries": mean(row["num_queries"] for row in level_rows),
                "mean_validations": mean(row["validations"] for row in level_rows),
                "ground_truth_rate": mean(
                    1.0 if row["found_ground_truth"] else 0.0 for row in level_rows
                ),
                "timeout_rate": mean(
                    1.0 if row["timed_out"] else 0.0 for row in level_rows
                ),
            }
        )
    return summary


# ----------------------------------------------------------------------
# E3: scheduler comparison (filter validations / gap to optimum)
# ----------------------------------------------------------------------
def run_scheduler_comparison(
    database: Database,
    cases: Sequence[WorkloadCase],
    level: ResolutionLevel = ResolutionLevel.MIXED,
    schedulers: Sequence[str] = _DEFAULT_SCHEDULERS,
    time_limit: float = 60.0,
    validation_budget: Optional[int] = None,
    seed: int = 0,
    limits: Optional[GenerationLimits] = None,
    engine: Optional[Prism] = None,
) -> list[dict]:
    """E3: validations per scheduler on the same specs.

    Returns one row per case with the validation counts of every scheduler
    plus the per-case gap reduction of Prism relative to the Filter
    baseline (when defined).
    """
    engine = engine or _make_engine(database, time_limit, limits)
    catalog = engine.catalog
    rows: list[dict] = []
    for case in cases:
        spec = spec_for_level(case, level, database, catalog=catalog, seed=seed)
        row: dict = {"case": case.case_id, "level": level.value}
        per_scheduler: dict[str, int] = {}
        num_queries: dict[str, int] = {}
        for scheduler in schedulers:
            result = engine.discover(
                spec,
                scheduler=scheduler,
                time_limit=time_limit,
                validation_budget=validation_budget,
            )
            per_scheduler[scheduler] = result.stats.validations
            num_queries[scheduler] = result.num_queries
            row[f"validations_{scheduler}"] = result.stats.validations
            row[f"queries_{scheduler}"] = result.num_queries
        if "filter" in per_scheduler and "bayesian" in per_scheduler and (
            "optimal" in per_scheduler
        ):
            row["gap_reduction"] = gap_reduction(
                per_scheduler["filter"],
                per_scheduler["bayesian"],
                per_scheduler["optimal"],
            )
        rows.append(row)
    return rows


def aggregate_scheduler_comparison(rows: Sequence[dict]) -> dict:
    """E3 summary: mean/max gap reduction and mean validations per scheduler."""
    reductions = [
        row["gap_reduction"]
        for row in rows
        if row.get("gap_reduction") is not None
    ]
    summary: dict = {
        "cases": len(rows),
        "mean_gap_reduction": mean(reductions),
        "max_gap_reduction": max(reductions) if reductions else 0.0,
    }
    schedulers = sorted(
        {
            key.removeprefix("validations_")
            for row in rows
            for key in row
            if key.startswith("validations_")
        }
    )
    for scheduler in schedulers:
        summary[f"mean_validations_{scheduler}"] = mean(
            row[f"validations_{scheduler}"]
            for row in rows
            if f"validations_{scheduler}" in row
        )
    return summary


# ----------------------------------------------------------------------
# E4: scalability sweep
# ----------------------------------------------------------------------
def run_scalability_sweep(
    database: Database,
    widths: Sequence[int] = (2, 3, 4),
    table_counts: Sequence[int] = (1, 2, 3),
    cases_per_config: int = 2,
    level: ResolutionLevel = ResolutionLevel.EXACT,
    scheduler: str = "bayesian",
    time_limit: float = 60.0,
    validation_budget: Optional[int] = None,
    seed: int = 0,
    limits: Optional[GenerationLimits] = None,
) -> list[dict]:
    """E4: discovery time versus target width and ground-truth join size."""
    engine = _make_engine(database, time_limit, limits)
    generator = WorkloadGenerator(database, seed=seed)
    rows: list[dict] = []
    for num_tables in table_counts:
        for width in widths:
            if width < num_tables:
                continue
            for __ in range(cases_per_config):
                case = generator.generate_case(
                    num_columns=width, num_tables=num_tables
                )
                spec = spec_for_level(
                    case, level, database, catalog=engine.catalog, seed=seed
                )
                result = engine.discover(
                    spec,
                    scheduler=scheduler,
                    time_limit=time_limit,
                    validation_budget=validation_budget,
                )
                rows.append(
                    {
                        "columns": width,
                        "tables": num_tables,
                        "case": case.case_id,
                        "elapsed_seconds": result.stats.elapsed_seconds,
                        "candidates": result.stats.num_candidates,
                        "filters": result.stats.num_filters,
                        "validations": result.stats.validations,
                        "num_queries": result.num_queries,
                        "timed_out": result.timed_out,
                    }
                )
    return rows


# ----------------------------------------------------------------------
# E6: sample-driven baseline comparison
# ----------------------------------------------------------------------
def run_baseline_comparison(
    database: Database,
    cases: Sequence[WorkloadCase],
    levels: Sequence[ResolutionLevel] = (
        ResolutionLevel.EXACT,
        ResolutionLevel.DISJUNCTION,
        ResolutionLevel.SPARSE,
    ),
    time_limit: float = 60.0,
    validation_budget: Optional[int] = None,
    seed: int = 0,
    limits: Optional[GenerationLimits] = None,
) -> list[dict]:
    """E6: MWeaver-style exact-sample baseline versus Prism per level.

    For each (case, level): whether the baseline can even ingest the spec,
    and whether each system recovers the ground-truth mapping.
    """
    engine = _make_engine(database, time_limit, limits)
    baseline = MWeaverBaseline(database, time_limit=time_limit, limits=limits)
    rows: list[dict] = []
    for case in cases:
        for level in levels:
            spec = spec_for_level(case, level, database, catalog=engine.catalog,
                                  seed=seed)
            baseline_supported = baseline.supports(spec)
            baseline_found = False
            if baseline_supported:
                baseline_result = baseline.discover(spec)
                baseline_found = any(
                    case.matches_query(query) for query in baseline_result.queries
                )
            prism_result = engine.discover(
                spec, time_limit=time_limit, validation_budget=validation_budget
            )
            rows.append(
                {
                    "case": case.case_id,
                    "level": level.value,
                    "baseline_supported": baseline_supported,
                    "baseline_found_truth": baseline_found,
                    "prism_found_truth": any(
                        case.matches_query(query) for query in prism_result.queries
                    ),
                    "prism_num_queries": prism_result.num_queries,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Ablation: metadata constraints
# ----------------------------------------------------------------------
def run_metadata_ablation(
    database: Database,
    cases: Sequence[WorkloadCase],
    time_limit: float = 60.0,
    validation_budget: Optional[int] = None,
    seed: int = 0,
    limits: Optional[GenerationLimits] = None,
) -> list[dict]:
    """Effect of metadata constraints on the candidate space (DESIGN ablation).

    Uses the SPARSE level (mostly-blank samples) with and without its
    metadata constraints and reports candidate/validation counts.
    """
    engine = _make_engine(database, time_limit, limits)
    rows: list[dict] = []
    for case in cases:
        spec_with = spec_for_level(
            case, ResolutionLevel.SPARSE, database, catalog=engine.catalog, seed=seed
        )
        spec_without = MappingSpec(spec_with.num_columns, samples=spec_with.samples)
        for label, spec in (("with_metadata", spec_with),
                            ("without_metadata", spec_without)):
            result = engine.discover(
                spec, time_limit=time_limit, validation_budget=validation_budget
            )
            rows.append(
                {
                    "case": case.case_id,
                    "variant": label,
                    "candidates": result.stats.num_candidates,
                    "filters": result.stats.num_filters,
                    "validations": result.stats.validations,
                    "num_queries": result.num_queries,
                    "elapsed_seconds": result.stats.elapsed_seconds,
                }
            )
    return rows
