"""Plain-text tables for experiment results.

The benchmark harness prints the same rows/series the paper reports; this
module renders lists of dictionaries as aligned fixed-width tables so the
output is readable both in a terminal and in CI logs.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: Any) -> str:
    """Render one cell: floats get 3 significant decimals, None a dash."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` (list of dicts) as an aligned text table.

    Args:
        rows: the data rows.
        columns: column order; defaults to the keys of the first row.
        title: optional heading printed above the table.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        [format_value(row.get(column)) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append(
            "  ".join(rendered[i].ljust(widths[i]) for i in range(len(columns)))
        )
    return "\n".join(lines)
