"""The default columnar storage backend.

Each table is stored as one array per column instead of a list of row
tuples:

* **text columns are dictionary-encoded** — a cell is an integer code into
  a per-column dictionary of distinct strings (NULL is code ``-1``), so
  repeated strings cost one int and per-distinct-value work (normalizing,
  tokenizing, predicate evaluation) is done once per dictionary entry
  instead of once per row;
* **every column keeps a NULL mask** and running NULL count;
* **join-key hash indexes** (value → row indexes) are built lazily, cached
  per (table, column) and invalidated on write, so repeated joins and
  existence probes reuse them instead of rebuilding hash tables per query.

The tuple-oriented API (``rows()``/``row()``) is a compatibility layer:
tuples are materialized lazily and cached until the next write.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Any, Callable, Mapping, Optional, Sequence
from uuid import uuid4

from repro.dataset.types import DataType
from repro.errors import SchemaError
from repro.storage.backend import CellReader, StorageBackend
from repro.storage.delta import NO_DICTIONARY, ColumnDelta, TableDelta, TableMark

__all__ = ["ColumnStore"]

_NULL_CODE = -1


class _ColumnData:
    """Physical storage of one column."""

    __slots__ = ("data_type", "is_text", "values", "codes", "dictionary",
                 "code_of", "nulls", "null_count")

    def __init__(self, data_type: DataType):
        self.data_type = data_type
        self.is_text = data_type is DataType.TEXT
        if self.is_text:
            self.values: Optional[list[Any]] = None
            self.codes: list[int] = []
            self.dictionary: list[str] = []
            self.code_of: dict[str, int] = {}
        else:
            self.values = []
            self.codes = []
            self.dictionary = []
            self.code_of = {}
        self.nulls: list[bool] = []
        self.null_count = 0

    def append(self, value: Any) -> None:
        is_null = value is None
        self.nulls.append(is_null)
        if is_null:
            self.null_count += 1
        if self.is_text:
            if is_null:
                self.codes.append(_NULL_CODE)
                return
            code = self.code_of.get(value)
            if code is None:
                code = len(self.dictionary)
                self.code_of[value] = code
                self.dictionary.append(value)
            self.codes.append(code)
        else:
            self.values.append(value)

    def get(self, row_index: int) -> Any:
        if self.is_text:
            code = self.codes[row_index]
            return None if code < 0 else self.dictionary[code]
        return self.values[row_index]

    def decoded(self) -> list[Any]:
        """All values in row order, NULLs included."""
        if not self.is_text:
            return list(self.values)
        dictionary = self.dictionary
        return [None if code < 0 else dictionary[code] for code in self.codes]

    def reader(self) -> CellReader:
        if not self.is_text:
            values = self.values
            return values.__getitem__
        codes = self.codes
        dictionary = self.dictionary

        def read(row_index: int) -> Any:
            code = codes[row_index]
            return None if code < 0 else dictionary[code]

        return read


class _TableStore:
    """All columns of one table plus its derived caches.

    Derived caches (the row-tuple cache and the join-key hash indexes) are
    published copy-on-write under ``_lock`` so concurrent readers either
    see a complete, immutable cache object or build their own: a reader
    holding a pre-write reference keeps a consistent (if stale) snapshot,
    never a half-built one.  Writes also run under the lock so the version
    token can never lag behind the data it stamps.
    """

    __slots__ = ("name", "columns", "num_rows", "version", "store_token",
                 "_rows_cache", "_join_indexes", "_lock")

    def __init__(self, name: str, columns: Sequence[Any]):
        self.name = name
        self.columns = [_ColumnData(column.data_type) for column in columns]
        self.num_rows = 0
        self.version = 0
        # Unique physical identity: a recreated table under the same name
        # gets a new token, so marks taken from the old store can never be
        # mistaken for an append history of the new one (version and row
        # count both restart at 0, so the counters alone cannot tell).
        self.store_token = uuid4().hex
        self._rows_cache: Optional[list[tuple[Any, ...]]] = None
        self._join_indexes: dict[int, dict[Any, list[int]]] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks cannot be pickled and derived caches are cheap to rebuild,
        # so persisted stores carry only the physical columns.
        return {
            "name": self.name,
            "columns": self.columns,
            "num_rows": self.num_rows,
            "version": self.version,
            "store_token": self.store_token,
        }

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.columns = state["columns"]
        self.num_rows = state["num_rows"]
        self.version = state["version"]
        # A store pickled before tokens existed gets a fresh identity:
        # marks taken from it then mismatch and refresh falls back to a
        # rebuild, which is the conservative right answer.
        self.store_token = state.get("store_token") or uuid4().hex
        self._rows_cache = None
        self._join_indexes = {}
        self._lock = threading.Lock()

    def append(self, prepared: Sequence[Any]) -> None:
        with self._lock:
            for column, value in zip(self.columns, prepared):
                column.append(value)
            self.num_rows += 1
            self.version += 1
            # Replace (never mutate) the published caches: readers holding
            # the old objects keep a consistent pre-write snapshot.
            self._rows_cache = None
            self._join_indexes = {}

    def row(self, index: int) -> tuple[Any, ...]:
        cache = self._rows_cache
        if cache is not None:
            return cache[index]
        if index < 0:
            index += self.num_rows
        if not 0 <= index < self.num_rows:
            raise IndexError(f"row index {index} out of range")
        return tuple(column.get(index) for column in self.columns)

    def rows(self) -> list[tuple[Any, ...]]:
        cache = self._rows_cache
        if cache is None:
            with self._lock:
                cache = self._rows_cache
                if cache is None:
                    # Tables always have >= 1 column (enforced by Table), so
                    # zip(*columns) covers every case including zero rows.
                    cache = list(
                        zip(*(column.decoded() for column in self.columns))
                    )
                    self._rows_cache = cache
        return cache

    def join_index(self, position: int) -> dict[Any, list[int]]:
        index = self._join_indexes.get(position)
        if index is None:
            with self._lock:
                # Double-checked: another thread may have built and
                # published this index while we waited for the lock.
                index = self._join_indexes.get(position)
                if index is None:
                    index = self._build_join_index(position)
                    published = dict(self._join_indexes)
                    published[position] = index
                    self._join_indexes = published
        return index

    def _build_join_index(self, position: int) -> dict[Any, list[int]]:
        index: dict[Any, list[int]] = {}
        column = self.columns[position]
        if column.is_text:
            dictionary = column.dictionary
            per_code: list[list[int]] = [[] for _ in dictionary]
            for row_index, code in enumerate(column.codes):
                if code >= 0:
                    per_code[code].append(row_index)
            for code, value in enumerate(dictionary):
                if per_code[code]:
                    index[value] = per_code[code]
        else:
            for row_index, value in enumerate(column.values):
                if value is None:
                    continue
                bucket = index.get(value)
                if bucket is None:
                    index[value] = [row_index]
                else:
                    bucket.append(row_index)
        return index

    def mark(self) -> TableMark:
        with self._lock:
            return self._mark_locked()

    def _mark_locked(self) -> TableMark:
        # Caller holds self._lock.
        return TableMark(
            table=self.name,
            version=self.version,
            num_rows=self.num_rows,
            column_count=len(self.columns),
            text_dict_lens=tuple(
                len(column.dictionary) if column.is_text else NO_DICTIONARY
                for column in self.columns
            ),
            store_token=self.store_token,
        )

    def delta_since(self, mark: TableMark) -> Optional[TableDelta]:
        with self._lock:
            if mark.table != self.name:
                return None
            if mark.store_token != self.store_token:
                # The mark belongs to a different physical store — e.g.
                # the table was dropped and recreated under the same name
                # (its counters restart, so the arithmetic below would
                # happily call the replacement rows an "append").
                return None
            if mark.column_count != len(self.columns):
                return None
            if self.version < mark.version or self.num_rows < mark.num_rows:
                return None
            if self.version - mark.version != self.num_rows - mark.num_rows:
                # Some write other than a row append moved the version;
                # the difference is not expressible as a delta.
                return None
            start, end = mark.num_rows, self.num_rows
            column_deltas = []
            for position, (column, marked_len) in enumerate(
                zip(self.columns, mark.text_dict_lens)
            ):
                if column.is_text:
                    if marked_len == NO_DICTIONARY:
                        return None  # the mark saw a different encoding
                    dict_len = len(column.dictionary)
                    if dict_len < marked_len:
                        return None  # dictionaries only grow under appends
                    codes = tuple(column.codes[start:end])
                    dictionary = column.dictionary
                    column_deltas.append(ColumnDelta(
                        position=position,
                        is_text=True,
                        values=tuple(
                            None if code < 0 else dictionary[code]
                            for code in codes
                        ),
                        codes=codes,
                        dictionary=dictionary,
                        dict_len=dict_len,
                        new_dictionary_entries=tuple(
                            dictionary[marked_len:dict_len]
                        ),
                    ))
                else:
                    if marked_len != NO_DICTIONARY:
                        return None
                    column_deltas.append(ColumnDelta(
                        position=position,
                        is_text=False,
                        values=tuple(column.values[start:end]),
                    ))
            return TableDelta(
                table=self.name,
                start_row=start,
                end_row=end,
                columns=tuple(column_deltas),
                new_mark=self._mark_locked(),
            )

    def select_rows(
        self, position: int, predicate: Callable[[Any], bool]
    ) -> list[int]:
        column = self.columns[position]
        if column.is_text:
            # Evaluate the predicate once per distinct value, then scan the
            # integer codes — the win that pays for dictionary encoding.
            matching = {
                code
                for code, value in enumerate(column.dictionary)
                if predicate(value)
            }
            if not matching:
                return []
            return [
                row_index
                for row_index, code in enumerate(column.codes)
                if code in matching
            ]
        return [
            row_index
            for row_index, value in enumerate(column.values)
            if value is not None and predicate(value)
        ]


class ColumnStore(StorageBackend):
    """In-memory dictionary-encoding columnar backend (the default).

    Reads are safe under concurrent readers: derived caches are published
    copy-on-write inside each table store (see :class:`_TableStore`).
    Table registration/removal is guarded by a store-level lock; concurrent
    writers to the *same* table serialize on that table's lock.
    """

    def __init__(self) -> None:
        self._tables: dict[str, _TableStore] = {}
        self._registry_lock = threading.Lock()

    def __getstate__(self) -> dict:
        return {"_tables": self._tables}

    def __setstate__(self, state: dict) -> None:
        self._tables = state["_tables"]
        self._registry_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Table lifecycle
    # ------------------------------------------------------------------
    def register_table(self, name: str, columns: Sequence[Any]) -> None:
        with self._registry_lock:
            if name in self._tables:
                raise SchemaError(
                    f"table {name!r} is already registered with this backend"
                )
            self._tables[name] = _TableStore(name, columns)

    def drop_table(self, name: str) -> None:
        with self._registry_lock:
            self._tables.pop(name, None)

    def detach_table(self, name: str) -> "ColumnStore":
        detached = ColumnStore()
        with self._registry_lock:
            store = self._tables.pop(name, None)
        if store is not None:
            detached._tables[name] = store
        return detached

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def _store(self, name: str) -> _TableStore:
        try:
            return self._tables[name]
        except KeyError as exc:
            raise SchemaError(
                f"table {name!r} is not registered with this backend"
            ) from exc

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append_row(self, table: str, prepared: Sequence[Any]) -> None:
        self._store(table).append(prepared)

    # ------------------------------------------------------------------
    # Row-oriented reads
    # ------------------------------------------------------------------
    def num_rows(self, table: str) -> int:
        return self._store(table).num_rows

    def row(self, table: str, index: int) -> tuple[Any, ...]:
        return self._store(table).row(index)

    def rows(self, table: str) -> list[tuple[Any, ...]]:
        return self._store(table).rows()

    def cell(self, table: str, row_index: int, position: int) -> Any:
        return self._store(table).columns[position].get(row_index)

    def cell_reader(self, table: str, position: int) -> CellReader:
        return self._store(table).columns[position].reader()

    # ------------------------------------------------------------------
    # Column-oriented reads
    # ------------------------------------------------------------------
    def column_values(self, table: str, position: int) -> list[Any]:
        return self._store(table).columns[position].decoded()

    def null_mask(self, table: str, position: int) -> list[bool]:
        return list(self._store(table).columns[position].nulls)

    def null_count(self, table: str, position: int) -> int:
        return self._store(table).columns[position].null_count

    def distinct_values(self, table: str, position: int) -> set[Any]:
        column = self._store(table).columns[position]
        if column.is_text:
            return set(column.dictionary)
        return {value for value in column.values if value is not None}

    def distinct_count(self, table: str, position: int) -> int:
        column = self._store(table).columns[position]
        if column.is_text:
            # Every dictionary entry was inserted at least once and rows are
            # never deleted, so the dictionary *is* the distinct set.
            return len(column.dictionary)
        return len(self.distinct_values(table, position))

    def value_counts(self, table: str, position: int) -> dict[Any, int]:
        column = self._store(table).columns[position]
        if column.is_text:
            code_counts = Counter(code for code in column.codes if code >= 0)
            dictionary = column.dictionary
            return {dictionary[code]: count for code, count in code_counts.items()}
        return dict(Counter(value for value in column.values if value is not None))

    def text_dictionary(self, table: str, position: int) -> Optional[list[str]]:
        column = self._store(table).columns[position]
        return column.dictionary if column.is_text else None

    def text_column_codes(
        self, table: str, position: int
    ) -> Optional[tuple[list[int], list[str]]]:
        column = self._store(table).columns[position]
        if not column.is_text:
            return None
        return column.codes, column.dictionary

    # ------------------------------------------------------------------
    # Scans and indexes
    # ------------------------------------------------------------------
    def select_rows(
        self, table: str, position: int, predicate: Callable[[Any], bool]
    ) -> list[int]:
        return self._store(table).select_rows(position, predicate)

    def join_index(
        self, table: str, position: int
    ) -> Mapping[Any, Sequence[int]]:
        return self._store(table).join_index(position)

    def has_cached_join_index(self, table: str, position: int) -> bool:
        return position in self._store(table)._join_indexes

    # ------------------------------------------------------------------
    # Versioning
    # ------------------------------------------------------------------
    def version(self, table: str) -> int:
        return self._store(table).version

    # ------------------------------------------------------------------
    # Append deltas
    # ------------------------------------------------------------------
    def table_mark(self, table: str) -> Optional[TableMark]:
        return self._store(table).mark()

    def delta_since(self, table: str, mark: TableMark) -> Optional[TableDelta]:
        return self._store(table).delta_since(mark)
