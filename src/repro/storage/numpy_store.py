"""The NumPy-backed columnar storage backend.

Physically equivalent to :class:`~repro.storage.ColumnStore` — same
dictionary encoding, same NULL semantics, same append-only versioning and
delta capability — but every column lives in a typed NumPy array instead
of a Python list:

* **text columns** keep an ``int64`` code array plus the per-column
  dictionary of distinct strings (NULL is code ``-1``), so predicate
  scans reduce to one predicate call per distinct value followed by a
  vectorized ``isin`` over the codes;
* **int/decimal/boolean columns** are ``int64``/``float64``/``bool``
  arrays with a separate NULL bitmask array (the cell slot of a NULL row
  holds a placeholder and is never read);
* **date/time columns** — and int columns that overflow ``int64`` — fall
  back to object arrays, which stay correct but scan at Python speed.

Arrays grow by amortized doubling, so ``append_row`` (and therefore
``apply_delta`` consumers: append = array write, incremental dictionary
extension) stays O(1) amortized.  Rows are append-only and never
reordered, so a sliced view of the first *n* rows stays valid forever —
the executor's array kernels (:mod:`repro.query.kernels`) lean on that
through the cached :class:`ColumnKernel` snapshots this backend exposes.

Every public accessor returns pure Python values (``tolist()`` at the
boundary), so consumers above — the inverted index, the metadata catalog,
the Bayesian trainers, the delta machinery — observe bit-for-bit the same
data as on the pure-Python store.  The store pickles cleanly (arrays are
trimmed to their logical length; locks and derived caches are dropped),
so process-sharded serving and artifact disk persistence work unchanged.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Mapping, Optional, Sequence
from uuid import uuid4

import numpy as np

from repro.dataset.types import DataType
from repro.errors import SchemaError
from repro.storage.backend import CellReader, StorageBackend
from repro.storage.delta import NO_DICTIONARY, ColumnDelta, TableDelta, TableMark

__all__ = ["NumpyColumnStore", "ColumnKernel"]

_NULL_CODE = -1
_MIN_CAPACITY = 16

#: Physical array kind per declared column type.  DATE/TIME hold Python
#: objects (exact calendar semantics beat lossy ordinal encodings here).
_KIND_OF_TYPE = {
    DataType.TEXT: "text",
    DataType.INT: "int",
    DataType.DECIMAL: "float",
    DataType.BOOLEAN: "bool",
    DataType.DATE: "object",
    DataType.TIME: "object",
}

_DTYPE_OF_KIND = {
    "text": np.int64,
    "int": np.int64,
    "float": np.float64,
    "bool": np.bool_,
    "object": object,
}


class ColumnKernel:
    """An immutable array snapshot of one column for the executor kernels.

    ``keys`` is the comparable key array (dictionary codes for text,
    typed values otherwise) and ``valid`` the non-NULL mask, both sliced
    views of the backend's live arrays.  Append-only storage never
    mutates published rows, so a kernel stays a consistent snapshot even
    while the table keeps growing; the backend hands out a *new* kernel
    after every append, which is what lets consumers cache derived
    structures keyed by kernel identity.
    """

    __slots__ = ("kind", "keys", "valid", "dictionary", "code_of",
                 "_python_keys", "_nan_unsafe")

    def __init__(
        self,
        kind: str,
        keys: np.ndarray,
        valid: np.ndarray,
        dictionary: Optional[list[str]] = None,
        code_of: Optional[dict[str, int]] = None,
    ):
        self.kind = kind  # "text" | "array" | "object"
        self.keys = keys
        self.valid = valid
        self.dictionary = dictionary
        self.code_of = code_of
        self._python_keys: Optional[list[Any]] = None
        self._nan_unsafe: Optional[bool] = None

    @property
    def nan_unsafe(self) -> bool:
        """Whether the column holds float NaN values.

        NaN never equals itself, so array equi-join kernels (which would
        treat equal bit patterns as matches) cannot be trusted on such a
        column; the executor falls back to the generic path.
        """
        if self._nan_unsafe is None:
            if self.kind == "array" and self.keys.dtype == np.float64:
                self._nan_unsafe = bool(np.isnan(self.keys[self.valid]).any())
            else:
                self._nan_unsafe = False
        return self._nan_unsafe

    def python_keys(self) -> list[Any]:
        """Decoded per-row key values (``None`` where NULL), cached."""
        if self._python_keys is None:
            if self.kind == "text":
                dictionary = self.dictionary or []
                self._python_keys = [
                    None if code < 0 else dictionary[code]
                    for code in self.keys.tolist()
                ]
            elif self.kind == "object":
                self._python_keys = [
                    None if null else value
                    for value, null in zip(
                        self.keys.tolist(), (~self.valid).tolist()
                    )
                ]
            else:
                self._python_keys = [
                    None if null else value
                    for value, null in zip(
                        self.keys.tolist(), (~self.valid).tolist()
                    )
                ]
        return self._python_keys


class _NpColumn:
    """Physical storage of one column: a typed array plus a NULL mask."""

    __slots__ = ("data_type", "kind", "size", "values", "codes",
                 "dictionary", "code_of", "nulls", "null_count")

    def __init__(self, data_type: DataType):
        self.data_type = data_type
        self.kind = _KIND_OF_TYPE[data_type]
        self.size = 0
        self.null_count = 0
        self.nulls = np.zeros(0, dtype=np.bool_)
        if self.kind == "text":
            self.values: Optional[np.ndarray] = None
            self.codes: Optional[np.ndarray] = np.zeros(0, dtype=np.int64)
            self.dictionary: list[str] = []
            self.code_of: dict[str, int] = {}
        else:
            self.values = np.zeros(0, dtype=_DTYPE_OF_KIND[self.kind])
            self.codes = None
            self.dictionary = []
            self.code_of = {}

    @property
    def is_text(self) -> bool:
        return self.kind == "text"

    # -- growth --------------------------------------------------------
    def _grow(self, array: np.ndarray) -> np.ndarray:
        capacity = max(_MIN_CAPACITY, len(array) * 2)
        grown = np.zeros(capacity, dtype=array.dtype)
        grown[: len(array)] = array
        return grown

    def _ensure_capacity(self) -> None:
        if self.size >= len(self.nulls):
            self.nulls = self._grow(self.nulls)
        if self.is_text:
            if self.size >= len(self.codes):
                self.codes = self._grow(self.codes)
        elif self.size >= len(self.values):
            self.values = self._grow(self.values)

    def _promote_to_object(self) -> None:
        """Rewiden an overflowing int column into an object array.

        Values beyond ``int64`` are legal Python ints; correctness wins
        over vectorization, so the whole column drops to object storage
        (already-stored cells are numerically unchanged).
        """
        promoted = np.empty(len(self.values), dtype=object)
        promoted[: self.size] = self.values[: self.size].tolist()
        self.values = promoted
        self.kind = "object"

    # -- writes --------------------------------------------------------
    def append(self, value: Any) -> None:
        self._ensure_capacity()
        is_null = value is None
        self.nulls[self.size] = is_null
        if is_null:
            self.null_count += 1
        if self.is_text:
            if is_null:
                self.codes[self.size] = _NULL_CODE
            else:
                code = self.code_of.get(value)
                if code is None:
                    code = len(self.dictionary)
                    self.code_of[value] = code
                    self.dictionary.append(value)
                self.codes[self.size] = code
        elif is_null:
            if self.kind == "object":
                self.values[self.size] = None
            # typed arrays keep the zero placeholder under the NULL mask
        else:
            if self.kind == "int":
                try:
                    self.values[self.size] = value
                except OverflowError:
                    self._promote_to_object()
                    self.values[self.size] = value
            else:
                self.values[self.size] = value
        self.size += 1

    # -- reads ---------------------------------------------------------
    def get(self, row_index: int) -> Any:
        if not -self.size <= row_index < self.size:
            raise IndexError(f"row index {row_index} out of range")
        if row_index < 0:
            row_index += self.size
        if self.is_text:
            code = int(self.codes[row_index])
            return None if code < 0 else self.dictionary[code]
        if self.nulls[row_index]:
            return None
        value = self.values[row_index]
        return value if self.kind == "object" else value.item()

    def decoded(self) -> list[Any]:
        """All values in row order, NULLs included, as Python scalars."""
        if self.is_text:
            dictionary = self.dictionary
            return [
                None if code < 0 else dictionary[code]
                for code in self.codes[: self.size].tolist()
            ]
        raw = self.values[: self.size].tolist()
        if not self.null_count:
            return raw
        return [
            None if null else value
            for value, null in zip(raw, self.nulls[: self.size].tolist())
        ]

    def reader(self) -> CellReader:
        if self.is_text:
            codes = self.codes
            dictionary = self.dictionary

            def read_text(row_index: int) -> Any:
                code = codes[row_index]
                return None if code < 0 else dictionary[code]

            return read_text
        values = self.values
        nulls = self.nulls
        if self.kind == "object":

            def read_object(row_index: int) -> Any:
                return None if nulls[row_index] else values[row_index]

            return read_object

        def read_typed(row_index: int) -> Any:
            return None if nulls[row_index] else values[row_index].item()

        return read_typed

    def kernel(self) -> ColumnKernel:
        size = self.size
        if self.is_text:
            codes = self.codes[:size]
            return ColumnKernel(
                "text", codes, codes >= 0, self.dictionary, self.code_of
            )
        valid = ~self.nulls[:size]
        kind = "object" if self.kind == "object" else "array"
        return ColumnKernel(kind, self.values[:size], valid)


class _NpTableStore:
    """All columns of one table plus its derived caches.

    The concurrency discipline mirrors the pure-Python store: writes
    serialize on the table lock and derived caches (row tuples, join
    indexes, column kernels) are published copy-on-write, so concurrent
    readers see either a complete cache object or build their own.
    """

    __slots__ = ("name", "columns", "num_rows", "version", "store_token",
                 "_rows_cache", "_join_indexes", "_kernels", "_decoded",
                 "_lock")

    def __init__(self, name: str, columns: Sequence[Any]):
        self.name = name
        self.columns = [_NpColumn(column.data_type) for column in columns]
        self.num_rows = 0
        self.version = 0
        # Same physical-identity discipline as ColumnStore: a recreated
        # table under the same name must never satisfy a stale mark.
        self.store_token = uuid4().hex
        self._rows_cache: Optional[list[tuple[Any, ...]]] = None
        self._join_indexes: dict[int, dict[Any, list[int]]] = {}
        self._kernels: dict[int, ColumnKernel] = {}
        self._decoded: dict[int, list[Any]] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Trim arrays to their logical length so pickles carry no slack
        # capacity; locks and derived caches rebuild lazily on load.
        columns = []
        for column in self.columns:
            size = column.size
            state = {
                "data_type": column.data_type,
                "kind": column.kind,
                "size": size,
                "nulls": column.nulls[:size].copy(),
                "null_count": column.null_count,
            }
            if column.is_text:
                state["codes"] = column.codes[:size].copy()
                state["dictionary"] = list(column.dictionary)
            else:
                state["values"] = column.values[:size].copy()
            columns.append(state)
        return {
            "name": self.name,
            "columns": columns,
            "num_rows": self.num_rows,
            "version": self.version,
            "store_token": self.store_token,
        }

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.num_rows = state["num_rows"]
        self.version = state["version"]
        self.store_token = state.get("store_token") or uuid4().hex
        self.columns = []
        for column_state in state["columns"]:
            column = _NpColumn.__new__(_NpColumn)
            column.data_type = column_state["data_type"]
            column.kind = column_state["kind"]
            column.size = column_state["size"]
            column.nulls = column_state["nulls"]
            column.null_count = column_state["null_count"]
            if column.kind == "text":
                column.values = None
                column.codes = column_state["codes"]
                column.dictionary = column_state["dictionary"]
                column.code_of = {
                    entry: code
                    for code, entry in enumerate(column.dictionary)
                }
            else:
                column.values = column_state["values"]
                column.codes = None
                column.dictionary = []
                column.code_of = {}
            self.columns.append(column)
        self._rows_cache = None
        self._join_indexes = {}
        self._kernels = {}
        self._decoded = {}
        self._lock = threading.Lock()

    # -- writes --------------------------------------------------------
    def append(self, prepared: Sequence[Any]) -> None:
        with self._lock:
            for column, value in zip(self.columns, prepared):
                column.append(value)
            self.num_rows += 1
            self.version += 1
            # Replace (never mutate) published caches.
            self._rows_cache = None
            self._join_indexes = {}
            self._kernels = {}
            self._decoded = {}

    # -- row-oriented reads --------------------------------------------
    def row(self, index: int) -> tuple[Any, ...]:
        cache = self._rows_cache
        if cache is not None:
            return cache[index]
        if index < 0:
            index += self.num_rows
        if not 0 <= index < self.num_rows:
            raise IndexError(f"row index {index} out of range")
        return tuple(column.get(index) for column in self.columns)

    def rows(self) -> list[tuple[Any, ...]]:
        cache = self._rows_cache
        if cache is None:
            with self._lock:
                cache = self._rows_cache
                if cache is None:
                    cache = list(
                        zip(*(column.decoded() for column in self.columns))
                    )
                    self._rows_cache = cache
        return cache

    # -- scans ---------------------------------------------------------
    def select_rows(
        self, position: int, predicate: Callable[[Any], bool]
    ) -> list[int]:
        column = self.columns[position]
        size = column.size
        if column.is_text:
            # One predicate call per distinct value, then a vectorized
            # membership scan over the integer codes.
            matching = [
                code
                for code, value in enumerate(column.dictionary)
                if predicate(value)
            ]
            if not matching:
                return []
            codes = column.codes[:size]
            if len(matching) == len(column.dictionary) and not column.null_count:
                return list(range(size))
            if len(matching) == 1:
                keep = codes == matching[0]
            else:
                # Codes are small non-negative ints, so the table method
                # (O(n) lookup array) beats isin's sort-based default.
                keep = np.isin(
                    codes, np.asarray(matching, dtype=np.int64), kind="table"
                )
            return np.nonzero(keep)[0].tolist()
        if column.kind == "object":
            nulls = column.nulls[:size].tolist()
            return [
                row_index
                for row_index, (value, is_null) in enumerate(
                    zip(column.values[:size].tolist(), nulls)
                )
                if not is_null and predicate(value)
            ]
        values = column.values[:size]
        valid = ~column.nulls[:size]
        candidates = values[valid]
        if column.kind == "float":
            # NaN needs special casing twice over: ``np.unique`` folds
            # all NaNs into one and ``isin`` would never match it back
            # (NaN != NaN), while the row-at-a-time reference evaluates
            # the predicate on each NaN cell and keeps it on True.
            nan_rows = np.isnan(candidates)
            has_nan = bool(nan_rows.any())
            if has_nan:
                candidates = candidates[~nan_rows]
            unique = np.unique(candidates)
            matching = [v for v in unique.tolist() if predicate(v)]
            keep = (
                np.isin(values, np.asarray(matching, dtype=values.dtype))
                if matching
                else np.zeros(size, dtype=np.bool_)
            )
            if has_nan and predicate(float("nan")):
                keep = keep | np.isnan(values)
            keep &= valid
            return np.nonzero(keep)[0].tolist()
        unique = np.unique(candidates)
        matching = [v for v in unique.tolist() if predicate(v)]
        if not matching:
            return []
        keep = np.isin(values, np.asarray(matching, dtype=values.dtype)) & valid
        return np.nonzero(keep)[0].tolist()

    # -- join indexes --------------------------------------------------
    def join_index(self, position: int) -> dict[Any, list[int]]:
        index = self._join_indexes.get(position)
        if index is None:
            with self._lock:
                index = self._join_indexes.get(position)
                if index is None:
                    index = self._build_join_index(position)
                    published = dict(self._join_indexes)
                    published[position] = index
                    self._join_indexes = published
        return index

    def _build_join_index(self, position: int) -> dict[Any, list[int]]:
        # Bucket construction mirrors ColumnStore exactly (same key order,
        # same ascending row lists) so the two backends stream identical
        # assignment orders through the executor.
        index: dict[Any, list[int]] = {}
        column = self.columns[position]
        size = column.size
        if column.is_text:
            dictionary = column.dictionary
            per_code: list[list[int]] = [[] for _ in dictionary]
            for row_index, code in enumerate(column.codes[:size].tolist()):
                if code >= 0:
                    per_code[code].append(row_index)
            for code, value in enumerate(dictionary):
                if per_code[code]:
                    index[value] = per_code[code]
            return index
        nulls = column.nulls[:size].tolist()
        for row_index, (value, is_null) in enumerate(
            zip(column.values[:size].tolist(), nulls)
        ):
            if is_null:
                continue
            bucket = index.get(value)
            if bucket is None:
                index[value] = [row_index]
            else:
                bucket.append(row_index)
        return index

    # -- decoded-column cache ------------------------------------------
    def decoded_column(self, position: int) -> list[Any]:
        """One column fully decoded to Python scalars, cached per column.

        Row-at-a-time consumers (cell readers driving the executor's
        generic join streaming above all) would otherwise pay a numpy
        scalar extraction per cell; decoding once per column amortizes
        that to list indexing, the same cost as the pure-Python store.
        """
        decoded = self._decoded.get(position)
        if decoded is None:
            with self._lock:
                decoded = self._decoded.get(position)
                if decoded is None:
                    decoded = self.columns[position].decoded()
                    published = dict(self._decoded)
                    published[position] = decoded
                    self._decoded = published
        return decoded

    # -- kernels -------------------------------------------------------
    def kernel(self, position: int) -> ColumnKernel:
        kernel = self._kernels.get(position)
        if kernel is None:
            with self._lock:
                kernel = self._kernels.get(position)
                if kernel is None:
                    kernel = self.columns[position].kernel()
                    published = dict(self._kernels)
                    published[position] = kernel
                    self._kernels = published
        return kernel

    # -- marks and deltas ----------------------------------------------
    def mark(self) -> TableMark:
        with self._lock:
            return self._mark_locked()

    def _mark_locked(self) -> TableMark:
        return TableMark(
            table=self.name,
            version=self.version,
            num_rows=self.num_rows,
            column_count=len(self.columns),
            text_dict_lens=tuple(
                len(column.dictionary) if column.is_text else NO_DICTIONARY
                for column in self.columns
            ),
            store_token=self.store_token,
        )

    def delta_since(self, mark: TableMark) -> Optional[TableDelta]:
        with self._lock:
            if mark.table != self.name:
                return None
            if mark.store_token != self.store_token:
                return None
            if mark.column_count != len(self.columns):
                return None
            if self.version < mark.version or self.num_rows < mark.num_rows:
                return None
            if self.version - mark.version != self.num_rows - mark.num_rows:
                return None
            start, end = mark.num_rows, self.num_rows
            column_deltas = []
            for position, (column, marked_len) in enumerate(
                zip(self.columns, mark.text_dict_lens)
            ):
                if column.is_text:
                    if marked_len == NO_DICTIONARY:
                        return None
                    dict_len = len(column.dictionary)
                    if dict_len < marked_len:
                        return None
                    codes = tuple(column.codes[start:end].tolist())
                    dictionary = column.dictionary
                    column_deltas.append(ColumnDelta(
                        position=position,
                        is_text=True,
                        values=tuple(
                            None if code < 0 else dictionary[code]
                            for code in codes
                        ),
                        codes=codes,
                        dictionary=dictionary,
                        dict_len=dict_len,
                        new_dictionary_entries=tuple(
                            dictionary[marked_len:dict_len]
                        ),
                    ))
                else:
                    if marked_len != NO_DICTIONARY:
                        return None
                    raw = column.values[start:end].tolist()
                    if column.null_count:
                        nulls = column.nulls[start:end].tolist()
                        values = tuple(
                            None if null else value
                            for value, null in zip(raw, nulls)
                        )
                    else:
                        values = tuple(raw)
                    column_deltas.append(ColumnDelta(
                        position=position,
                        is_text=False,
                        values=values,
                    ))
            return TableDelta(
                table=self.name,
                start_row=start,
                end_row=end,
                columns=tuple(column_deltas),
                new_mark=self._mark_locked(),
            )


class NumpyColumnStore(StorageBackend):
    """In-memory NumPy columnar backend, selectable via
    ``PRISM_STORAGE_BACKEND=numpy`` (the pure-Python
    :class:`~repro.storage.ColumnStore` stays the default reference).

    Observable behavior — values, NULL semantics, versions, marks,
    deltas, join-index contents — is bit-for-bit identical to the
    pure-Python store (proven by the randomized differential harness in
    ``tests/integration/test_backend_differential.py``); the physical
    representation additionally exposes :meth:`column_kernel` snapshots
    that the executor's array kernels scan without materializing Python
    objects.
    """

    def __init__(self) -> None:
        self._tables: dict[str, _NpTableStore] = {}
        self._registry_lock = threading.Lock()

    def __getstate__(self) -> dict:
        return {"_tables": self._tables}

    def __setstate__(self, state: dict) -> None:
        self._tables = state["_tables"]
        self._registry_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Table lifecycle
    # ------------------------------------------------------------------
    def register_table(self, name: str, columns: Sequence[Any]) -> None:
        with self._registry_lock:
            if name in self._tables:
                raise SchemaError(
                    f"table {name!r} is already registered with this backend"
                )
            self._tables[name] = _NpTableStore(name, columns)

    def drop_table(self, name: str) -> None:
        with self._registry_lock:
            self._tables.pop(name, None)

    def detach_table(self, name: str) -> "NumpyColumnStore":
        detached = NumpyColumnStore()
        with self._registry_lock:
            store = self._tables.pop(name, None)
        if store is not None:
            detached._tables[name] = store
        return detached

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def _store(self, name: str) -> _NpTableStore:
        try:
            return self._tables[name]
        except KeyError as exc:
            raise SchemaError(
                f"table {name!r} is not registered with this backend"
            ) from exc

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def append_row(self, table: str, prepared: Sequence[Any]) -> None:
        self._store(table).append(prepared)

    # ------------------------------------------------------------------
    # Row-oriented reads
    # ------------------------------------------------------------------
    def num_rows(self, table: str) -> int:
        return self._store(table).num_rows

    def row(self, table: str, index: int) -> tuple[Any, ...]:
        return self._store(table).row(index)

    def rows(self, table: str) -> list[tuple[Any, ...]]:
        return self._store(table).rows()

    def cell(self, table: str, row_index: int, position: int) -> Any:
        return self._store(table).columns[position].get(row_index)

    def cell_reader(self, table: str, position: int) -> CellReader:
        # Serve cells from the decoded-column cache: list indexing beats
        # per-cell numpy scalar extraction on row-at-a-time hot paths.
        return self._store(table).decoded_column(position).__getitem__

    # ------------------------------------------------------------------
    # Column-oriented reads
    # ------------------------------------------------------------------
    def column_values(self, table: str, position: int) -> list[Any]:
        # Fresh list (callers may mutate), but copied from the cached
        # decode instead of re-decoding the arrays.
        return list(self._store(table).decoded_column(position))

    def null_mask(self, table: str, position: int) -> list[bool]:
        column = self._store(table).columns[position]
        return column.nulls[: column.size].tolist()

    def null_count(self, table: str, position: int) -> int:
        return self._store(table).columns[position].null_count

    def distinct_values(self, table: str, position: int) -> set[Any]:
        column = self._store(table).columns[position]
        if column.is_text:
            return set(column.dictionary)
        if column.kind == "object":
            return {
                value for value in column.values[: column.size].tolist()
                if value is not None
            }
        valid = ~column.nulls[: column.size]
        return set(np.unique(column.values[: column.size][valid]).tolist())

    def distinct_count(self, table: str, position: int) -> int:
        column = self._store(table).columns[position]
        if column.is_text:
            return len(column.dictionary)
        return len(self.distinct_values(table, position))

    def value_counts(self, table: str, position: int) -> dict[Any, int]:
        column = self._store(table).columns[position]
        size = column.size
        if column.is_text:
            counts = np.bincount(
                column.codes[:size][column.codes[:size] >= 0],
                minlength=len(column.dictionary),
            )
            return {
                value: int(count)
                for value, count in zip(column.dictionary, counts.tolist())
                if count
            }
        if column.kind == "object":
            result: dict[Any, int] = {}
            for value in column.values[:size].tolist():
                if value is None:
                    continue
                result[value] = result.get(value, 0) + 1
            return result
        valid = ~column.nulls[:size]
        unique, counts = np.unique(
            column.values[:size][valid], return_counts=True
        )
        return dict(zip(unique.tolist(), counts.tolist()))

    def text_dictionary(self, table: str, position: int) -> Optional[list[str]]:
        column = self._store(table).columns[position]
        return column.dictionary if column.is_text else None

    def text_column_codes(
        self, table: str, position: int
    ) -> Optional[tuple[list[int], list[str]]]:
        column = self._store(table).columns[position]
        if not column.is_text:
            return None
        return column.codes[: column.size].tolist(), column.dictionary

    # ------------------------------------------------------------------
    # Scans and indexes
    # ------------------------------------------------------------------
    def select_rows(
        self, table: str, position: int, predicate: Callable[[Any], bool]
    ) -> list[int]:
        return self._store(table).select_rows(position, predicate)

    def join_index(
        self, table: str, position: int
    ) -> Mapping[Any, Sequence[int]]:
        return self._store(table).join_index(position)

    def has_cached_join_index(self, table: str, position: int) -> bool:
        return position in self._store(table)._join_indexes

    # ------------------------------------------------------------------
    # Array kernels
    # ------------------------------------------------------------------
    def column_kernel(self, table: str, position: int) -> ColumnKernel:
        """A cached :class:`ColumnKernel` snapshot of one column.

        The snapshot is rebuilt (as a new object) after every append, so
        callers may key derived caches on kernel identity.
        """
        return self._store(table).kernel(position)

    # ------------------------------------------------------------------
    # Versioning
    # ------------------------------------------------------------------
    def version(self, table: str) -> int:
        return self._store(table).version

    # ------------------------------------------------------------------
    # Append deltas
    # ------------------------------------------------------------------
    def table_mark(self, table: str) -> Optional[TableMark]:
        return self._store(table).mark()

    def delta_since(self, table: str, mark: TableMark) -> Optional[TableDelta]:
        return self._store(table).delta_since(mark)
