"""The abstract storage-backend interface.

A backend owns the physical representation of one or more tables.  The
logical layer (:class:`repro.dataset.table.Table`) validates and coerces
cells, then hands fully prepared tuples to the backend; everything below
the tuple API — column arrays, NULL masks, join-key hash indexes — is the
backend's concern.  Keeping the surface here small is what makes
alternative backends (numpy, sqlite, remote) drop-in replacements later.

Row indexes are stable: rows are append-only and never reordered, so a row
index handed out by one call (e.g. a join-index posting) remains valid for
the lifetime of the table.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.storage.delta import TableDelta, TableMark

__all__ = ["StorageBackend", "CellReader"]

CellReader = Callable[[int], Any]
"""Reads one cell of a fixed (table, column) by row index."""


class StorageBackend(ABC):
    """Physical storage for registered tables.

    All methods identify tables by name and columns by 0-based position in
    the table's declared column order.
    """

    # ------------------------------------------------------------------
    # Table lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def register_table(self, name: str, columns: Sequence[Any]) -> None:
        """Register an empty table with its :class:`Column` definitions."""

    @abstractmethod
    def drop_table(self, name: str) -> None:
        """Remove a table and free its storage."""

    @abstractmethod
    def detach_table(self, name: str) -> "StorageBackend":
        """Remove a table but keep its data, returning a private backend.

        Frees the name on this backend while leaving any live
        :class:`~repro.dataset.table.Table` handle functional on the
        returned single-table backend — used when a database drops a
        table from its shared store.
        """

    @abstractmethod
    def has_table(self, name: str) -> bool:
        """Whether ``name`` is registered."""

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    @abstractmethod
    def append_row(self, table: str, prepared: Sequence[Any]) -> None:
        """Append one prepared (validated, coerced) row."""

    # ------------------------------------------------------------------
    # Row-oriented reads (tuple compatibility layer)
    # ------------------------------------------------------------------
    @abstractmethod
    def num_rows(self, table: str) -> int:
        """Number of stored rows."""

    @abstractmethod
    def row(self, table: str, index: int) -> tuple[Any, ...]:
        """Materialize one row as a tuple."""

    @abstractmethod
    def rows(self, table: str) -> list[tuple[Any, ...]]:
        """Materialize all rows as tuples (may be cached; treat read-only)."""

    @abstractmethod
    def cell(self, table: str, row_index: int, position: int) -> Any:
        """Read a single cell."""

    @abstractmethod
    def cell_reader(self, table: str, position: int) -> CellReader:
        """A fast row-index → cell-value accessor for one column."""

    # ------------------------------------------------------------------
    # Column-oriented reads
    # ------------------------------------------------------------------
    @abstractmethod
    def column_values(self, table: str, position: int) -> list[Any]:
        """All values of one column in row order, NULLs included."""

    @abstractmethod
    def null_mask(self, table: str, position: int) -> list[bool]:
        """Per-row NULL mask of one column (True where the cell is NULL)."""

    @abstractmethod
    def null_count(self, table: str, position: int) -> int:
        """Number of NULL cells in one column."""

    @abstractmethod
    def distinct_values(self, table: str, position: int) -> set[Any]:
        """Distinct non-NULL values of one column."""

    @abstractmethod
    def distinct_count(self, table: str, position: int) -> int:
        """Number of distinct non-NULL values of one column."""

    @abstractmethod
    def value_counts(self, table: str, position: int) -> dict[Any, int]:
        """Occurrence count per distinct non-NULL value."""

    @abstractmethod
    def text_dictionary(self, table: str, position: int) -> Optional[list[str]]:
        """The dictionary of a dictionary-encoded text column, else None.

        May be the backend's live structure — treat as read-only; mutating
        it corrupts the encoding for every row.
        """

    @abstractmethod
    def text_column_codes(
        self, table: str, position: int
    ) -> Optional[tuple[list[int], list[str]]]:
        """(codes, dictionary) of an encoded text column, else None.

        Codes are per-row dictionary offsets; NULL cells carry a negative
        code.  Both lists may be the backend's live structures — treat as
        read-only.
        """

    # ------------------------------------------------------------------
    # Scans and indexes
    # ------------------------------------------------------------------
    @abstractmethod
    def select_rows(
        self, table: str, position: int, predicate: Callable[[Any], bool]
    ) -> list[int]:
        """Row indexes whose cell is non-NULL and satisfies ``predicate``."""

    @abstractmethod
    def join_index(
        self, table: str, position: int
    ) -> Mapping[Any, Sequence[int]]:
        """Key value → row indexes hash index over one column.

        NULL keys are excluded (SQL join semantics).  The index is built at
        most once per (table, column) and cached until the table changes.
        The returned mapping is the shared cached instance — treat as
        read-only.
        """

    @abstractmethod
    def has_cached_join_index(self, table: str, position: int) -> bool:
        """Whether a current join index for (table, column) is cached."""

    # ------------------------------------------------------------------
    # Versioning
    # ------------------------------------------------------------------
    @abstractmethod
    def version(self, table: str) -> int:
        """Monotonic per-table data version (bumped on every append)."""

    # ------------------------------------------------------------------
    # Append deltas (optional capability)
    # ------------------------------------------------------------------
    def table_mark(self, table: str) -> Optional[TableMark]:
        """A :class:`TableMark` fingerprint of the table's current state.

        Returns ``None`` when the backend does not support append-delta
        tracking; callers (the artifact store's incremental refresh) then
        fall back to full rebuilds.  Backends that do support deltas must
        capture the mark atomically with respect to writes.
        """
        return None

    def delta_since(self, table: str, mark: TableMark) -> Optional[TableDelta]:
        """The append delta between ``mark`` and the table's current state.

        Returns ``None`` whenever the difference cannot be proven to be
        pure appends (the mark belongs to a different layout, the version
        counter does not match the row-count growth, or the backend does
        not track deltas at all).  The returned delta snapshots its cell
        values, so it stays valid under further concurrent appends.
        """
        return None
