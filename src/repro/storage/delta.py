"""Append-delta primitives for incremental artifact maintenance.

The storage layer is append-only: rows are never reordered, text
dictionaries only grow, and the per-table version counter advances by one
per appended row.  That makes the difference between two table states
fully describable as a *delta* — a contiguous row range plus the
dictionary entries those rows introduced — provided nothing but appends
happened in between.

* :class:`TableMark` — a cheap fingerprint of one table's state (version,
  row count, per-column dictionary lengths) captured at publish time, e.g.
  when a preprocessing bundle is built;
* :class:`ColumnDelta` — the appended cells of one column, both decoded
  and (for text) dictionary-encoded;
* :class:`TableDelta` — the appended row range of one table with one
  :class:`ColumnDelta` per column and the :class:`TableMark` describing
  the post-delta state.

A backend that cannot prove the change was pure append (column layout
changed, version arithmetic doesn't match the row-count growth, a
dictionary shrank) returns ``None`` instead of a delta, and consumers —
:meth:`repro.service.ArtifactStore.refresh` above all — fall back to a
full rebuild.  Deltas capture their cell values at creation time, so a
delta stays valid even if the table keeps growing afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

__all__ = ["ColumnDelta", "TableDelta", "TableMark"]

#: Placeholder dictionary length recorded for non-text columns in a mark.
NO_DICTIONARY = -1


@dataclass(frozen=True)
class TableMark:
    """Fingerprint of one table's storage state at a point in time.

    Marks are tiny (a handful of integers) and are persisted alongside
    preprocessing bundles; comparing a mark against the live table is how
    a backend derives the append delta between the two states.
    """

    table: str
    version: int
    num_rows: int
    column_count: int
    #: Per-column dictionary length at capture time; ``NO_DICTIONARY`` for
    #: columns that are not dictionary-encoded.
    text_dict_lens: tuple[int, ...]
    #: Identity of the physical table store the mark was taken from.
    #: Version/row-count arithmetic alone cannot distinguish pure appends
    #: from a drop-and-recreate under the same table name (both counters
    #: restart together), so backends stamp each store with a unique token
    #: and refuse to derive a delta across different tokens.
    store_token: str = ""


@dataclass(frozen=True)
class ColumnDelta:
    """The appended cells of one column.

    ``values`` always holds the decoded cells (``None`` for NULLs).  For
    dictionary-encoded text columns ``codes``/``dictionary``/``dict_len``
    additionally expose the encoded view so consumers can keep doing
    per-distinct-value work (the inverted index normalizes and tokenizes
    once per referenced dictionary entry, not once per row), and
    ``new_dictionary_entries`` lists exactly the distinct strings first
    introduced by this delta's rows.

    ``dictionary`` may be the backend's live list; it is append-only, and
    ``codes`` only ever reference offsets below ``dict_len``, so readers
    must treat it as read-only and never index past ``dict_len``.
    """

    position: int
    is_text: bool
    values: tuple[Any, ...]
    codes: Optional[tuple[int, ...]] = None
    dictionary: Optional[Sequence[str]] = None
    dict_len: int = 0
    new_dictionary_entries: tuple[str, ...] = ()

    @property
    def non_null_values(self) -> list[Any]:
        """The delta's cells with NULLs removed (row order preserved)."""
        return [value for value in self.values if value is not None]

    @property
    def null_count(self) -> int:
        """Number of NULL cells in the delta."""
        return sum(1 for value in self.values if value is None)


@dataclass(frozen=True)
class TableDelta:
    """All rows appended to one table between two marks.

    Row indexes are stable (append-only storage), so the delta's rows are
    exactly the half-open range ``[start_row, end_row)`` of the live
    table, and every row index derived from the delta remains valid for
    the lifetime of the table.
    """

    table: str
    start_row: int
    end_row: int
    columns: tuple[ColumnDelta, ...]
    #: Mark describing the table state *after* this delta was captured;
    #: chaining refreshes hands this mark to the next delta computation.
    new_mark: TableMark

    @property
    def num_rows(self) -> int:
        """Number of appended rows covered by the delta."""
        return self.end_row - self.start_row
