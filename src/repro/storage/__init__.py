"""Pluggable columnar storage backends.

The engine's relations live behind a :class:`StorageBackend`: tables are
registered with their schema, rows are appended as prepared (validated,
coerced) tuples, and every consumer above — the inverted index, the
metadata catalog, the Bayesian trainers and the query executor — reads
either whole columns or individual cells through the backend interface.

The default backend is :class:`ColumnStore`, which keeps each table as
typed column arrays with dictionary encoding for text columns, per-column
NULL masks, and a cache of join-key hash indexes that the executor reuses
across queries instead of rebuilding per join.

Because storage is append-only, backends can additionally describe the
difference between two table states as an append delta
(:class:`TableMark` / :class:`TableDelta`); the service layer's
incremental artifact refresh is built on that capability.
"""

from repro.storage.backend import StorageBackend
from repro.storage.column_store import ColumnStore
from repro.storage.delta import ColumnDelta, TableDelta, TableMark

__all__ = [
    "ColumnDelta",
    "ColumnStore",
    "StorageBackend",
    "TableDelta",
    "TableMark",
]
