"""Pluggable columnar storage backends.

The engine's relations live behind a :class:`StorageBackend`: tables are
registered with their schema, rows are appended as prepared (validated,
coerced) tuples, and every consumer above — the inverted index, the
metadata catalog, the Bayesian trainers and the query executor — reads
either whole columns or individual cells through the backend interface.

The default backend is :class:`ColumnStore`, which keeps each table as
typed column arrays with dictionary encoding for text columns, per-column
NULL masks, and a cache of join-key hash indexes that the executor reuses
across queries instead of rebuilding per join.

An alternative NumPy-kernel backend (:class:`NumpyColumnStore`, from
:mod:`repro.storage.numpy_store`) keeps the same observable behavior but
stores columns as typed arrays the executor can scan with vectorized
kernels.  :func:`make_backend` builds a backend by name, and
:func:`default_backend` honors the ``PRISM_STORAGE_BACKEND`` environment
variable (``python`` — the default — or ``numpy``) so a whole process can
be switched without touching call sites.

Because storage is append-only, backends can additionally describe the
difference between two table states as an append delta
(:class:`TableMark` / :class:`TableDelta`); the service layer's
incremental artifact refresh is built on that capability.
"""

import os

from repro.storage.backend import StorageBackend
from repro.storage.column_store import ColumnStore
from repro.storage.delta import ColumnDelta, TableDelta, TableMark

__all__ = [
    "ColumnDelta",
    "ColumnStore",
    "NumpyColumnStore",
    "StorageBackend",
    "TableDelta",
    "TableMark",
    "default_backend",
    "make_backend",
]

#: Environment variable consulted by :func:`default_backend`.
BACKEND_ENV_VAR = "PRISM_STORAGE_BACKEND"

_BACKEND_KINDS = ("python", "numpy")


def make_backend(kind: str) -> StorageBackend:
    """Build a fresh storage backend by name.

    ``"python"`` (or ``""``) builds the default pure-Python
    :class:`ColumnStore`; ``"numpy"`` builds a :class:`NumpyColumnStore`.
    Anything else raises :class:`~repro.errors.SchemaError` — a silently
    misspelled backend name must not quietly fall back to the default.
    """
    normalized = (kind or "python").strip().lower()
    if normalized == "python":
        return ColumnStore()
    if normalized == "numpy":
        from repro.storage.numpy_store import NumpyColumnStore

        return NumpyColumnStore()
    from repro.errors import SchemaError

    raise SchemaError(
        f"unknown storage backend {kind!r}; expected one of {_BACKEND_KINDS}"
    )


def default_backend() -> StorageBackend:
    """Build the process-default backend per ``PRISM_STORAGE_BACKEND``."""
    return make_backend(os.environ.get(BACKEND_ENV_VAR, "python"))


def __getattr__(name: str):
    # NumpyColumnStore imports numpy; keep that import lazy so merely
    # importing repro.storage never requires numpy to be installed.
    if name == "NumpyColumnStore":
        from repro.storage.numpy_store import NumpyColumnStore

        return NumpyColumnStore
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
