"""In-memory relation storage.

A :class:`Table` stores its rows as plain tuples and offers column-oriented
access helpers used by the inverted index, the metadata catalog and the
Bayesian model trainer.  Rows are validated against the declared column
types on insertion so that downstream code never has to defend against
mis-typed cells.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.dataset.schema import Column
from repro.dataset.types import DataType, coerce_value, detect_type
from repro.errors import DataError, SchemaError

__all__ = ["Table"]


class Table:
    """A named relation with typed columns and tuple rows."""

    def __init__(self, name: str, columns: Sequence[Column]):
        if not name or not name.strip():
            raise SchemaError("table name must be a non-empty string")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._column_index: dict[str, int] = {
            column.name: position for position, column in enumerate(columns)
        }
        self._rows: list[tuple[Any, ...]] = []

    # ------------------------------------------------------------------
    # Schema helpers
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of all columns in declaration order."""
        return tuple(column.name for column in self.columns)

    def has_column(self, name: str) -> bool:
        """Whether a column with ``name`` exists."""
        return name in self._column_index

    def column(self, name: str) -> Column:
        """Return the :class:`Column` definition for ``name``."""
        try:
            return self.columns[self._column_index[name]]
        except KeyError as exc:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from exc

    def column_position(self, name: str) -> int:
        """Return the 0-based position of column ``name``."""
        try:
            return self._column_index[name]
        except KeyError as exc:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from exc

    # ------------------------------------------------------------------
    # Row storage
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any], coerce: bool = False) -> None:
        """Insert a single row.

        Args:
            row: cell values in column order.
            coerce: when ``True``, attempt to coerce each cell to its
                column's declared type; when ``False`` (the default) a
                mis-typed cell raises :class:`DataError`.
        """
        if len(row) != len(self.columns):
            raise DataError(
                f"table {self.name!r}: expected {len(self.columns)} cells, "
                f"got {len(row)}"
            )
        prepared: list[Any] = []
        for column, value in zip(self.columns, row):
            prepared.append(self._prepare_cell(column, value, coerce))
        self._rows.append(tuple(prepared))

    def insert_many(self, rows: Iterable[Sequence[Any]], coerce: bool = False) -> int:
        """Insert many rows; returns the number of rows inserted."""
        count = 0
        for row in rows:
            self.insert(row, coerce=coerce)
            count += 1
        return count

    def _prepare_cell(self, column: Column, value: Any, coerce: bool) -> Any:
        if value is None:
            if not column.nullable:
                raise DataError(
                    f"table {self.name!r}: NULL in non-nullable column "
                    f"{column.name!r}"
                )
            return None
        if coerce:
            return coerce_value(value, column.data_type)
        detected = detect_type(value)
        if detected is column.data_type:
            return value
        # Ints are acceptable in decimal columns without explicit coercion.
        if column.data_type is DataType.DECIMAL and detected is DataType.INT:
            return float(value)
        raise DataError(
            f"table {self.name!r}, column {column.name!r}: expected "
            f"{column.data_type.value}, got {detected.value if detected else None} "
            f"({value!r})"
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def rows(self) -> list[tuple[Any, ...]]:
        """All rows (list of tuples).  Treat as read-only."""
        return self._rows

    @property
    def num_rows(self) -> int:
        """Number of stored rows."""
        return len(self._rows)

    def row(self, index: int) -> tuple[Any, ...]:
        """Return the row at ``index``."""
        return self._rows[index]

    def cell(self, row_index: int, column_name: str) -> Any:
        """Return a single cell by row index and column name."""
        return self._rows[row_index][self.column_position(column_name)]

    def column_values(self, name: str) -> list[Any]:
        """All values of one column, in row order (including NULLs)."""
        position = self.column_position(name)
        return [row[position] for row in self._rows]

    def distinct_values(self, name: str) -> set[Any]:
        """Distinct non-NULL values of one column."""
        position = self.column_position(name)
        return {row[position] for row in self._rows if row[position] is not None}

    def select(
        self,
        columns: Optional[Sequence[str]] = None,
        where: Optional[dict[str, Any]] = None,
    ) -> list[tuple[Any, ...]]:
        """A tiny convenience selection used by tests and examples.

        Args:
            columns: column names to project (all columns when ``None``).
            where: equality predicates ``{column: value}``.
        """
        if columns is None:
            positions = list(range(len(self.columns)))
        else:
            positions = [self.column_position(name) for name in columns]
        predicates = [
            (self.column_position(name), value)
            for name, value in (where or {}).items()
        ]
        result = []
        for row in self._rows:
            if all(row[pos] == value for pos, value in predicates):
                result.append(tuple(row[pos] for pos in positions))
        return result

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Table(name={self.name!r}, columns={len(self.columns)}, "
            f"rows={len(self._rows)})"
        )
