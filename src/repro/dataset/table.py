"""In-memory relation: schema logic over a pluggable storage backend.

A :class:`Table` validates rows against the declared column types on
insertion so that downstream code never has to defend against mis-typed
cells, then delegates physical storage to a :class:`StorageBackend`
(:func:`~repro.storage.default_backend` by default — the pure-Python
:class:`~repro.storage.ColumnStore`, or the NumPy-kernel backend when
``PRISM_STORAGE_BACKEND=numpy`` — typed column arrays with
dictionary-encoded text, NULL masks and cached join-key hash indexes).
The historical tuple API (``rows``/``row``/iteration) is preserved on top
of the columnar representation, and column-oriented accessors expose the
backend directly to the inverted index, the metadata catalog, the Bayesian
trainers and the vectorized executor.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.dataset.schema import Column
from repro.dataset.types import DataType, coerce_value, detect_type
from repro.errors import DataError, SchemaError
from repro.storage import StorageBackend, default_backend

__all__ = ["Table"]


class Table:
    """A named relation with typed columns stored columnar behind the API."""

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        backend: Optional[StorageBackend] = None,
    ):
        if not name or not name.strip():
            raise SchemaError("table name must be a non-empty string")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._column_index: dict[str, int] = {
            column.name: position for position, column in enumerate(columns)
        }
        self._backend: StorageBackend = (
            backend if backend is not None else default_backend()
        )
        self._backend.register_table(name, self.columns)

    # ------------------------------------------------------------------
    # Schema helpers
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of all columns in declaration order."""
        return tuple(column.name for column in self.columns)

    def has_column(self, name: str) -> bool:
        """Whether a column with ``name`` exists."""
        return name in self._column_index

    def column(self, name: str) -> Column:
        """Return the :class:`Column` definition for ``name``."""
        try:
            return self.columns[self._column_index[name]]
        except KeyError as exc:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from exc

    def column_position(self, name: str) -> int:
        """Return the 0-based position of column ``name``."""
        try:
            return self._column_index[name]
        except KeyError as exc:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from exc

    # ------------------------------------------------------------------
    # Storage backend
    # ------------------------------------------------------------------
    @property
    def backend(self) -> StorageBackend:
        """The storage backend holding this table's data."""
        return self._backend

    @property
    def storage_version(self) -> int:
        """Monotonic data version (bumped on every insert)."""
        return self._backend.version(self.name)

    def detach_storage(self) -> None:
        """Move this table's data onto a private backend.

        Called when the table is dropped from a database whose shared
        backend frees the name for reuse: this handle keeps its data and
        stays functional, fully isolated from any successor table.
        """
        self._backend = self._backend.detach_table(self.name)

    # ------------------------------------------------------------------
    # Row storage
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any], coerce: bool = False) -> None:
        """Insert a single row.

        Args:
            row: cell values in column order.
            coerce: when ``True``, attempt to coerce each cell to its
                column's declared type; when ``False`` (the default) a
                mis-typed cell raises :class:`DataError`.
        """
        if len(row) != len(self.columns):
            raise DataError(
                f"table {self.name!r}: expected {len(self.columns)} cells, "
                f"got {len(row)}"
            )
        prepared: list[Any] = []
        for column, value in zip(self.columns, row):
            prepared.append(self._prepare_cell(column, value, coerce))
        self._backend.append_row(self.name, prepared)

    def insert_many(self, rows: Iterable[Sequence[Any]], coerce: bool = False) -> int:
        """Insert many rows; returns the number of rows inserted.

        A row that fails validation raises :class:`DataError` naming its
        0-based position in ``rows``, so bulk-load failures on large
        datasets point at the offending record.
        """
        count = 0
        for index, row in enumerate(rows):
            try:
                self.insert(row, coerce=coerce)
            except DataError as exc:
                raise DataError(f"row {index}: {exc}") from exc
            count += 1
        return count

    def _prepare_cell(self, column: Column, value: Any, coerce: bool) -> Any:
        if value is None:
            if not column.nullable:
                raise DataError(
                    f"table {self.name!r}: NULL in non-nullable column "
                    f"{column.name!r}"
                )
            return None
        if coerce:
            return coerce_value(value, column.data_type)
        detected = detect_type(value)
        if detected is column.data_type:
            return value
        # Ints are acceptable in decimal columns without explicit coercion.
        if column.data_type is DataType.DECIMAL and detected is DataType.INT:
            return float(value)
        raise DataError(
            f"table {self.name!r}, column {column.name!r}: expected "
            f"{column.data_type.value}, got {detected.value if detected else None} "
            f"({value!r})"
        )

    # ------------------------------------------------------------------
    # Row-oriented access (tuple compatibility layer)
    # ------------------------------------------------------------------
    @property
    def rows(self) -> list[tuple[Any, ...]]:
        """All rows (list of tuples).  Treat as read-only."""
        return self._backend.rows(self.name)

    @property
    def num_rows(self) -> int:
        """Number of stored rows."""
        return self._backend.num_rows(self.name)

    def row(self, index: int) -> tuple[Any, ...]:
        """Return the row at ``index``."""
        return self._backend.row(self.name, index)

    def cell(self, row_index: int, column_name: str) -> Any:
        """Return a single cell by row index and column name."""
        return self._backend.cell(
            self.name, row_index, self.column_position(column_name)
        )

    # ------------------------------------------------------------------
    # Column-oriented access
    # ------------------------------------------------------------------
    def column_values(self, name: str) -> list[Any]:
        """All values of one column, in row order (including NULLs)."""
        return self._backend.column_values(self.name, self.column_position(name))

    def distinct_values(self, name: str) -> set[Any]:
        """Distinct non-NULL values of one column."""
        return self._backend.distinct_values(self.name, self.column_position(name))

    def distinct_count(self, name: str) -> int:
        """Number of distinct non-NULL values of one column."""
        return self._backend.distinct_count(self.name, self.column_position(name))

    def null_mask(self, name: str) -> list[bool]:
        """Per-row NULL mask of one column (True where the cell is NULL)."""
        return self._backend.null_mask(self.name, self.column_position(name))

    def null_count(self, name: str) -> int:
        """Number of NULL cells in one column."""
        return self._backend.null_count(self.name, self.column_position(name))

    def value_counts(self, name: str) -> dict[Any, int]:
        """Occurrence count per distinct non-NULL value of one column."""
        return self._backend.value_counts(self.name, self.column_position(name))

    def text_dictionary(self, name: str) -> Optional[list[str]]:
        """Dictionary of a dictionary-encoded text column (else ``None``)."""
        return self._backend.text_dictionary(self.name, self.column_position(name))

    def text_column_codes(
        self, name: str
    ) -> Optional[tuple[list[int], list[str]]]:
        """(codes, dictionary) of an encoded text column (else ``None``)."""
        return self._backend.text_column_codes(
            self.name, self.column_position(name)
        )

    def cell_reader(self, name: str) -> Callable[[int], Any]:
        """Fast row-index → value accessor for one column."""
        return self._backend.cell_reader(self.name, self.column_position(name))

    def select_rows(
        self, name: str, predicate: Callable[[Any], bool]
    ) -> list[int]:
        """Row indexes whose cell in ``name`` is non-NULL and matches."""
        return self._backend.select_rows(
            self.name, self.column_position(name), predicate
        )

    def join_index(self, name: str) -> Mapping[Any, Sequence[int]]:
        """Cached value → row-indexes hash index over one column."""
        return self._backend.join_index(self.name, self.column_position(name))

    def has_cached_join_index(self, name: str) -> bool:
        """Whether a current join index for ``name`` is cached."""
        return self._backend.has_cached_join_index(
            self.name, self.column_position(name)
        )

    # ------------------------------------------------------------------
    # Convenience selection
    # ------------------------------------------------------------------
    def select(
        self,
        columns: Optional[Sequence[str]] = None,
        where: Optional[dict[str, Any]] = None,
    ) -> list[tuple[Any, ...]]:
        """A tiny convenience selection used by tests and examples.

        Args:
            columns: column names to project (all columns when ``None``).
            where: equality predicates ``{column: value}``.
        """
        if columns is None:
            positions = list(range(len(self.columns)))
        else:
            positions = [self.column_position(name) for name in columns]
        predicates = [
            (self.column_position(name), value)
            for name, value in (where or {}).items()
        ]
        result = []
        for row in self.rows:
            if all(row[pos] == value for pos, value in predicates):
                result.append(tuple(row[pos] for pos in positions))
        return result

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Table(name={self.name!r}, columns={len(self.columns)}, "
            f"rows={self.num_rows})"
        )
