"""Inverted index over cell values.

The paper validates value constraints on columns "leveraging the inverted
index provided in most DBMS systems" (§2.3).  This module provides that
substrate: a value → posting-list index built once per database, plus
column-level lookups used by related-column discovery.

Text values are indexed both as whole (case-folded) strings and as
individual word tokens so that a keyword such as ``"Tahoe"`` locates the
cell ``"Lake Tahoe"``, matching the keyword semantics of sample-driven
mapping systems.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.dataset.database import Database
from repro.dataset.schema import ColumnRef
from repro.dataset.types import DataType

__all__ = ["InvertedIndex", "Posting", "normalize_term"]

_TOKEN_PATTERN = re.compile(r"[A-Za-z0-9]+")


def normalize_term(value: Any) -> str:
    """Normalise a value into its index key (case-folded string)."""
    if isinstance(value, float) and value.is_integer():
        # 497.0 and 497 should hit the same key.
        return str(int(value))
    return str(value).strip().casefold()


def _tokenize(text: str) -> list[str]:
    return [match.group(0).casefold() for match in _TOKEN_PATTERN.finditer(text)]


class Posting:
    """A single occurrence of an indexed term: (table, column, row index)."""

    __slots__ = ("table", "column", "row_index")

    def __init__(self, table: str, column: str, row_index: int):
        self.table = table
        self.column = column
        self.row_index = row_index

    @property
    def column_ref(self) -> ColumnRef:
        """The occurrence's column as a :class:`ColumnRef`."""
        return ColumnRef(self.table, self.column)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Posting):
            return NotImplemented
        return (
            self.table == other.table
            and self.column == other.column
            and self.row_index == other.row_index
        )

    def __hash__(self) -> int:
        return hash((self.table, self.column, self.row_index))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Posting({self.table}.{self.column}[{self.row_index}])"


class InvertedIndex:
    """Value → posting list index over an entire database."""

    def __init__(self) -> None:
        self._exact: dict[str, list[Posting]] = defaultdict(list)
        self._tokens: dict[str, list[Posting]] = defaultdict(list)
        self._indexed_cells = 0
        #: Artifact key of the database this index was built from (empty
        #: for hand-assembled indexes); see :meth:`Database.artifact_key`.
        self.built_from: tuple = ()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, database: Database) -> "InvertedIndex":
        """Build the index over every table of ``database``.

        Columns are read directly from the storage backend.  For
        dictionary-encoded text columns the per-value work (normalizing,
        tokenizing) is done once per distinct string and fanned out over
        the rows via the integer codes.
        """
        index = cls()
        index.built_from = database.artifact_key()
        for table in database:
            for column in table.columns:
                if column.data_type is DataType.TEXT:
                    encoded = table.text_column_codes(column.name)
                    if encoded is not None:
                        codes, dictionary = encoded
                        index._add_encoded(
                            table.name, column.name, codes, dictionary
                        )
                        continue
                for row_index, value in enumerate(
                    table.column_values(column.name)
                ):
                    if value is None:
                        continue
                    index._add(table.name, column.name, row_index, value,
                               column.data_type)
        return index

    def apply_delta(
        self,
        database: Database,
        deltas: Mapping[str, "TableDelta"],
        built_from: tuple,
    ) -> None:
        """Fold appended rows into the index instead of rebuilding it.

        ``deltas`` maps table name → :class:`~repro.storage.TableDelta`
        as produced by :meth:`Database.storage_deltas_since`.  Only new
        postings are appended — existing postings are never touched, so
        the result is identical (as a multiset of postings per term) to a
        from-scratch build over the grown database.  ``built_from`` is
        the artifact key of the post-delta state.
        """
        for table_name, delta in deltas.items():
            table = database.table(table_name)
            for column, column_delta in zip(table.columns, delta.columns):
                if column_delta.codes is not None:
                    self._add_encoded_delta(
                        table_name,
                        column.name,
                        column_delta.codes,
                        column_delta.dictionary,
                        row_offset=delta.start_row,
                    )
                    continue
                for offset, value in enumerate(column_delta.values):
                    if value is None:
                        continue
                    self._add(table_name, column.name,
                              delta.start_row + offset, value,
                              column.data_type)
        self.built_from = built_from

    def _add_encoded_delta(
        self,
        table: str,
        column: str,
        codes: Sequence[int],
        dictionary: Sequence[str],
        row_offset: int,
    ) -> None:
        """Index appended rows of an encoded text column.

        Normalizing and tokenizing run once per *referenced* dictionary
        entry (not once per entry, as the cold build does), so the work is
        proportional to the delta, not to the column's distinct set.
        """
        cache: dict[int, tuple[str, list[str]]] = {}
        exact = self._exact
        tokens = self._tokens
        for offset, code in enumerate(codes):
            if code < 0:
                continue
            entry = cache.get(code)
            if entry is None:
                value = dictionary[code]
                key = normalize_term(value)
                entry = (key, [t for t in _tokenize(value) if t != key])
                cache[code] = entry
            posting = Posting(table, column, row_offset + offset)
            exact[entry[0]].append(posting)
            self._indexed_cells += 1
            for token in entry[1]:
                tokens[token].append(posting)

    def _add_encoded(
        self,
        table: str,
        column: str,
        codes: list[int],
        dictionary: list[str],
    ) -> None:
        """Index a dictionary-encoded text column."""
        keys = [normalize_term(value) for value in dictionary]
        token_lists = [
            [token for token in _tokenize(value) if token != key]
            for value, key in zip(dictionary, keys)
        ]
        exact = self._exact
        tokens = self._tokens
        for row_index, code in enumerate(codes):
            if code < 0:
                continue
            posting = Posting(table, column, row_index)
            exact[keys[code]].append(posting)
            self._indexed_cells += 1
            for token in token_lists[code]:
                tokens[token].append(posting)

    def _add(
        self,
        table: str,
        column: str,
        row_index: int,
        value: Any,
        data_type: DataType,
    ) -> None:
        posting = Posting(table, column, row_index)
        key = normalize_term(value)
        self._exact[key].append(posting)
        self._indexed_cells += 1
        if data_type is DataType.TEXT and isinstance(value, str):
            for token in _tokenize(value):
                if token != key:
                    self._tokens[token].append(posting)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def indexed_cells(self) -> int:
        """Number of non-NULL cells indexed."""
        return self._indexed_cells

    @property
    def num_terms(self) -> int:
        """Number of distinct exact terms in the index."""
        return len(self._exact)

    def lookup(self, value: Any, include_tokens: bool = True) -> list[Posting]:
        """All postings whose cell equals ``value`` (or contains it as a word).

        Args:
            value: the keyword or literal to search for.
            include_tokens: also match word tokens inside text cells.
        """
        key = normalize_term(value)
        postings = list(self._exact.get(key, ()))
        if include_tokens:
            postings.extend(self._tokens.get(key, ()))
        return postings

    def columns_containing(
        self, value: Any, include_tokens: bool = True
    ) -> set[ColumnRef]:
        """Distinct columns that contain ``value`` in at least one row."""
        return {
            posting.column_ref
            for posting in self.lookup(value, include_tokens=include_tokens)
        }

    def columns_containing_any(
        self, values: Iterable[Any], include_tokens: bool = True
    ) -> set[ColumnRef]:
        """Columns containing at least one of ``values``."""
        result: set[ColumnRef] = set()
        for value in values:
            result |= self.columns_containing(value, include_tokens=include_tokens)
        return result

    def row_indexes(self, column: ColumnRef, value: Any) -> set[int]:
        """Row indexes of ``column`` whose cell matches ``value``."""
        return {
            posting.row_index
            for posting in self.lookup(value)
            if posting.table == column.table and posting.column == column.column
        }

    def term_frequency(self, value: Any) -> int:
        """Number of cells whose exact value equals ``value``."""
        return len(self._exact.get(normalize_term(value), ()))

    def column_term_frequency(self, column: ColumnRef, value: Any) -> int:
        """Number of cells of ``column`` matching ``value`` (incl. tokens)."""
        return len(self.row_indexes(column, value))
