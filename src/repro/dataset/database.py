"""The :class:`Database` container: tables plus foreign-key edges.

A database is the unit the rest of the library operates on: the inverted
index, metadata catalog, schema graph, Bayesian models and the discovery
engine are all built from a :class:`Database` instance.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.dataset.schema import Column, ColumnRef, ForeignKey
from repro.dataset.table import Table
from repro.errors import SchemaError
from repro.storage import StorageBackend, default_backend

__all__ = ["Database"]


class Database:
    """A named collection of tables connected by foreign keys.

    All tables created through :meth:`create_table` share one storage
    backend (:func:`~repro.storage.default_backend` — a
    :class:`~repro.storage.ColumnStore` unless ``PRISM_STORAGE_BACKEND``
    selects another — unless a backend is injected), so database-wide
    consumers — the executor's join-index cache in particular — operate
    against a single physical store.  Tables adopted via
    :meth:`add_table` keep whatever backend they were built on.
    """

    def __init__(self, name: str, backend: Optional[StorageBackend] = None):
        if not name or not name.strip():
            raise SchemaError("database name must be a non-empty string")
        self.name = name
        self._backend: StorageBackend = (
            backend if backend is not None else default_backend()
        )
        self._tables: dict[str, Table] = {}
        self._foreign_keys: list[ForeignKey] = []
        self._schema_version = 0

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    @property
    def backend(self) -> StorageBackend:
        """The storage backend shared by tables created on this database."""
        return self._backend

    def create_table(self, name: str, columns: Sequence[Column]) -> Table:
        """Create, register and return a new empty table."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, columns, backend=self._backend)
        self.add_table(table)
        return table

    def add_table(self, table: Table) -> None:
        """Register an existing :class:`Table` instance."""
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        self._schema_version += 1

    def drop_table(self, name: str) -> None:
        """Remove a table and any foreign keys touching it."""
        if name not in self._tables:
            raise SchemaError(f"no such table: {name!r}")
        table = self._tables.pop(name)
        if table.backend is self._backend:
            # Free the name on the shared backend for reuse, but keep the
            # dropped Table handle functional and isolated on a private
            # backend — a stale reference must never alias a successor
            # table's storage.
            table.detach_storage()
        self._foreign_keys = [
            fk for fk in self._foreign_keys if name not in fk.tables()
        ]
        self._schema_version += 1

    def has_table(self, name: str) -> bool:
        """Whether a table named ``name`` exists."""
        return name in self._tables

    def table(self, name: str) -> Table:
        """Return the table named ``name``."""
        try:
            return self._tables[name]
        except KeyError as exc:
            raise SchemaError(f"no such table: {name!r}") from exc

    @property
    def tables(self) -> dict[str, Table]:
        """Mapping of table name to :class:`Table` (treat as read-only)."""
        return self._tables

    @property
    def table_names(self) -> list[str]:
        """All table names in registration order."""
        return list(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # ------------------------------------------------------------------
    # Foreign keys
    # ------------------------------------------------------------------
    def add_foreign_key(self, foreign_key: ForeignKey) -> None:
        """Register a foreign-key edge, validating both endpoints exist."""
        for table_name, column_name in (
            (foreign_key.child_table, foreign_key.child_column),
            (foreign_key.parent_table, foreign_key.parent_column),
        ):
            table = self.table(table_name)
            if not table.has_column(column_name):
                raise SchemaError(
                    f"foreign key references unknown column "
                    f"{table_name}.{column_name}"
                )
        if foreign_key in self._foreign_keys:
            return
        self._foreign_keys.append(foreign_key)

    def link(
        self,
        child: str,
        parent: str,
        name: Optional[str] = None,
    ) -> ForeignKey:
        """Convenience: add a foreign key from ``"Table.column"`` strings."""
        child_table, _, child_column = child.partition(".")
        parent_table, _, parent_column = parent.partition(".")
        if not child_column or not parent_column:
            raise SchemaError(
                "link() expects 'Table.column' strings, got "
                f"{child!r} and {parent!r}"
            )
        foreign_key = ForeignKey(
            child_table, child_column, parent_table, parent_column, name=name
        )
        self.add_foreign_key(foreign_key)
        return foreign_key

    @property
    def foreign_keys(self) -> list[ForeignKey]:
        """All registered foreign keys (treat as read-only)."""
        return self._foreign_keys

    def foreign_keys_between(self, left: str, right: str) -> list[ForeignKey]:
        """Foreign keys connecting two tables (in either direction)."""
        result = []
        for fk in self._foreign_keys:
            if {left, right} == set(fk.tables()):
                result.append(fk)
        return result

    # ------------------------------------------------------------------
    # Column helpers
    # ------------------------------------------------------------------
    def all_column_refs(self) -> list[ColumnRef]:
        """Every column in the database as a :class:`ColumnRef`."""
        refs = []
        for table in self._tables.values():
            for column in table.columns:
                refs.append(ColumnRef(table.name, column.name))
        return refs

    def column(self, ref: ColumnRef) -> Column:
        """Resolve a :class:`ColumnRef` to its :class:`Column` definition."""
        return self.table(ref.table).column(ref.column)

    def column_values(self, ref: ColumnRef) -> list:
        """All values of the referenced column."""
        return self.table(ref.table).column_values(ref.column)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def schema_version(self) -> int:
        """Monotonic counter bumped on every table addition or removal.

        Caches derived from schema structure (e.g. the executor's join
        plans, which bake in column positions) must be discarded when this
        changes — a dropped-and-recreated table may have a different
        layout under the same name.
        """
        return self._schema_version

    @property
    def data_version(self) -> tuple[int, int, int]:
        """A cheap change token: (schema version, table count, summed
        storage versions).

        Any insert or table addition/removal yields a different token, so
        callers (e.g. the executor's existence-memo cache) can detect
        staleness without hashing contents.  The schema version guards the
        drop-and-recreate case, where count and summed versions alone
        could coincide.
        """
        return (
            self._schema_version,
            len(self._tables),
            sum(table.storage_version for table in self._tables.values()),
        )

    def artifact_key(self) -> tuple:
        """Identity token for preprocessing artifacts built from this state.

        ``(name, schema_version, data_version)`` — the key under which the
        service layer's :class:`~repro.service.ArtifactStore` caches and
        persists preprocessing bundles.  Two databases with equal keys are
        treated as interchangeable sources for cached artifacts.
        """
        return (self.name, self._schema_version, self.data_version)

    # ------------------------------------------------------------------
    # Append deltas
    # ------------------------------------------------------------------
    def storage_marks(self) -> Optional[dict]:
        """Per-table :class:`~repro.storage.TableMark` fingerprints.

        Captured when preprocessing artifacts are published, so a later
        :meth:`storage_deltas_since` can derive exactly which rows were
        appended in between.  Returns ``None`` when any table's backend
        does not support delta tracking.
        """
        marks = {}
        for table in self._tables.values():
            mark = table.backend.table_mark(table.name)
            if mark is None:
                return None
            marks[table.name] = mark
        return marks

    def storage_deltas_since(self, marks: dict) -> Optional[dict]:
        """Append deltas for every table that changed since ``marks``.

        Returns a mapping of table name →
        :class:`~repro.storage.TableDelta` covering only the tables with
        appended rows (unchanged tables are omitted), or ``None`` when
        the difference cannot be expressed as pure appends: the table set
        changed, a backend does not track deltas, or a table saw a
        non-append write.  Callers fall back to full rebuilds on ``None``.
        """
        if set(marks) != set(self._tables):
            return None
        deltas = {}
        for table in self._tables.values():
            mark = marks[table.name]
            delta = table.backend.delta_since(table.name, mark)
            if delta is None:
                return None
            if delta.num_rows:
                deltas[table.name] = delta
        return deltas

    @property
    def total_rows(self) -> int:
        """Total number of rows across every table."""
        return sum(table.num_rows for table in self._tables.values())

    def summary(self) -> dict[str, dict[str, int]]:
        """Small structural summary used by the CLI and examples."""
        return {
            table.name: {
                "columns": len(table.columns),
                "rows": table.num_rows,
            }
            for table in self._tables.values()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Database(name={self.name!r}, tables={len(self._tables)}, "
            f"foreign_keys={len(self._foreign_keys)})"
        )
