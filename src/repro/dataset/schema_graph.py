"""Schema graph and join-tree enumeration.

The paper "exhaustively search[es] through the source database schema graph
and find[s] all possible join paths, each connecting a set of related
columns" (§2.3).  This module builds that graph — nodes are tables, edges
are foreign keys — and enumerates *join trees*: acyclic sets of foreign-key
edges whose induced subgraph is connected and spans a required set of
tables, optionally passing through a bounded number of intermediate tables.

The enumeration is exhaustive up to the configured bounds (maximum number
of tables in a tree and maximum number of trees returned), which mirrors
the paper's bounded interactive search.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import networkx as nx

from repro.dataset.database import Database
from repro.dataset.schema import ForeignKey
from repro.errors import SchemaError

__all__ = ["SchemaGraph"]


class SchemaGraph:
    """Undirected multigraph over the tables of a database."""

    def __init__(self, database: Database):
        self._database = database
        #: Artifact key of the database at construction time; see
        #: :meth:`Database.artifact_key`.
        self.built_from: tuple = database.artifact_key()
        self._graph = nx.MultiGraph()
        for table_name in database.table_names:
            self._graph.add_node(table_name)
        for foreign_key in database.foreign_keys:
            self._graph.add_edge(
                foreign_key.child_table,
                foreign_key.parent_table,
                fk=foreign_key,
            )

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def apply_delta(self, database: Database, built_from: tuple) -> None:
        """Re-stamp the graph for a database that only grew by appends.

        The graph's structure depends exclusively on the schema (tables
        and foreign keys), which appends never change, so incremental
        maintenance reduces to re-pointing at the live database and
        updating ``built_from``.  Raises
        :class:`~repro.errors.SchemaError` when the table set or the
        foreign-key set differs — callers must rebuild in that case.
        """
        if set(database.table_names) != set(self._graph.nodes):
            raise SchemaError(
                "the schema graph's table set no longer matches the "
                "database; rebuild the graph"
            )
        live_edges = set(database.foreign_keys)
        graph_edges = {
            data["fk"] for __, __, data in self._graph.edges(data=True)
        }
        if live_edges != graph_edges:
            raise SchemaError(
                "the schema graph's foreign-key set no longer matches the "
                "database; rebuild the graph"
            )
        self._database = database
        self.built_from = built_from

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.MultiGraph:
        """The underlying networkx multigraph (treat as read-only)."""
        return self._graph

    @property
    def tables(self) -> list[str]:
        """All table names (graph nodes)."""
        return list(self._graph.nodes)

    def neighbors(self, table: str) -> set[str]:
        """Tables directly joinable with ``table``."""
        if table not in self._graph:
            raise SchemaError(f"unknown table in schema graph: {table!r}")
        return set(self._graph.neighbors(table))

    def join_edges(self, left: str, right: str) -> list[ForeignKey]:
        """All foreign keys connecting ``left`` and ``right``."""
        if left not in self._graph or right not in self._graph:
            return []
        if not self._graph.has_edge(left, right):
            return []
        return [
            data["fk"] for data in self._graph.get_edge_data(left, right).values()
        ]

    def incident_foreign_keys(self, table: str) -> list[ForeignKey]:
        """All foreign keys with ``table`` as one endpoint."""
        result = []
        for __, __, data in self._graph.edges(table, data=True):
            result.append(data["fk"])
        return result

    def is_connected(self, tables: Iterable[str]) -> bool:
        """Whether the given tables lie in one connected component."""
        tables = list(tables)
        if not tables:
            return True
        components = nx.connected_components(self._graph)
        for component in components:
            if all(table in component for table in tables):
                return True
        return False

    def distance(self, left: str, right: str) -> Optional[int]:
        """Shortest join-path length between two tables (None if disconnected)."""
        try:
            return nx.shortest_path_length(self._graph, left, right)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    # ------------------------------------------------------------------
    # Join-tree enumeration
    # ------------------------------------------------------------------
    def join_trees(
        self,
        required_tables: Iterable[str],
        max_tables: Optional[int] = None,
        max_trees: Optional[int] = None,
    ) -> list[tuple[ForeignKey, ...]]:
        """Enumerate join trees spanning ``required_tables``.

        A join tree is a set of foreign-key edges whose induced graph is a
        tree containing every required table.  Intermediate tables are
        allowed as long as the total number of tables does not exceed
        ``max_tables`` (default: ``len(required) + 2``).

        Args:
            required_tables: tables that must appear in every tree.
            max_tables: cap on the total number of tables in a tree.
            max_trees: cap on the number of trees returned.

        Returns:
            A list of edge tuples; the single-table case yields one empty
            tuple.  Trees are returned smaller-first (fewer edges first).
        """
        required = sorted(set(required_tables))
        for table in required:
            if table not in self._graph:
                raise SchemaError(f"unknown table in schema graph: {table!r}")
        if not required:
            return [()]
        if max_tables is None:
            max_tables = len(required) + 2
        max_tables = max(max_tables, len(required))

        results: list[tuple[ForeignKey, ...]] = []
        seen: set[frozenset[ForeignKey]] = set()
        required_set = frozenset(required)

        for tree in self._enumerate_trees(required_set, max_tables):
            key = frozenset(tree)
            if key in seen:
                continue
            seen.add(key)
            results.append(tree)
            if max_trees is not None and len(results) >= max_trees:
                break
        results.sort(key=lambda edges: (len(edges), [str(edge) for edge in edges]))
        return results

    def _enumerate_trees(
        self, required: frozenset[str], max_tables: int
    ) -> Iterator[tuple[ForeignKey, ...]]:
        start = min(required)
        if len(required) == 1 and max_tables >= 1:
            yield ()
        # Breadth-first expansion over partial trees.  A state is
        # (tables in the tree, edges of the tree); we only ever attach an
        # edge to a *new* table, so every state is a tree by construction.
        initial = (frozenset({start}), ())
        frontier: list[tuple[frozenset[str], tuple[ForeignKey, ...]]] = [initial]
        emitted: set[frozenset[ForeignKey]] = set()
        while frontier:
            next_frontier: list[tuple[frozenset[str], tuple[ForeignKey, ...]]] = []
            for tables, edges in frontier:
                if len(tables) >= max_tables:
                    continue
                # Iterate tables in sorted order: frozenset iteration order
                # depends on the interpreter's hash seed, and a hash-order
                # walk would make the trees that survive a ``max_trees``
                # bound differ between processes.
                for table in sorted(tables):
                    for __, other, data in self._graph.edges(table, data=True):
                        if other in tables:
                            continue
                        foreign_key = data["fk"]
                        new_tables = tables | {other}
                        new_edges = edges + (foreign_key,)
                        edge_key = frozenset(new_edges)
                        if edge_key in emitted:
                            continue
                        emitted.add(edge_key)
                        if required <= new_tables:
                            yield new_edges
                        next_frontier.append((new_tables, new_edges))
            frontier = next_frontier

    @staticmethod
    def tree_tables(edges: Iterable[ForeignKey], default: Optional[str] = None) -> set[str]:
        """The set of tables touched by a join tree's edges."""
        tables: set[str] = set()
        for edge in edges:
            tables.update(edge.tables())
        if not tables and default is not None:
            tables.add(default)
        return tables
