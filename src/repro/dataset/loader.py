"""CSV import/export for databases.

The demo's source databases (Mondial, IMDB, NBA) are generated
synthetically in :mod:`repro.datasets`, but real deployments load dumps
from disk.  This module round-trips a :class:`Database` through a simple
directory-of-CSV-files layout with a small JSON manifest describing column
types and foreign keys, so users can plug in their own data.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.dataset.database import Database
from repro.dataset.schema import Column, ForeignKey
from repro.dataset.types import DataType
from repro.errors import DataError, SchemaError

__all__ = ["save_database", "load_database", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.json"


def save_database(database: Database, directory: Union[str, Path]) -> Path:
    """Write ``database`` to ``directory`` as CSV files plus a manifest.

    Returns the path of the manifest file.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "name": database.name,
        "tables": {},
        "foreign_keys": [
            {
                "child_table": fk.child_table,
                "child_column": fk.child_column,
                "parent_table": fk.parent_table,
                "parent_column": fk.parent_column,
                "name": fk.name,
            }
            for fk in database.foreign_keys
        ],
    }
    for table in database:
        manifest["tables"][table.name] = {
            "file": f"{table.name}.csv",
            "columns": [
                {
                    "name": column.name,
                    "type": column.data_type.value,
                    "nullable": column.nullable,
                    "primary_key": column.primary_key,
                }
                for column in table.columns
            ],
        }
        with open(directory / f"{table.name}.csv", "w", newline="",
                  encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.column_names)
            for row in table.rows:
                writer.writerow(["" if cell is None else cell for cell in row])
    manifest_path = directory / MANIFEST_NAME
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, default=str)
    return manifest_path


def load_database(directory: Union[str, Path]) -> Database:
    """Load a database previously written by :func:`save_database`."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise DataError(f"no manifest found at {manifest_path}")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if "name" not in manifest or "tables" not in manifest:
        raise DataError("manifest is missing required keys 'name'/'tables'")

    database = Database(manifest["name"])
    for table_name, spec in manifest["tables"].items():
        columns = [
            Column(
                name=column["name"],
                data_type=DataType.from_name(column["type"]),
                nullable=column.get("nullable", True),
                primary_key=column.get("primary_key", False),
            )
            for column in spec["columns"]
        ]
        table = database.create_table(table_name, columns)
        csv_path = directory / spec["file"]
        if not csv_path.exists():
            raise DataError(f"missing CSV file for table {table_name!r}: {csv_path}")
        with open(csv_path, newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                continue
            if tuple(header) != table.column_names:
                raise SchemaError(
                    f"CSV header for {table_name!r} does not match manifest columns"
                )
            for raw_row in reader:
                row = [None if cell == "" else cell for cell in raw_row]
                table.insert(row, coerce=True)

    for fk_spec in manifest.get("foreign_keys", []):
        database.add_foreign_key(
            ForeignKey(
                child_table=fk_spec["child_table"],
                child_column=fk_spec["child_column"],
                parent_table=fk_spec["parent_table"],
                parent_column=fk_spec["parent_column"],
                name=fk_spec.get("name"),
            )
        )
    return database
