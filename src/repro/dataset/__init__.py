"""Relational substrate: tables, databases, indexes, catalogs, schema graph.

This subpackage implements the database engine the paper assumes as its
environment — an in-memory relational store with typed columns, foreign
keys, an inverted index over cell values, a metadata catalog collected
during preprocessing, and a schema graph supporting join-tree enumeration.
"""

from repro.dataset.catalog import ColumnStats, MetadataCatalog
from repro.dataset.database import Database
from repro.dataset.index import InvertedIndex, Posting, normalize_term
from repro.dataset.loader import load_database, save_database
from repro.dataset.schema import Column, ColumnRef, ForeignKey
from repro.dataset.schema_graph import SchemaGraph
from repro.dataset.table import Table
from repro.dataset.types import DataType, coerce_value, detect_type, infer_column_type

__all__ = [
    "Column",
    "ColumnRef",
    "ColumnStats",
    "Database",
    "DataType",
    "ForeignKey",
    "InvertedIndex",
    "MetadataCatalog",
    "Posting",
    "SchemaGraph",
    "Table",
    "coerce_value",
    "detect_type",
    "infer_column_type",
    "load_database",
    "normalize_term",
    "save_database",
]
