"""Schema objects: columns, column references and foreign keys.

These small immutable value objects are shared across the whole library:
the engine stores data against :class:`Column` definitions, the discovery
pipeline reasons about :class:`ColumnRef` instances (table + column name),
and :class:`ForeignKey` edges define the schema graph used for join-path
enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dataset.types import DataType
from repro.errors import SchemaError

__all__ = ["Column", "ColumnRef", "ForeignKey"]


@dataclass(frozen=True)
class Column:
    """A column definition inside a table.

    Attributes:
        name: column name, unique within its table.
        data_type: declared :class:`DataType` of the column.
        nullable: whether NULL values are permitted.
        primary_key: whether this column is (part of) the table's key.
    """

    name: str
    data_type: DataType
    nullable: bool = True
    primary_key: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise SchemaError("column name must be a non-empty string")
        if not isinstance(self.data_type, DataType):
            raise SchemaError(
                f"column {self.name!r}: data_type must be a DataType, "
                f"got {type(self.data_type).__name__}"
            )


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A fully qualified reference to ``table.column``."""

    table: str
    column: str

    def __post_init__(self) -> None:
        if not self.table or not self.column:
            raise SchemaError("ColumnRef requires non-empty table and column")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key (join) edge between two tables.

    The direction is informational only; join-path enumeration treats
    foreign keys as undirected edges, exactly as the paper's schema graph
    does.

    Attributes:
        child_table / child_column: the referencing side.
        parent_table / parent_column: the referenced side.
        name: optional human-readable name used in explanations.
    """

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str
    name: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        for value, label in (
            (self.child_table, "child_table"),
            (self.child_column, "child_column"),
            (self.parent_table, "parent_table"),
            (self.parent_column, "parent_column"),
        ):
            if not value:
                raise SchemaError(f"ForeignKey {label} must be non-empty")
        if self.child_table == self.parent_table and (
            self.child_column == self.parent_column
        ):
            raise SchemaError("ForeignKey cannot reference itself")

    @property
    def child_ref(self) -> ColumnRef:
        """The referencing column as a :class:`ColumnRef`."""
        return ColumnRef(self.child_table, self.child_column)

    @property
    def parent_ref(self) -> ColumnRef:
        """The referenced column as a :class:`ColumnRef`."""
        return ColumnRef(self.parent_table, self.parent_column)

    def tables(self) -> tuple[str, str]:
        """Both endpoint table names."""
        return (self.child_table, self.parent_table)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{self.child_table}.{self.child_column} -> "
            f"{self.parent_table}.{self.parent_column}"
        )
