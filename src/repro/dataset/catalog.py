"""Metadata catalog: per-column statistics collected during preprocessing.

The paper checks metadata constraints against "metadata information, e.g.,
min/max values, collected during preprocessing" (§2.3).  The catalog stores,
for every column: declared data type, min/max value, maximum text length,
row/null/distinct counts, and (for numeric columns) mean and standard
deviation.  The same statistics later feed the Bayesian selectivity models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.dataset.database import Database
from repro.dataset.schema import ColumnRef
from repro.dataset.types import DataType
from repro.errors import SchemaError

__all__ = ["ColumnStats", "MetadataCatalog"]


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column, as recorded by the catalog."""

    ref: ColumnRef
    data_type: DataType
    row_count: int
    null_count: int
    distinct_count: int
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None
    max_text_length: Optional[int] = None
    mean: Optional[float] = None
    stddev: Optional[float] = None

    @property
    def non_null_count(self) -> int:
        """Number of rows with a non-NULL value in this column."""
        return self.row_count - self.null_count

    @property
    def null_fraction(self) -> float:
        """Fraction of rows that are NULL (0.0 for an empty column)."""
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count

    @property
    def is_numeric(self) -> bool:
        """Whether this column holds numeric data."""
        return self.data_type.is_numeric


def _numeric_moments(values: list[float]) -> tuple[float, float]:
    count = len(values)
    mean = sum(values) / count
    variance = sum((value - mean) ** 2 for value in values) / count
    return mean, variance ** 0.5


class MetadataCatalog:
    """Column statistics for every column of a database."""

    def __init__(self) -> None:
        self._stats: dict[ColumnRef, ColumnStats] = {}
        self._table_rows: dict[str, int] = {}
        #: Artifact key of the database this catalog was built from (empty
        #: for hand-assembled catalogs); see :meth:`Database.artifact_key`.
        self.built_from: tuple = ()

    @classmethod
    def build(cls, database: Database) -> "MetadataCatalog":
        """Collect statistics for every column of ``database``.

        Columns are read straight from the storage backend.  Text columns
        never materialize their values: min/max, max length and the
        distinct count all come from the backend's dictionary of distinct
        strings, and the NULL count from the column's NULL mask.
        """
        catalog = cls()
        catalog.built_from = database.artifact_key()
        for table in database:
            catalog._table_rows[table.name] = table.num_rows
            for column in table.columns:
                ref = ColumnRef(table.name, column.name)
                stats = None
                if column.data_type is DataType.TEXT:
                    dictionary = table.text_dictionary(column.name)
                    if dictionary is not None:
                        stats = cls._collect_text_from_dictionary(
                            ref,
                            dictionary,
                            row_count=table.num_rows,
                            null_count=table.null_count(column.name),
                        )
                if stats is None:
                    stats = cls._collect(
                        ref, column.data_type, table.column_values(column.name)
                    )
                catalog._stats[ref] = stats
        return catalog

    @staticmethod
    def _collect_text_from_dictionary(
        ref: ColumnRef,
        dictionary: list[str],
        row_count: int,
        null_count: int,
    ) -> ColumnStats:
        """Text-column statistics computed over distinct values only.

        Min/max and max length over the distinct set equal those over all
        rows, and every dictionary entry occurs in at least one row, so
        its length is exactly the distinct count.
        """
        min_value: Optional[str] = None
        max_value: Optional[str] = None
        max_text_length: Optional[int] = None
        if dictionary:
            min_value = min(dictionary)
            max_value = max(dictionary)
            max_text_length = max(len(value) for value in dictionary)
        return ColumnStats(
            ref=ref,
            data_type=DataType.TEXT,
            row_count=row_count,
            null_count=null_count,
            distinct_count=len(dictionary),
            min_value=min_value,
            max_value=max_value,
            max_text_length=max_text_length,
        )

    @staticmethod
    def _collect(
        ref: ColumnRef, data_type: DataType, values: list[Any]
    ) -> ColumnStats:
        non_null = [value for value in values if value is not None]
        row_count = len(values)
        null_count = row_count - len(non_null)
        distinct_count = len(set(non_null))

        min_value: Optional[Any] = None
        max_value: Optional[Any] = None
        max_text_length: Optional[int] = None
        mean: Optional[float] = None
        stddev: Optional[float] = None

        if non_null:
            if data_type is DataType.TEXT:
                max_text_length = max(len(str(value)) for value in non_null)
                min_value = min(str(value) for value in non_null)
                max_value = max(str(value) for value in non_null)
            else:
                try:
                    min_value = min(non_null)
                    max_value = max(non_null)
                except TypeError:
                    min_value = None
                    max_value = None
            if data_type.is_numeric:
                numeric = [float(value) for value in non_null]
                mean, stddev = _numeric_moments(numeric)

        return ColumnStats(
            ref=ref,
            data_type=data_type,
            row_count=row_count,
            null_count=null_count,
            distinct_count=distinct_count,
            min_value=min_value,
            max_value=max_value,
            max_text_length=max_text_length,
            mean=mean,
            stddev=stddev,
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def stats(self, ref: ColumnRef) -> ColumnStats:
        """Statistics for one column (raises for unknown columns)."""
        try:
            return self._stats[ref]
        except KeyError as exc:
            raise SchemaError(f"no statistics for column {ref}") from exc

    def has_column(self, ref: ColumnRef) -> bool:
        """Whether statistics exist for ``ref``."""
        return ref in self._stats

    def table_row_count(self, table: str) -> int:
        """Number of rows recorded for ``table`` at build time."""
        try:
            return self._table_rows[table]
        except KeyError as exc:
            raise SchemaError(f"no statistics for table {table!r}") from exc

    def columns(self) -> list[ColumnRef]:
        """All columns with recorded statistics."""
        return list(self._stats)

    def columns_of_type(self, data_type: DataType) -> list[ColumnRef]:
        """All columns whose declared type equals ``data_type``."""
        return [
            ref
            for ref, stats in self._stats.items()
            if stats.data_type is data_type
        ]

    def __len__(self) -> int:
        return len(self._stats)
