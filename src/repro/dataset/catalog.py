"""Metadata catalog: per-column statistics collected during preprocessing.

The paper checks metadata constraints against "metadata information, e.g.,
min/max values, collected during preprocessing" (§2.3).  The catalog stores,
for every column: declared data type, min/max value, maximum text length,
row/null/distinct counts, and (for numeric columns) mean and standard
deviation.  The same statistics later feed the Bayesian selectivity models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional

from repro.dataset.database import Database
from repro.dataset.schema import ColumnRef
from repro.dataset.sketches import ColumnSketches, build_column_sketches
from repro.dataset.types import DataType
from repro.errors import ArtifactError, SchemaError

__all__ = ["ColumnStats", "MetadataCatalog"]


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column, as recorded by the catalog."""

    ref: ColumnRef
    data_type: DataType
    row_count: int
    null_count: int
    distinct_count: int
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None
    max_text_length: Optional[int] = None
    mean: Optional[float] = None
    stddev: Optional[float] = None

    @property
    def non_null_count(self) -> int:
        """Number of rows with a non-NULL value in this column."""
        return self.row_count - self.null_count

    @property
    def null_fraction(self) -> float:
        """Fraction of rows that are NULL (0.0 for an empty column)."""
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count

    @property
    def is_numeric(self) -> bool:
        """Whether this column holds numeric data."""
        return self.data_type.is_numeric


def _numeric_moments(values: list[float]) -> tuple[float, float]:
    count = len(values)
    mean = sum(values) / count
    variance = sum((value - mean) ** 2 for value in values) / count
    return mean, variance ** 0.5


class MetadataCatalog:
    """Column statistics for every column of a database."""

    def __init__(self) -> None:
        self._stats: dict[ColumnRef, ColumnStats] = {}
        self._table_rows: dict[str, int] = {}
        # Sufficient statistics for incremental maintenance: per-column
        # distinct-value sets (columns collected via the generic path) and
        # (sum, sum-of-squares) running moments for numeric columns.  Text
        # columns collected from a backend dictionary need neither — the
        # dictionary itself is the distinct set.
        self._distinct_values: dict[ColumnRef, set] = {}
        self._numeric_moments: dict[ColumnRef, tuple[float, float]] = {}
        # Statistics sketches (HyperLogLog / Bloom / equi-depth histogram)
        # per column; see repro.dataset.sketches.  Maintained alongside the
        # exact statistics: built vectorized over ColumnKernel snapshots
        # when the backend provides them, folded through apply_delta(),
        # and pickled with the catalog into artifact bundles and shards.
        self._sketches: dict[ColumnRef, ColumnSketches] = {}
        #: Artifact key of the database this catalog was built from (empty
        #: for hand-assembled catalogs); see :meth:`Database.artifact_key`.
        self.built_from: tuple = ()

    @classmethod
    def build(cls, database: Database) -> "MetadataCatalog":
        """Collect statistics for every column of ``database``.

        Columns are read straight from the storage backend.  Text columns
        never materialize their values: min/max, max length and the
        distinct count all come from the backend's dictionary of distinct
        strings, and the NULL count from the column's NULL mask.
        """
        catalog = cls()
        catalog.built_from = database.artifact_key()
        join_keys = set()
        for fk in database.foreign_keys:
            join_keys.add(ColumnRef(fk.child_table, fk.child_column))
            join_keys.add(ColumnRef(fk.parent_table, fk.parent_column))
        for table in database:
            catalog._table_rows[table.name] = table.num_rows
            kernel_of = getattr(table.backend, "column_kernel", None)
            for position, column in enumerate(table.columns):
                ref = ColumnRef(table.name, column.name)
                stats = None
                dictionary = None
                if column.data_type is DataType.TEXT:
                    dictionary = table.text_dictionary(column.name)
                    if dictionary is not None:
                        stats = cls._collect_text_from_dictionary(
                            ref,
                            dictionary,
                            row_count=table.num_rows,
                            null_count=table.null_count(column.name),
                        )
                values = None
                if stats is None:
                    values = table.column_values(column.name)
                    stats = catalog._collect(ref, column.data_type, values)
                catalog._stats[ref] = stats
                kernel = None
                if dictionary is None and kernel_of is not None:
                    kernel = kernel_of(table.name, position)
                catalog._sketches[ref] = build_column_sketches(
                    column.data_type,
                    values=values,
                    kernel=kernel,
                    dictionary=dictionary,
                    distinct_hint=stats.distinct_count,
                    want_bloom=ref in join_keys,
                )
        return catalog

    @staticmethod
    def _collect_text_from_dictionary(
        ref: ColumnRef,
        dictionary: list[str],
        row_count: int,
        null_count: int,
    ) -> ColumnStats:
        """Text-column statistics computed over distinct values only.

        Min/max and max length over the distinct set equal those over all
        rows, and every dictionary entry occurs in at least one row, so
        its length is exactly the distinct count.
        """
        min_value: Optional[str] = None
        max_value: Optional[str] = None
        max_text_length: Optional[int] = None
        if dictionary:
            min_value = min(dictionary)
            max_value = max(dictionary)
            max_text_length = max(len(value) for value in dictionary)
        return ColumnStats(
            ref=ref,
            data_type=DataType.TEXT,
            row_count=row_count,
            null_count=null_count,
            distinct_count=len(dictionary),
            min_value=min_value,
            max_value=max_value,
            max_text_length=max_text_length,
        )

    def _collect(
        self, ref: ColumnRef, data_type: DataType, values: list[Any]
    ) -> ColumnStats:
        """Generic statistics collection, recording the sufficient
        statistics (distinct set, numeric running moments) that
        :meth:`apply_delta` later folds appended rows into."""
        non_null = [value for value in values if value is not None]
        row_count = len(values)
        null_count = row_count - len(non_null)
        distinct = set(non_null)
        distinct_count = len(distinct)
        self._distinct_values[ref] = distinct

        min_value: Optional[Any] = None
        max_value: Optional[Any] = None
        max_text_length: Optional[int] = None
        mean: Optional[float] = None
        stddev: Optional[float] = None

        if non_null:
            if data_type is DataType.TEXT:
                max_text_length = max(len(str(value)) for value in non_null)
                min_value = min(str(value) for value in non_null)
                max_value = max(str(value) for value in non_null)
            else:
                try:
                    min_value = min(non_null)
                    max_value = max(non_null)
                except TypeError:
                    min_value = None
                    max_value = None
        if data_type.is_numeric:
            numeric = [float(value) for value in non_null]
            self._numeric_moments[ref] = (
                sum(numeric),
                sum(value * value for value in numeric),
            )
            if numeric:
                mean, stddev = _numeric_moments(numeric)

        return ColumnStats(
            ref=ref,
            data_type=data_type,
            row_count=row_count,
            null_count=null_count,
            distinct_count=distinct_count,
            min_value=min_value,
            max_value=max_value,
            max_text_length=max_text_length,
            mean=mean,
            stddev=stddev,
        )

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    @property
    def supports_delta(self) -> bool:
        """Whether this catalog carries the sufficient statistics that
        :meth:`apply_delta` needs (catalogs unpickled from bundles built
        before incremental maintenance existed do not)."""
        return hasattr(self, "_distinct_values") and hasattr(
            self, "_numeric_moments"
        )

    def apply_delta(
        self,
        database: Database,
        deltas: Mapping[str, Any],
        built_from: tuple,
    ) -> None:
        """Fold appended rows into the per-column statistics in place.

        ``deltas`` maps table name → :class:`~repro.storage.TableDelta`.
        Counts, min/max and distinct counts come out identical to a
        from-scratch build; the numeric mean/stddev are maintained as
        running moments and may differ from a cold two-pass computation
        by floating-point rounding only.  Raises
        :class:`~repro.errors.ArtifactError` when the catalog lacks the
        sufficient statistics for a column (see :attr:`supports_delta`).
        """
        if not self.supports_delta:
            raise ArtifactError(
                "this catalog predates incremental maintenance; rebuild it"
            )
        sketch_map = getattr(self, "_sketches", None)
        for table_name, delta in deltas.items():
            table = database.table(table_name)
            for column, column_delta in zip(table.columns, delta.columns):
                ref = ColumnRef(table_name, column.name)
                old = self.stats(ref)
                text_delta = (
                    column_delta.is_text and column_delta.dictionary is not None
                )
                if text_delta:
                    self._stats[ref] = self._fold_text_delta(old, column_delta)
                else:
                    self._stats[ref] = self._fold_generic_delta(
                        ref, old, column_delta
                    )
                sketches = sketch_map.get(ref) if sketch_map else None
                if sketches is not None:
                    # HLL registers and Bloom bits fold to exactly the
                    # state a cold rebuild would reach (max/or are
                    # order-insensitive); histogram boundaries stay fixed,
                    # only bucket counts grow.
                    if text_delta:
                        for entry in column_delta.new_dictionary_entries:
                            sketches.fold_distinct_value(entry)
                    else:
                        for value in column_delta.non_null_values:
                            sketches.fold_value(value)
            self._table_rows[table_name] = delta.end_row
        self.built_from = built_from

    @staticmethod
    def _fold_text_delta(old: ColumnStats, column_delta) -> ColumnStats:
        """Update a dictionary-encoded text column's statistics.

        The backend dictionary is an append-only distinct set, so the
        delta's ``new_dictionary_entries`` are exactly the strings first
        seen in the appended rows.
        """
        new_entries = column_delta.new_dictionary_entries
        min_value = old.min_value
        max_value = old.max_value
        max_text_length = old.max_text_length
        if new_entries:
            entry_min = min(new_entries)
            entry_max = max(new_entries)
            longest = max(len(entry) for entry in new_entries)
            min_value = (
                entry_min if min_value is None or entry_min < min_value
                else min_value
            )
            max_value = (
                entry_max if max_value is None or entry_max > max_value
                else max_value
            )
            max_text_length = (
                longest if max_text_length is None or longest > max_text_length
                else max_text_length
            )
        return replace(
            old,
            row_count=old.row_count + len(column_delta.values),
            null_count=old.null_count + column_delta.null_count,
            distinct_count=old.distinct_count + len(new_entries),
            min_value=min_value,
            max_value=max_value,
            max_text_length=max_text_length,
        )

    def _fold_generic_delta(
        self, ref: ColumnRef, old: ColumnStats, column_delta
    ) -> ColumnStats:
        """Update a generically collected column's statistics."""
        distinct = self._distinct_values.get(ref)
        if distinct is None:
            raise ArtifactError(
                f"no sufficient statistics recorded for column {ref}"
            )
        non_null = column_delta.non_null_values
        distinct.update(non_null)

        min_value = old.min_value
        max_value = old.max_value
        max_text_length = old.max_text_length
        if non_null:
            if old.data_type is DataType.TEXT:
                as_text = [str(value) for value in non_null]
                delta_longest = max(len(value) for value in as_text)
                max_text_length = (
                    delta_longest
                    if max_text_length is None or delta_longest > max_text_length
                    else max_text_length
                )
                pool = as_text if min_value is None else [min_value, *as_text]
                min_value = min(pool)
                max_value = max(
                    as_text if max_value is None else [max_value, *as_text]
                )
            elif old.non_null_count and old.min_value is None:
                # The pre-delta values were mutually uncomparable; a cold
                # rebuild over the grown column would fail the same way.
                pass
            else:
                try:
                    pool = (
                        non_null if not old.non_null_count
                        else [old.min_value, *non_null]
                    )
                    min_value = min(pool)
                    max_value = max(
                        non_null if not old.non_null_count
                        else [old.max_value, *non_null]
                    )
                except TypeError:
                    min_value = None
                    max_value = None

        mean = old.mean
        stddev = old.stddev
        if old.data_type.is_numeric:
            total, sum_squares = self._numeric_moments.get(ref, (0.0, 0.0))
            for value in non_null:
                as_float = float(value)
                total += as_float
                sum_squares += as_float * as_float
            self._numeric_moments[ref] = (total, sum_squares)
            count = old.non_null_count + len(non_null)
            if count:
                mean = total / count
                variance = max(0.0, sum_squares / count - mean * mean)
                stddev = variance ** 0.5

        return replace(
            old,
            row_count=old.row_count + len(column_delta.values),
            null_count=old.null_count + column_delta.null_count,
            distinct_count=len(distinct),
            min_value=min_value,
            max_value=max_value,
            max_text_length=max_text_length,
            mean=mean,
            stddev=stddev,
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def stats(self, ref: ColumnRef) -> ColumnStats:
        """Statistics for one column (raises for unknown columns)."""
        try:
            return self._stats[ref]
        except KeyError as exc:
            raise SchemaError(f"no statistics for column {ref}") from exc

    def has_column(self, ref: ColumnRef) -> bool:
        """Whether statistics exist for ``ref``."""
        return ref in self._stats

    def sketches(self, ref: ColumnRef) -> Optional[ColumnSketches]:
        """Statistics sketches for one column, or ``None`` when absent
        (hand-assembled catalogs, bundles built before sketches existed)."""
        sketch_map = getattr(self, "_sketches", None)
        if not sketch_map:
            return None
        return sketch_map.get(ref)

    def table_row_count(self, table: str) -> int:
        """Number of rows recorded for ``table`` at build time."""
        try:
            return self._table_rows[table]
        except KeyError as exc:
            raise SchemaError(f"no statistics for table {table!r}") from exc

    def columns(self) -> list[ColumnRef]:
        """All columns with recorded statistics."""
        return list(self._stats)

    def columns_of_type(self, data_type: DataType) -> list[ColumnRef]:
        """All columns whose declared type equals ``data_type``."""
        return [
            ref
            for ref, stats in self._stats.items()
            if stats.data_type is data_type
        ]

    def __len__(self) -> int:
        return len(self._stats)
