"""Statistics sketches: HyperLogLog, Bloom filters, equi-depth histograms.

The planner's raw catalog counts (row counts, exact distinct counts) say
nothing about how two join-key columns *overlap*, and nothing about where
a numeric column's mass sits.  This module supplies the three cheap
summaries that close those gaps:

* :class:`HyperLogLog` — a distinct-count sketch whose registers merge by
  ``max``, so the union of two columns' sketches yields an estimate of
  ``|A ∪ B|`` and, by inclusion–exclusion, of the join-key intersection.
* :class:`BloomFilter` — a membership summary over join-key columns used
  by the executor to discard probe rows whose key provably does not occur
  on the other side of a join edge (no false negatives, so dropping a
  "definitely absent" row never changes an existence outcome).
* :class:`EquiDepthHistogram` — bucket boundaries fixed at build time so
  range-predicate selectivity interpolates against observed quantiles
  instead of assuming uniformity.

Every sketch hashes through the deterministic functions below — never
Python's per-process salted ``hash()`` — so sketches built on the python
and numpy storage backends are byte-identical, survive pickling into
process shards, and fold appended deltas to the same registers a cold
rebuild would produce (HLL registers and Bloom bits are order-insensitive
``max``/``or`` folds; histogram bucket *counts* fold while boundaries stay
fixed, which is approximate by design).

Hash canonicalization mirrors Python equality across numeric types:
``True == 1 == 1.0`` all hash identically, non-integral floats hash their
IEEE-754 bits, and strings/objects hash a ``blake2b`` digest — all
reproducible across processes, platforms, and backends.
"""

from __future__ import annotations

import math
import struct
from bisect import bisect_right
from dataclasses import dataclass
from hashlib import blake2b
from typing import Any, Iterable, Optional, Sequence

try:  # numpy is optional: sketches stay fully functional without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal images
    _np = None

__all__ = [
    "BloomFilter",
    "ColumnSketches",
    "EquiDepthHistogram",
    "HyperLogLog",
    "hash_value",
    "hash_values",
]

_MASK64 = (1 << 64) - 1
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1
#: Canonical quiet-NaN bit pattern; all NaN payloads collapse to this.
_CANONICAL_NAN_BITS = 0x7FF8000000000000


def _splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a fast, well-mixed 64-bit permutation."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _hash_bytes(payload: bytes) -> int:
    digest = blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little")


def hash_value(value: Any) -> int:
    """Deterministic 64-bit hash of one non-NULL cell value.

    Values that compare equal under Python semantics hash equal: bools,
    ints and integral floats share the integer path; a float exactly
    representable as a double matches an equal out-of-int64-range int via
    the bit-pattern path.  Unlike builtin ``hash()``, the result does not
    depend on ``PYTHONHASHSEED`` or the process.
    """
    if isinstance(value, bool):
        return _splitmix64(int(value))
    if isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            return _splitmix64(value & _MASK64)
        try:
            as_float = float(value)
        except OverflowError:
            as_float = None
        if as_float is not None and as_float == value:
            bits = struct.unpack("<Q", struct.pack("<d", as_float))[0]
            return _splitmix64(bits)
        return _splitmix64(_hash_bytes(b"i:" + str(value).encode("ascii")))
    if isinstance(value, float):
        if (
            math.isfinite(value)
            and _INT64_MIN <= value <= _INT64_MAX
            and value == int(value)
        ):
            return _splitmix64(int(value) & _MASK64)
        if value != value:
            return _splitmix64(_CANONICAL_NAN_BITS)
        bits = struct.unpack("<Q", struct.pack("<d", value))[0]
        return _splitmix64(bits)
    if isinstance(value, str):
        return _splitmix64(_hash_bytes(b"s:" + value.encode("utf-8")))
    return _splitmix64(_hash_bytes(b"o:" + repr(value).encode("utf-8")))


def _vector_splitmix64(values):  # uint64 array -> uint64 array
    with _np.errstate(over="ignore"):
        values = values + _np.uint64(0x9E3779B97F4A7C15)
        values = (values ^ (values >> _np.uint64(30))) * _np.uint64(
            0xBF58476D1CE4E5B9
        )
        values = (values ^ (values >> _np.uint64(27))) * _np.uint64(
            0x94D049BB133111EB
        )
    return values ^ (values >> _np.uint64(31))


def _vector_hash_array(array):
    """Vectorized :func:`hash_value` over an int64/float64/bool array.

    Bit-for-bit identical to the scalar path: integers (and integral
    floats in int64 range) reinterpret two's-complement into uint64;
    remaining floats hash their IEEE-754 bits with NaN canonicalized.
    """
    if array.dtype == _np.bool_:
        array = array.astype(_np.int64)
    if array.dtype == _np.int64:
        return _vector_splitmix64(array.view(_np.uint64))
    if array.dtype != _np.float64:
        array = array.astype(_np.float64)
    keys = _np.empty(array.shape, dtype=_np.uint64)
    integral = (
        _np.isfinite(array)
        & (array >= -(2.0 ** 63))
        & (array <= 2.0 ** 63 - 1024.0)
        & (_np.floor(array) == array)
    )
    keys[integral] = array[integral].astype(_np.int64).view(_np.uint64)
    rest = ~integral
    if rest.any():
        bits = array[rest].view(_np.uint64).copy()
        bits[_np.isnan(array[rest])] = _np.uint64(_CANONICAL_NAN_BITS)
        keys[rest] = bits
    return _vector_splitmix64(keys)


def hash_values(values: Any) -> Any:
    """Hash a batch of values: numpy array in, ``uint64`` array out;
    any other iterable in, list of ints out (``None`` entries skipped)."""
    if _np is not None and isinstance(values, _np.ndarray) and values.dtype in (
        _np.int64,
        _np.float64,
        _np.bool_,
    ):
        return _vector_hash_array(values)
    return [hash_value(value) for value in values if value is not None]


# ----------------------------------------------------------------------
# HyperLogLog
# ----------------------------------------------------------------------
class HyperLogLog:
    """Flajolet-style distinct-count sketch with ``2**precision`` byte
    registers.  ``add`` keeps per-register maxima, so folding appended
    values produces exactly the registers of a cold rebuild, and the
    register-wise ``max`` of two sketches is the sketch of the union."""

    __slots__ = ("precision", "registers")

    def __init__(self, precision: int = 12) -> None:
        if not 4 <= precision <= 16:
            raise ValueError("HyperLogLog precision must be in [4, 16]")
        self.precision = precision
        self.registers = bytearray(1 << precision)

    # -- updates -------------------------------------------------------
    def add_hash(self, hashed: int) -> None:
        index = hashed >> (64 - self.precision)
        remainder = hashed & ((1 << (64 - self.precision)) - 1)
        rank = (64 - self.precision) - remainder.bit_length() + 1
        if rank > self.registers[index]:
            self.registers[index] = rank

    def add_value(self, value: Any) -> None:
        self.add_hash(hash_value(value))

    def add_hashes(self, hashes: Any) -> None:
        """Fold a batch of 64-bit hashes (vectorized for uint64 arrays)."""
        if _np is not None and isinstance(hashes, _np.ndarray):
            if not len(hashes):
                return
            shift = _np.uint64(64 - self.precision)
            index = (hashes >> shift).astype(_np.int64)
            remainder = hashes & _np.uint64((1 << (64 - self.precision)) - 1)
            rank = (
                _np.uint64(64 - self.precision)
                - _bit_length_u64(remainder)
                + _np.uint64(1)
            ).astype(_np.uint8)
            registers = _np.frombuffer(self.registers, dtype=_np.uint8).copy()
            _np.maximum.at(registers, index, rank)
            self.registers[:] = registers.tobytes()
            return
        for hashed in hashes:
            self.add_hash(hashed)

    # -- estimation ----------------------------------------------------
    def estimate(self) -> float:
        """The classic HLL estimate with the small-range correction.

        Computed scalar from the register bytes so the result is
        identical however the registers were populated.
        """
        registers = self.registers
        num = len(registers)
        harmonic = 0.0
        zeros = 0
        for register in registers:
            harmonic += 2.0 ** -register
            if register == 0:
                zeros += 1
        alpha = 0.7213 / (1.0 + 1.079 / num)
        raw = alpha * num * num / harmonic
        if raw <= 2.5 * num and zeros:
            return num * math.log(num / zeros)
        return raw

    def union_estimate(self, other: "HyperLogLog") -> float:
        """Estimated distinct count of the union of both sketches."""
        return self.merge(other).estimate()

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """A new sketch equal to the union (register-wise max)."""
        if other.precision != self.precision:
            raise ValueError("cannot merge HyperLogLogs of unequal precision")
        merged = HyperLogLog(self.precision)
        if _np is not None:
            left = _np.frombuffer(self.registers, dtype=_np.uint8)
            right = _np.frombuffer(other.registers, dtype=_np.uint8)
            merged.registers[:] = _np.maximum(left, right).tobytes()
        else:  # pragma: no cover - exercised on minimal images
            merged.registers[:] = bytes(
                max(a, b) for a, b in zip(self.registers, other.registers)
            )
        return merged

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HyperLogLog)
            and self.precision == other.precision
            and self.registers == other.registers
        )

    def __getstate__(self):
        return (self.precision, bytes(self.registers))

    def __setstate__(self, state):
        self.precision, registers = state
        self.registers = bytearray(registers)


def _bit_length_u64(values):
    """Vectorized ``int.bit_length`` over a uint64 array (exact — float
    conversion would round values near powers of two)."""
    lengths = _np.zeros(values.shape, dtype=_np.uint64)
    remaining = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        threshold = _np.uint64(1) << _np.uint64(shift)
        above = remaining >= threshold
        lengths[above] += _np.uint64(shift)
        remaining[above] >>= _np.uint64(shift)
    lengths[remaining > 0] += _np.uint64(1)
    return lengths


# ----------------------------------------------------------------------
# Bloom filter
# ----------------------------------------------------------------------
class BloomFilter:
    """Double-hashing Bloom filter over deterministic 64-bit hashes.

    Membership positions derive purely from the value hash, so filters
    built on either backend (or rebuilt after a delta fold) agree bit for
    bit.  A present value is *never* reported absent; an absent value is
    reported present with probability ~``0.5 ** num_hashes`` when sized
    at :data:`BITS_PER_KEY`.

    Sized at 16 bits per key (seven probes) the false-positive rate is
    under ``1e-3`` — low enough that pruning a multi-hundred-row probe
    selection rarely lets a stray key through.  The cap bounds one
    filter at 1 MiB of bits even for multi-million-row key columns.
    """

    BITS_PER_KEY = 16
    MIN_BITS = 256
    MAX_BITS = 1 << 23

    __slots__ = ("num_bits", "num_hashes", "bits")

    def __init__(self, num_bits: int, num_hashes: int = 7) -> None:
        if num_bits <= 0 or num_bits & (num_bits - 1):
            raise ValueError("Bloom filter size must be a power of two")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.bits = bytearray(num_bits // 8)

    @classmethod
    def with_capacity(cls, expected_keys: int) -> "BloomFilter":
        """Size a filter for ``expected_keys`` distinct values at build
        time (power-of-two bits, clamped to [MIN_BITS, MAX_BITS])."""
        wanted = max(cls.MIN_BITS, expected_keys * cls.BITS_PER_KEY)
        num_bits = 1 << min(
            cls.MAX_BITS.bit_length() - 1, max(8, (wanted - 1).bit_length())
        )
        return cls(num_bits)

    def _positions(self, hashed: int):
        mask = self.num_bits - 1
        second = _splitmix64(hashed ^ 0xA076_1D64_78BD_642F) | 1
        for probe in range(self.num_hashes):
            yield (hashed + probe * second) & _MASK64 & mask

    def add_hash(self, hashed: int) -> None:
        for position in self._positions(hashed):
            self.bits[position >> 3] |= 1 << (position & 7)

    def add_value(self, value: Any) -> None:
        self.add_hash(hash_value(value))

    def add_hashes(self, hashes: Any) -> None:
        if _np is not None and isinstance(hashes, _np.ndarray):
            if not len(hashes):
                return
            bits = _np.frombuffer(self.bits, dtype=_np.uint8).copy()
            mask = _np.uint64(self.num_bits - 1)
            second = _vector_splitmix64(
                hashes ^ _np.uint64(0xA076_1D64_78BD_642F)
            ) | _np.uint64(1)
            for probe in range(self.num_hashes):
                with _np.errstate(over="ignore"):
                    position = (hashes + _np.uint64(probe) * second) & mask
                _np.bitwise_or.at(
                    bits,
                    (position >> _np.uint64(3)).astype(_np.int64),
                    (
                        _np.uint8(1)
                        << (position & _np.uint64(7)).astype(_np.uint8)
                    ),
                )
            self.bits[:] = bits.tobytes()
            return
        for hashed in hashes:
            self.add_hash(hashed)

    def might_contain_hash(self, hashed: int) -> bool:
        bits = self.bits
        for position in self._positions(hashed):
            if not bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def might_contain(self, value: Any) -> bool:
        """Whether ``value`` may be in the set (no false negatives)."""
        return self.might_contain_hash(hash_value(value))

    def contains_hashes(self, hashes):
        """Vectorized membership over a uint64 hash array -> bool mask."""
        keep = _np.ones(hashes.shape, dtype=bool)
        mask = _np.uint64(self.num_bits - 1)
        bits = _np.frombuffer(self.bits, dtype=_np.uint8)
        second = _vector_splitmix64(
            hashes ^ _np.uint64(0xA076_1D64_78BD_642F)
        ) | _np.uint64(1)
        for probe in range(self.num_hashes):
            with _np.errstate(over="ignore"):
                position = (hashes + _np.uint64(probe) * second) & mask
            byte = bits[(position >> _np.uint64(3)).astype(_np.int64)]
            keep &= (
                byte >> (position & _np.uint64(7)).astype(_np.uint8)
            ).astype(_np.uint8) & _np.uint8(1) != 0
        return keep

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BloomFilter)
            and self.num_bits == other.num_bits
            and self.num_hashes == other.num_hashes
            and self.bits == other.bits
        )

    def __getstate__(self):
        return (self.num_bits, self.num_hashes, bytes(self.bits))

    def __setstate__(self, state):
        self.num_bits, self.num_hashes, bits = state
        self.bits = bytearray(bits)


# ----------------------------------------------------------------------
# Equi-depth histogram
# ----------------------------------------------------------------------
class EquiDepthHistogram:
    """Quantile histogram with boundaries frozen at build time.

    Built by index arithmetic over the sorted values (no interpolated
    percentiles), so both backends produce identical boundaries.  Folding
    an appended value bumps the covering bucket's count and stretches the
    outer boundaries; boundaries are *not* re-balanced, so a folded
    histogram approximates (rather than equals) a cold rebuild — the
    documented trade-off shared with the catalog's running moments.
    """

    MAX_BUCKETS = 16

    __slots__ = ("boundaries", "counts", "total")

    def __init__(
        self, boundaries: Sequence[float], counts: Sequence[int]
    ) -> None:
        self.boundaries = [float(value) for value in boundaries]
        self.counts = [int(count) for count in counts]
        self.total = sum(self.counts)

    @classmethod
    def from_values(
        cls, values: Iterable[Any], max_buckets: int = MAX_BUCKETS
    ) -> Optional["EquiDepthHistogram"]:
        """Build from an iterable of numeric values; ``None`` when the
        column is empty or holds values a float cannot represent."""
        try:
            ordered = sorted(
                as_float
                for as_float in (float(value) for value in values)
                if math.isfinite(as_float)
            )
        except (TypeError, ValueError, OverflowError):
            return None
        if not ordered:
            return None
        buckets = max(1, min(max_buckets, len(ordered)))
        last = len(ordered) - 1
        boundaries = [
            ordered[(edge * last) // buckets] for edge in range(buckets)
        ]
        boundaries.append(ordered[-1])
        counts = [0] * buckets
        for value in ordered:
            counts[cls._bucket_of(boundaries, value)] += 1
        return cls(boundaries, counts)

    @staticmethod
    def _bucket_of(boundaries: Sequence[float], value: float) -> int:
        index = bisect_right(boundaries, value) - 1
        return min(max(index, 0), len(boundaries) - 2)

    def fold(self, value: Any) -> None:
        """Fold one appended value into the fixed-boundary buckets."""
        try:
            as_float = float(value)
        except (TypeError, ValueError, OverflowError):
            return
        if not math.isfinite(as_float):
            return
        if as_float < self.boundaries[0]:
            self.boundaries[0] = as_float
        if as_float > self.boundaries[-1]:
            self.boundaries[-1] = as_float
        self.counts[self._bucket_of(self.boundaries, as_float)] += 1
        self.total += 1

    # -- estimation ----------------------------------------------------
    def cdf(self, value: float) -> float:
        """Estimated fraction of values ``<= value`` (piecewise linear,
        monotone non-decreasing in ``value``)."""
        if not self.total:
            return 0.0
        boundaries = self.boundaries
        if value < boundaries[0]:
            return 0.0
        if value >= boundaries[-1]:
            return 1.0
        index = self._bucket_of(boundaries, value)
        low, high = boundaries[index], boundaries[index + 1]
        within = 1.0 if high <= low else (value - low) / (high - low)
        below = sum(self.counts[:index])
        return (below + self.counts[index] * within) / self.total

    def selectivity(
        self, low: Optional[float], high: Optional[float]
    ) -> float:
        """Estimated fraction of values in ``[low, high]`` (either bound
        may be ``None`` for an open interval)."""
        upper = 1.0 if high is None else self.cdf(float(high))
        lower = 0.0 if low is None else self.cdf(float(low))
        if low is not None and high is not None and float(low) > float(high):
            return 0.0
        return max(0.0, upper - lower)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EquiDepthHistogram)
            and self.boundaries == other.boundaries
            and self.counts == other.counts
        )

    def __getstate__(self):
        return (tuple(self.boundaries), tuple(self.counts))

    def __setstate__(self, state):
        boundaries, counts = state
        self.boundaries = list(boundaries)
        self.counts = list(counts)
        self.total = sum(self.counts)


# ----------------------------------------------------------------------
# Per-column container
# ----------------------------------------------------------------------
@dataclass
class ColumnSketches:
    """The sketches the catalog maintains for one column.

    ``bloom`` is only built for join-key columns (foreign-key endpoints);
    ``histogram`` only for numeric columns.
    """

    hll: HyperLogLog
    bloom: Optional[BloomFilter] = None
    histogram: Optional[EquiDepthHistogram] = None

    def fold_value(self, value: Any) -> None:
        """Fold one appended non-NULL value into every sketch."""
        hashed = hash_value(value)
        self.hll.add_hash(hashed)
        if self.bloom is not None:
            self.bloom.add_hash(hashed)
        if self.histogram is not None:
            self.histogram.fold(value)

    def fold_distinct_value(self, value: Any) -> None:
        """Fold a newly seen *distinct* value (dictionary-encoded text:
        the dictionary is the distinct set, so repeats never arrive)."""
        hashed = hash_value(value)
        self.hll.add_hash(hashed)
        if self.bloom is not None:
            self.bloom.add_hash(hashed)


def build_column_sketches(
    data_type: Any,
    *,
    values: Optional[Iterable[Any]] = None,
    kernel: Any = None,
    dictionary: Optional[Sequence[str]] = None,
    distinct_hint: int = 0,
    want_bloom: bool = False,
) -> ColumnSketches:
    """Build the sketches for one column from whichever source is best.

    Exactly one of ``dictionary`` (text columns: the backend's distinct
    set), ``kernel`` (numpy backend: a typed array snapshot), or
    ``values`` (generic iteration) should carry the data; the resulting
    sketches are identical whichever path ran, because all three hash
    through :func:`hash_value`'s equality classes.
    """
    sketches = ColumnSketches(hll=HyperLogLog())
    if want_bloom:
        sketches.bloom = BloomFilter.with_capacity(max(1, distinct_hint))

    numeric = bool(getattr(data_type, "is_numeric", False))
    if dictionary is not None:
        hashes = [hash_value(entry) for entry in dictionary]
        sketches.hll.add_hashes(hashes)
        if sketches.bloom is not None:
            sketches.bloom.add_hashes(hashes)
        return sketches

    if (
        kernel is not None
        and _np is not None
        and getattr(kernel, "kind", None) == "array"
    ):
        present = kernel.keys[kernel.valid]
        hashes = hash_values(present)
        sketches.hll.add_hashes(hashes)
        if sketches.bloom is not None:
            sketches.bloom.add_hashes(hashes)
        if numeric:
            sketches.histogram = EquiDepthHistogram.from_values(
                present.tolist()
            )
        return sketches

    non_null = [value for value in (values or ()) if value is not None]
    hashes = [hash_value(value) for value in non_null]
    sketches.hll.add_hashes(hashes)
    if sketches.bloom is not None:
        sketches.bloom.add_hashes(hashes)
    if numeric:
        sketches.histogram = EquiDepthHistogram.from_values(non_null)
    return sketches
