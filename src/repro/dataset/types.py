"""Column data types and value coercion.

The paper's metadata constraints cover the types ``decimal``, ``int``,
``text``, ``date`` and ``time`` (§2.1).  This module defines the
:class:`DataType` enumeration, type detection for raw Python values, value
coercion used by the loader, and a total ordering helper used by the
metadata catalog when computing per-column min/max statistics.
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any, Iterable, Optional

from repro.errors import DataError

__all__ = [
    "DataType",
    "detect_type",
    "coerce_value",
    "values_comparable",
    "parse_date",
    "parse_time",
    "NUMERIC_TYPES",
]


class DataType(enum.Enum):
    """Data types supported by the engine and the constraint language."""

    INT = "int"
    DECIMAL = "decimal"
    TEXT = "text"
    DATE = "date"
    TIME = "time"
    BOOLEAN = "boolean"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type participate in numeric comparisons."""
        return self in (DataType.INT, DataType.DECIMAL)

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Resolve a type from its (case-insensitive) textual name.

        Accepts a few common aliases (``float``/``numeric``/``real`` for
        decimal, ``integer`` for int, ``string``/``varchar``/``char`` for
        text, ``bool`` for boolean).
        """
        normalized = name.strip().lower()
        aliases = {
            "integer": cls.INT,
            "int": cls.INT,
            "bigint": cls.INT,
            "smallint": cls.INT,
            "decimal": cls.DECIMAL,
            "float": cls.DECIMAL,
            "double": cls.DECIMAL,
            "numeric": cls.DECIMAL,
            "real": cls.DECIMAL,
            "text": cls.TEXT,
            "string": cls.TEXT,
            "str": cls.TEXT,
            "varchar": cls.TEXT,
            "char": cls.TEXT,
            "date": cls.DATE,
            "time": cls.TIME,
            "bool": cls.BOOLEAN,
            "boolean": cls.BOOLEAN,
        }
        if normalized not in aliases:
            raise DataError(f"unknown data type name: {name!r}")
        return aliases[normalized]


NUMERIC_TYPES = (DataType.INT, DataType.DECIMAL)

_DATE_FORMATS = ("%Y-%m-%d", "%Y/%m/%d", "%d.%m.%Y", "%m/%d/%Y")
_TIME_FORMATS = ("%H:%M:%S", "%H:%M")


def parse_date(text: str) -> _dt.date:
    """Parse a date from one of the supported textual formats."""
    for fmt in _DATE_FORMATS:
        try:
            return _dt.datetime.strptime(text.strip(), fmt).date()
        except ValueError:
            continue
    raise DataError(f"cannot parse date: {text!r}")


def parse_time(text: str) -> _dt.time:
    """Parse a time from one of the supported textual formats."""
    for fmt in _TIME_FORMATS:
        try:
            return _dt.datetime.strptime(text.strip(), fmt).time()
        except ValueError:
            continue
    raise DataError(f"cannot parse time: {text!r}")


def detect_type(value: Any) -> Optional[DataType]:
    """Infer the :class:`DataType` of a single Python value.

    Returns ``None`` for ``None`` (SQL NULL).  Booleans are detected before
    integers because ``bool`` is a subclass of ``int`` in Python.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.DECIMAL
    if isinstance(value, _dt.datetime):
        return DataType.DATE
    if isinstance(value, _dt.date):
        return DataType.DATE
    if isinstance(value, _dt.time):
        return DataType.TIME
    if isinstance(value, str):
        return DataType.TEXT
    raise DataError(f"unsupported value type: {type(value).__name__}")


def infer_column_type(values: Iterable[Any]) -> DataType:
    """Infer the best column type for a collection of values.

    ``INT`` is widened to ``DECIMAL`` when both appear; any other mixture
    falls back to ``TEXT``.  An all-NULL column defaults to ``TEXT``.
    """
    seen: set[DataType] = set()
    for value in values:
        detected = detect_type(value)
        if detected is not None:
            seen.add(detected)
    if not seen:
        return DataType.TEXT
    if seen == {DataType.INT}:
        return DataType.INT
    if seen <= {DataType.INT, DataType.DECIMAL}:
        return DataType.DECIMAL
    if len(seen) == 1:
        return next(iter(seen))
    return DataType.TEXT


def coerce_value(value: Any, data_type: DataType) -> Any:
    """Coerce ``value`` to the Python representation of ``data_type``.

    ``None`` passes through untouched (NULL).  Raises :class:`DataError`
    when the value cannot be represented in the requested type.
    """
    if value is None:
        return None
    try:
        if data_type is DataType.INT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, (int, float)):
                return int(value)
            return int(str(value).strip())
        if data_type is DataType.DECIMAL:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            return float(str(value).strip())
        if data_type is DataType.TEXT:
            return value if isinstance(value, str) else str(value)
        if data_type is DataType.DATE:
            if isinstance(value, _dt.datetime):
                return value.date()
            if isinstance(value, _dt.date):
                return value
            return parse_date(str(value))
        if data_type is DataType.TIME:
            if isinstance(value, _dt.time):
                return value
            return parse_time(str(value))
        if data_type is DataType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)):
                return bool(value)
            text = str(value).strip().lower()
            if text in ("true", "t", "yes", "1"):
                return True
            if text in ("false", "f", "no", "0"):
                return False
            raise DataError(f"cannot interpret {value!r} as boolean")
    except DataError:
        raise
    except (TypeError, ValueError) as exc:
        raise DataError(
            f"cannot coerce {value!r} to {data_type.value}"
        ) from exc
    raise DataError(f"unknown data type: {data_type!r}")


def values_comparable(left: Any, right: Any) -> bool:
    """Return ``True`` when ``left`` and ``right`` can be ordered together.

    Numeric values are mutually comparable; otherwise the values must share
    the same detected type.  ``None`` is never comparable.
    """
    if left is None or right is None:
        return False
    left_type = detect_type(left)
    right_type = detect_type(right)
    if left_type in NUMERIC_TYPES and right_type in NUMERIC_TYPES:
        return True
    return left_type == right_type
