"""Per-column value distributions.

A :class:`ColumnDistribution` summarises one column of one relation:
frequencies of (case-folded) values plus a numeric histogram for numeric
columns.  It answers the question the Bayesian scheduler keeps asking:
*what is the probability that a uniformly random row of this relation
satisfies a given value constraint on this column?*
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional, Sequence

import numpy as np

from repro.constraints.values import (
    AnyValue,
    Conjunction,
    Disjunction,
    ExactValue,
    OneOf,
    Predicate,
    Range,
    ValueConstraint,
)
from repro.dataset.index import normalize_term
from repro.dataset.types import DataType

__all__ = ["ColumnDistribution"]

_HISTOGRAM_BINS = 16
_UNSEEN_PROBABILITY = 0.5  # chance assigned to a keyword never seen in the column


class ColumnDistribution:
    """Value statistics of a single column used for selectivity estimation."""

    def __init__(
        self,
        column_name: str,
        data_type: DataType,
        values: Sequence[Any],
    ):
        # One pair per row: no hashing of raw values, so cross-type-equal
        # values (True == 1 == 1.0) and unhashable values behave exactly as
        # in a row-wise fit.
        self._init_from_pairs(
            column_name,
            data_type,
            len(values),
            [(value, 1) for value in values if value is not None],
        )

    @classmethod
    def from_counts(
        cls,
        column_name: str,
        data_type: DataType,
        row_count: int,
        value_counts: dict[Any, int],
    ) -> "ColumnDistribution":
        """Build a distribution from per-distinct-value counts.

        This is the columnar fast path used by model training: per-value
        work (normalizing, tokenizing) runs once per distinct value, with
        counts supplying the multiplicities.  The result is equivalent to
        fitting on the expanded value sequence.
        """
        self = cls.__new__(cls)
        self._init_from_pairs(
            column_name, data_type, row_count, list(value_counts.items())
        )
        return self

    def _init_from_pairs(
        self,
        column_name: str,
        data_type: DataType,
        row_count: int,
        pairs: list[tuple[Any, int]],
    ) -> None:
        """The single fit implementation: (non-NULL value, count) pairs."""
        self.column_name = column_name
        self.data_type = data_type
        self.row_count = row_count
        self.non_null_count = sum(count for __, count in pairs)
        self.null_fraction = (
            1.0 - self.non_null_count / row_count if row_count else 0.0
        )
        self._frequencies: Counter = Counter()
        self._token_frequencies: Counter = Counter()
        # _numeric is a multiset (order is never observed): values expanded
        # by their counts.
        self._numeric: Optional[np.ndarray] = None
        self._histogram: Optional[tuple[np.ndarray, np.ndarray]] = None
        self._fold_pairs(pairs)

    def _fold_pairs(self, pairs: list[tuple[Any, int]]) -> None:
        """Accumulate (non-NULL value, count) pairs into the frequency
        counters and the numeric multiset + histogram.

        Both the cold fit and :meth:`apply_delta` run this one fold, so a
        refreshed distribution cannot diverge from a rebuilt one.
        """
        for value, count in pairs:
            key = normalize_term(value)
            self._frequencies[key] += count
            if self.data_type is DataType.TEXT:
                for token in str(value).casefold().split():
                    token_key = normalize_term(token)
                    if token_key != key:
                        self._token_frequencies[token_key] += count
        if self.data_type.is_numeric and pairs:
            appended = np.repeat(
                np.asarray([float(value) for value, __ in pairs]),
                np.asarray([count for __, count in pairs], dtype=np.int64),
            )
            self._numeric = (
                appended if self._numeric is None
                else np.concatenate([self._numeric, appended])
            )
            counts, edges = np.histogram(self._numeric, bins=_HISTOGRAM_BINS)
            self._histogram = (counts, edges)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def apply_delta(
        self, pairs: list[tuple[Any, int]], added_rows: int
    ) -> None:
        """Fold appended rows into the distribution in place.

        ``pairs`` are (non-NULL value, count) pairs covering the appended
        rows; ``added_rows`` is the total number of appended rows
        including NULLs.  Frequencies and counts come out identical to a
        from-scratch fit over the grown column (Counter addition is
        exact); the numeric multiset and its histogram are recomputed so
        range probabilities match a cold fit bit-for-bit.
        """
        self.row_count += added_rows
        self.non_null_count += sum(count for __, count in pairs)
        self.null_fraction = (
            1.0 - self.non_null_count / self.row_count if self.row_count else 0.0
        )
        self._fold_pairs(pairs)

    # ------------------------------------------------------------------
    # Elementary probabilities
    # ------------------------------------------------------------------
    def value_probability(self, value: Any) -> float:
        """P(a random row's cell matches ``value``), keyword semantics."""
        if self.row_count == 0:
            return 0.0
        key = normalize_term(value)
        count = self._frequencies.get(key, 0) + self._token_frequencies.get(key, 0)
        if count == 0:
            # The value was never observed — smooth rather than declare
            # impossible, because the index may still match through word
            # tokens of multi-word cells (and the model is only a prior).
            return min(_UNSEEN_PROBABILITY, 0.5 / (self.non_null_count + 1.0))
        return min(1.0, count / self.row_count)

    def range_probability(
        self,
        low: Optional[float],
        high: Optional[float],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """P(a random row's numeric cell falls inside the range)."""
        if self._numeric is None or self.row_count == 0:
            return 0.0
        values = self._numeric
        mask = np.ones(len(values), dtype=bool)
        if low is not None:
            mask &= values >= low if low_inclusive else values > low
        if high is not None:
            mask &= values <= high if high_inclusive else values < high
        return float(mask.sum()) / self.row_count

    # ------------------------------------------------------------------
    # Constraint-level probability
    # ------------------------------------------------------------------
    def match_probability(self, constraint: ValueConstraint) -> float:
        """P(a random row of the relation satisfies ``constraint`` here)."""
        if isinstance(constraint, AnyValue):
            return 1.0 - self.null_fraction
        if isinstance(constraint, ExactValue):
            return self.value_probability(constraint.value)
        if isinstance(constraint, OneOf):
            probability = 0.0
            for value in constraint.values:
                probability += self.value_probability(value)
            return min(1.0, probability)
        if isinstance(constraint, Range):
            low = _as_float(constraint.low)
            high = _as_float(constraint.high)
            if self.data_type.is_numeric:
                return self.range_probability(
                    low, high, constraint.low_inclusive, constraint.high_inclusive
                )
            return self._scan_probability(constraint)
        if isinstance(constraint, Predicate):
            return self._predicate_probability(constraint)
        if isinstance(constraint, Conjunction):
            probability = 1.0
            for part in constraint.parts:
                probability *= self.match_probability(part)
            return probability
        if isinstance(constraint, Disjunction):
            miss = 1.0
            for part in constraint.parts:
                miss *= 1.0 - self.match_probability(part)
            return 1.0 - miss
        return self._scan_probability(constraint)

    def _predicate_probability(self, constraint: Predicate) -> float:
        if constraint.op in ("==",):
            return self.value_probability(constraint.constant)
        if constraint.op == "!=":
            return max(0.0, 1.0 - self.value_probability(constraint.constant))
        constant = _as_float(constraint.constant)
        if constant is None or self._numeric is None:
            return self._scan_probability(constraint)
        if constraint.op == ">":
            return self.range_probability(constant, None, low_inclusive=False)
        if constraint.op == ">=":
            return self.range_probability(constant, None, low_inclusive=True)
        if constraint.op == "<":
            return self.range_probability(None, constant, high_inclusive=False)
        if constraint.op == "<=":
            return self.range_probability(None, constant, high_inclusive=True)
        return self._scan_probability(constraint)

    def _scan_probability(self, constraint: ValueConstraint) -> float:
        """Fallback: estimate from the distinct-value frequency table."""
        if self.row_count == 0:
            return 0.0
        matched = 0
        for key, count in self._frequencies.items():
            if constraint.matches(key):
                matched += count
        if matched == 0:
            return min(_UNSEEN_PROBABILITY, 0.5 / (self.non_null_count + 1.0))
        return matched / self.row_count


def _as_float(value: Any) -> Optional[float]:
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None
