"""Single-relation Bayesian model.

"A Bayesian model is able to give an estimated probability of a certain
record matching the sample constraint exists" (§2.3).  For a single
relation the model is a product of per-column distributions under the
naive-Bayes independence assumption; combined with the relation's size it
yields the probability that *at least one* record matches.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Mapping, Optional

from repro.bayesian.distributions import ColumnDistribution
from repro.constraints.values import ValueConstraint
from repro.dataset.table import Table
from repro.dataset.types import DataType
from repro.errors import TrainingError

__all__ = ["SingleRelationModel"]


class SingleRelationModel:
    """Naive-Bayes style model over the columns of one relation."""

    def __init__(
        self,
        table_name: str,
        row_count: int,
        distributions: Mapping[str, ColumnDistribution],
    ):
        if row_count < 0:
            raise TrainingError("row_count cannot be negative")
        self.table_name = table_name
        self.row_count = row_count
        self._distributions = dict(distributions)

    @classmethod
    def fit(cls, table: Table) -> "SingleRelationModel":
        """Train the model directly from a table's columns.

        Text distributions are fitted from the storage backend's
        per-distinct-value counts, so repeated strings (dictionary-encoded
        in the backend) are normalized and tokenized once.  Numeric
        columns — typically near-unique, where counting buys nothing —
        read their column array directly.
        """
        distributions = {}
        for column in table.columns:
            if column.data_type is DataType.TEXT:
                distributions[column.name] = ColumnDistribution.from_counts(
                    column.name,
                    column.data_type,
                    table.num_rows,
                    table.value_counts(column.name),
                )
            else:
                distributions[column.name] = ColumnDistribution(
                    column.name,
                    column.data_type,
                    table.column_values(column.name),
                )
        return cls(table.name, table.num_rows, distributions)

    def apply_delta(self, delta, columns) -> None:
        """Fold one table's appended rows into the model in place.

        ``delta`` is a :class:`~repro.storage.TableDelta` and ``columns``
        the table's :class:`~repro.dataset.schema.Column` definitions in
        position order.  Text columns aggregate their delta into
        per-distinct-value counts first (mirroring the columnar fit), so
        repeated strings are normalized and tokenized once.
        """
        for column, column_delta in zip(columns, delta.columns):
            distribution = self.distribution(column.name)
            if column.data_type is DataType.TEXT:
                pairs = list(Counter(column_delta.non_null_values).items())
            else:
                pairs = [
                    (value, 1) for value in column_delta.non_null_values
                ]
            distribution.apply_delta(pairs, added_rows=len(column_delta.values))
        self.row_count += delta.num_rows

    def distribution(self, column_name: str) -> ColumnDistribution:
        """The distribution for ``column_name``."""
        try:
            return self._distributions[column_name]
        except KeyError as exc:
            raise TrainingError(
                f"model for table {self.table_name!r} has no column "
                f"{column_name!r}"
            ) from exc

    def has_column(self, column_name: str) -> bool:
        """Whether a distribution exists for ``column_name``."""
        return column_name in self._distributions

    # ------------------------------------------------------------------
    # Probabilities
    # ------------------------------------------------------------------
    def row_match_probability(
        self, constraints: Mapping[str, ValueConstraint]
    ) -> float:
        """P(a uniformly random row satisfies every per-column constraint).

        Columns are assumed independent (naive Bayes).
        """
        probability = 1.0
        for column_name, constraint in constraints.items():
            probability *= self.distribution(column_name).match_probability(constraint)
        return probability

    def exists_probability(
        self,
        constraints: Mapping[str, ValueConstraint],
        row_count: Optional[int] = None,
    ) -> float:
        """P(at least one row of the relation satisfies the constraints)."""
        rows = self.row_count if row_count is None else row_count
        if rows <= 0:
            return 0.0
        per_row = self.row_match_probability(constraints)
        if per_row <= 0.0:
            return 0.0
        if per_row >= 1.0:
            return 1.0
        # 1 - (1 - p)^n computed stably in log space.
        return 1.0 - math.exp(rows * math.log1p(-per_row))

    def failure_probability(
        self,
        constraints: Mapping[str, ValueConstraint],
        row_count: Optional[int] = None,
    ) -> float:
        """P(no row satisfies the constraints) — the scheduler's signal."""
        return 1.0 - self.exists_probability(constraints, row_count)
