"""Join-indicator models across relations.

Learning a model that captures correlations *across* relations is harder
than learning one per relation; the paper solves it "using the join
indicator introduced by Getoor et al." (§2.3, citing SIGMOD 2001).  The
join indicator J for a foreign-key edge is a binary variable that is true
when a pair of rows (one from each relation) actually joins.  We estimate
``P(J = 1)`` from the key-value frequency distributions of both sides,
along with the expected fan-out used to size join results.
"""

from __future__ import annotations

from collections import Counter

from repro.dataset.database import Database
from repro.dataset.index import normalize_term
from repro.dataset.schema import ForeignKey
from repro.errors import TrainingError

__all__ = ["JoinIndicatorModel"]


class JoinIndicatorModel:
    """Selectivity statistics for one foreign-key join edge.

    Fitted models retain their sufficient statistics — the normalized
    key-value frequency counters of both sides plus the two row counts —
    so appended rows can be folded in incrementally
    (:meth:`apply_delta`) with the derived probabilities recomputed
    through exactly the same arithmetic as a from-scratch fit.
    """

    def __init__(
        self,
        foreign_key: ForeignKey,
        join_probability: float,
        expected_join_size: float,
        child_match_fraction: float,
        parent_match_fraction: float,
    ):
        self.foreign_key = foreign_key
        self.join_probability = join_probability
        self.expected_join_size = expected_join_size
        self.child_match_fraction = child_match_fraction
        self.parent_match_fraction = parent_match_fraction
        # Sufficient statistics; populated by fit(), absent on
        # hand-constructed models (which then cannot apply deltas).
        self._child_counts: Counter | None = None
        self._parent_counts: Counter | None = None
        self._child_rows = 0
        self._parent_rows = 0

    @classmethod
    def fit(cls, database: Database, foreign_key: ForeignKey) -> "JoinIndicatorModel":
        """Estimate the join-indicator statistics for one edge."""
        child = database.table(foreign_key.child_table)
        parent = database.table(foreign_key.parent_table)
        # Aggregate over the backend's distinct-value counts so each value
        # is normalized once, not once per row.
        child_counts: Counter = Counter()
        for value, count in child.value_counts(foreign_key.child_column).items():
            child_counts[normalize_term(value)] += count
        parent_counts: Counter = Counter()
        for value, count in parent.value_counts(foreign_key.parent_column).items():
            parent_counts[normalize_term(value)] += count
        return cls._from_statistics(
            foreign_key, child_counts, parent_counts,
            child.num_rows, parent.num_rows,
        )

    @classmethod
    def _from_statistics(
        cls,
        foreign_key: ForeignKey,
        child_counts: Counter,
        parent_counts: Counter,
        child_rows: int,
        parent_rows: int,
    ) -> "JoinIndicatorModel":
        """Build a model from sufficient statistics (the single place the
        derived probabilities are computed, shared by fit and refresh)."""
        model = cls(foreign_key, 0.0, 0.0, 0.0, 0.0)
        model._child_counts = child_counts
        model._parent_counts = parent_counts
        model._child_rows = child_rows
        model._parent_rows = parent_rows
        model._recompute()
        return model

    def _recompute(self) -> None:
        """Derive the probabilities from the sufficient statistics."""
        child_counts = self._child_counts
        parent_counts = self._parent_counts
        total_pairs = self._child_rows * self._parent_rows
        if total_pairs == 0:
            self.join_probability = 0.0
            self.expected_join_size = 0.0
            self.child_match_fraction = 0.0
            self.parent_match_fraction = 0.0
            return

        join_size = 0
        matched_child_rows = 0
        matched_parent_rows = 0
        for value, child_count in child_counts.items():
            parent_count = parent_counts.get(value, 0)
            if parent_count:
                join_size += child_count * parent_count
                matched_child_rows += child_count
        for value, parent_count in parent_counts.items():
            if value in child_counts:
                matched_parent_rows += parent_count

        self.join_probability = join_size / total_pairs
        self.expected_join_size = float(join_size)
        self.child_match_fraction = (
            matched_child_rows / self._child_rows if self._child_rows else 0.0
        )
        self.parent_match_fraction = (
            matched_parent_rows / self._parent_rows if self._parent_rows else 0.0
        )

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    @property
    def supports_delta(self) -> bool:
        """Whether the model retains the counters :meth:`apply_delta`
        folds into (models unpickled from bundles built before
        incremental maintenance existed, or constructed by hand, do not)."""
        return getattr(self, "_child_counts", None) is not None and (
            getattr(self, "_parent_counts", None) is not None
        )

    def apply_delta(
        self,
        child_values,
        parent_values,
        child_rows: "int | None" = None,
        parent_rows: "int | None" = None,
    ) -> None:
        """Fold appended key values of either side into the model.

        ``child_values``/``parent_values`` are the non-NULL key cells
        appended to each side (empty when that side did not change);
        ``child_rows``/``parent_rows`` are the post-delta row counts
        (``None`` keeps the side's current count).  The counters are
        exact, so the recomputed probabilities equal a from-scratch fit
        bit-for-bit.  Raises :class:`~repro.errors.TrainingError` when
        the model lacks its sufficient statistics (see
        :attr:`supports_delta`).
        """
        if not self.supports_delta:
            raise TrainingError(
                f"join model for {self.foreign_key} carries no sufficient "
                "statistics; refit it"
            )
        for value, count in Counter(child_values).items():
            self._child_counts[normalize_term(value)] += count
        for value, count in Counter(parent_values).items():
            self._parent_counts[normalize_term(value)] += count
        if child_rows is not None:
            self._child_rows = child_rows
        if parent_rows is not None:
            self._parent_rows = parent_rows
        self._recompute()

    @staticmethod
    def key(foreign_key: ForeignKey) -> tuple[str, str, str, str]:
        """Canonical dictionary key for an edge (direction preserved)."""
        return (
            foreign_key.child_table,
            foreign_key.child_column,
            foreign_key.parent_table,
            foreign_key.parent_column,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"JoinIndicatorModel({self.foreign_key}, "
            f"p_join={self.join_probability:.3g}, "
            f"size={self.expected_join_size:.1f})"
        )
