"""Join-indicator models across relations.

Learning a model that captures correlations *across* relations is harder
than learning one per relation; the paper solves it "using the join
indicator introduced by Getoor et al." (§2.3, citing SIGMOD 2001).  The
join indicator J for a foreign-key edge is a binary variable that is true
when a pair of rows (one from each relation) actually joins.  We estimate
``P(J = 1)`` from the key-value frequency distributions of both sides,
along with the expected fan-out used to size join results.
"""

from __future__ import annotations

from collections import Counter

from repro.dataset.database import Database
from repro.dataset.index import normalize_term
from repro.dataset.schema import ForeignKey
from repro.errors import TrainingError

__all__ = ["JoinIndicatorModel"]


class JoinIndicatorModel:
    """Selectivity statistics for one foreign-key join edge."""

    def __init__(
        self,
        foreign_key: ForeignKey,
        join_probability: float,
        expected_join_size: float,
        child_match_fraction: float,
        parent_match_fraction: float,
    ):
        self.foreign_key = foreign_key
        self.join_probability = join_probability
        self.expected_join_size = expected_join_size
        self.child_match_fraction = child_match_fraction
        self.parent_match_fraction = parent_match_fraction

    @classmethod
    def fit(cls, database: Database, foreign_key: ForeignKey) -> "JoinIndicatorModel":
        """Estimate the join-indicator statistics for one edge."""
        child = database.table(foreign_key.child_table)
        parent = database.table(foreign_key.parent_table)
        # Aggregate over the backend's distinct-value counts so each value
        # is normalized once, not once per row.
        child_counts: Counter = Counter()
        for value, count in child.value_counts(foreign_key.child_column).items():
            child_counts[normalize_term(value)] += count
        parent_counts: Counter = Counter()
        for value, count in parent.value_counts(foreign_key.parent_column).items():
            parent_counts[normalize_term(value)] += count
        total_pairs = child.num_rows * parent.num_rows
        if total_pairs == 0:
            return cls(foreign_key, 0.0, 0.0, 0.0, 0.0)

        join_size = 0
        matched_child_rows = 0
        matched_parent_rows = 0
        for value, child_count in child_counts.items():
            parent_count = parent_counts.get(value, 0)
            if parent_count:
                join_size += child_count * parent_count
                matched_child_rows += child_count
        for value, parent_count in parent_counts.items():
            if value in child_counts:
                matched_parent_rows += parent_count

        join_probability = join_size / total_pairs
        child_match_fraction = (
            matched_child_rows / child.num_rows if child.num_rows else 0.0
        )
        parent_match_fraction = (
            matched_parent_rows / parent.num_rows if parent.num_rows else 0.0
        )
        return cls(
            foreign_key=foreign_key,
            join_probability=join_probability,
            expected_join_size=float(join_size),
            child_match_fraction=child_match_fraction,
            parent_match_fraction=parent_match_fraction,
        )

    @staticmethod
    def key(foreign_key: ForeignKey) -> tuple[str, str, str, str]:
        """Canonical dictionary key for an edge (direction preserved)."""
        return (
            foreign_key.child_table,
            foreign_key.child_column,
            foreign_key.parent_table,
            foreign_key.parent_column,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"JoinIndicatorModel({self.foreign_key}, "
            f"p_join={self.join_probability:.3g}, "
            f"size={self.expected_join_size:.1f})"
        )
