"""Bayesian selectivity models used by Prism's filter scheduler.

Single-relation models estimate the probability that a record matching the
sample constraint exists inside one relation; join-indicator models (after
Getoor et al., SIGMOD 2001) extend the estimate across foreign-key joins.
"""

from repro.bayesian.distributions import ColumnDistribution
from repro.bayesian.estimator import SelectivityEstimator
from repro.bayesian.join_indicator import JoinIndicatorModel
from repro.bayesian.single_relation import SingleRelationModel
from repro.bayesian.training import BayesianModelSet, train_models

__all__ = [
    "BayesianModelSet",
    "ColumnDistribution",
    "JoinIndicatorModel",
    "SelectivityEstimator",
    "SingleRelationModel",
    "train_models",
]
