"""Selectivity / failure-probability estimation for filters.

This is the signal Prism's filter scheduler consumes: for a candidate
filter (a sub-PJ query plus the sample cells it must contain), estimate the
probability that *no* result row satisfies the cells, i.e. the probability
the filter fails and prunes its candidates.

The estimate combines the single-relation Bayesian models (per-row match
probability, assuming column independence) with the join-indicator models
(expected join cardinality), then applies a Poisson-style approximation
``P(fail) = exp(-expected number of matching result rows)``.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

from repro.bayesian.join_indicator import JoinIndicatorModel
from repro.bayesian.single_relation import SingleRelationModel
from repro.constraints.values import ValueConstraint
from repro.errors import TrainingError
from repro.query.pj_query import ProjectJoinQuery

__all__ = ["SelectivityEstimator"]


class SelectivityEstimator:
    """Estimates result sizes and failure probabilities of PJ queries."""

    def __init__(
        self,
        relation_models: Mapping[str, SingleRelationModel],
        join_models: Mapping[tuple, JoinIndicatorModel],
    ):
        self._relation_models = dict(relation_models)
        self._join_models = dict(join_models)

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def relation_model(self, table_name: str) -> SingleRelationModel:
        """The single-relation model for ``table_name``."""
        try:
            return self._relation_models[table_name]
        except KeyError as exc:
            raise TrainingError(f"no Bayesian model for table {table_name!r}") from exc

    def join_model(self, key: tuple) -> Optional[JoinIndicatorModel]:
        """The join-indicator model for a foreign-key edge key (or None)."""
        return self._join_models.get(key)

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    def expected_result_size(self, query: ProjectJoinQuery) -> float:
        """Expected number of rows the (unconstrained) PJ query returns."""
        size = 1.0
        for table_name in query.tables:
            size *= max(self.relation_model(table_name).row_count, 0)
        for edge in query.joins:
            model = self._join_models.get(JoinIndicatorModel.key(edge))
            if model is None:
                # Unknown edge: assume a key/foreign-key join with fan-out 1
                # from the child side.
                parent_rows = self.relation_model(edge.parent_table).row_count
                size *= 1.0 / parent_rows if parent_rows else 0.0
            else:
                size *= model.join_probability
        return size

    def row_match_probability(
        self,
        query: ProjectJoinQuery,
        cell_constraints: Mapping[int, ValueConstraint],
    ) -> float:
        """P(a random result row satisfies every projected cell constraint)."""
        probability = 1.0
        for position, constraint in cell_constraints.items():
            ref = query.projections[position]
            model = self.relation_model(ref.table)
            if not model.has_column(ref.column):
                raise TrainingError(
                    f"model for {ref.table!r} has no column {ref.column!r}"
                )
            probability *= model.distribution(ref.column).match_probability(constraint)
        return probability

    def expected_matches(
        self,
        query: ProjectJoinQuery,
        cell_constraints: Mapping[int, ValueConstraint],
    ) -> float:
        """Expected number of result rows satisfying the cell constraints."""
        return self.expected_result_size(query) * self.row_match_probability(
            query, cell_constraints
        )

    def failure_probability(
        self,
        query: ProjectJoinQuery,
        cell_constraints: Mapping[int, ValueConstraint],
    ) -> float:
        """P(no result row satisfies the cell constraints).

        Uses the Poisson approximation ``exp(-lambda)`` where ``lambda`` is
        the expected number of matching rows, clipped into [0, 1].
        """
        expected = self.expected_matches(query, cell_constraints)
        if expected <= 0.0:
            return 1.0
        return max(0.0, min(1.0, math.exp(-expected)))

    def estimated_cost(self, query: ProjectJoinQuery) -> float:
        """A crude validation-cost estimate used by schedulers.

        The paper leaves cost estimation out of scope; we use the sum of the
        participating relation sizes plus the expected intermediate join
        size, which is enough to prefer small filters over large ones.
        """
        base = sum(
            max(self.relation_model(table).row_count, 1) for table in query.tables
        )
        return base + self.expected_result_size(query)
