"""Training entry point for the Bayesian model set.

The paper trains its Bayesian models "a priori for the source database"
(§2.3) — i.e. once, offline, as part of preprocessing.  :func:`train_models`
fits one :class:`SingleRelationModel` per table and one
:class:`JoinIndicatorModel` per foreign-key edge and returns them bundled
in a :class:`BayesianModelSet` together with the selectivity estimator the
scheduler consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.bayesian.estimator import SelectivityEstimator
from repro.bayesian.join_indicator import JoinIndicatorModel
from repro.bayesian.single_relation import SingleRelationModel
from repro.dataset.database import Database
from repro.errors import TrainingError

__all__ = ["BayesianModelSet", "train_models"]


@dataclass
class BayesianModelSet:
    """All trained models for one source database.

    ``trained_on`` records the database's artifact key (name, schema
    version, data version) at training time, so artifact caches can tell
    whether a persisted model set still matches the live data.
    """

    database_name: str
    relation_models: Dict[str, SingleRelationModel] = field(default_factory=dict)
    join_models: Dict[tuple, JoinIndicatorModel] = field(default_factory=dict)
    trained_on: tuple = ()

    def estimator(self) -> SelectivityEstimator:
        """Build the selectivity estimator backed by these models."""
        return SelectivityEstimator(self.relation_models, self.join_models)

    @property
    def num_relation_models(self) -> int:
        """Number of per-relation models."""
        return len(self.relation_models)

    @property
    def num_join_models(self) -> int:
        """Number of join-indicator models."""
        return len(self.join_models)


def train_models(database: Database) -> BayesianModelSet:
    """Train the full Bayesian model set for ``database``.

    Raises :class:`TrainingError` for an empty database (no tables).
    """
    if not database.table_names:
        raise TrainingError(
            f"database {database.name!r} has no tables to train on"
        )
    model_set = BayesianModelSet(
        database_name=database.name, trained_on=database.artifact_key()
    )
    for table in database:
        model_set.relation_models[table.name] = SingleRelationModel.fit(table)
    for foreign_key in database.foreign_keys:
        model_set.join_models[JoinIndicatorModel.key(foreign_key)] = (
            JoinIndicatorModel.fit(database, foreign_key)
        )
    return model_set
