"""Training entry point for the Bayesian model set.

The paper trains its Bayesian models "a priori for the source database"
(§2.3) — i.e. once, offline, as part of preprocessing.  :func:`train_models`
fits one :class:`SingleRelationModel` per table and one
:class:`JoinIndicatorModel` per foreign-key edge and returns them bundled
in a :class:`BayesianModelSet` together with the selectivity estimator the
scheduler consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.bayesian.estimator import SelectivityEstimator
from repro.bayesian.join_indicator import JoinIndicatorModel
from repro.bayesian.single_relation import SingleRelationModel
from repro.dataset.database import Database
from repro.errors import TrainingError

__all__ = ["BayesianModelSet", "train_models"]


@dataclass
class BayesianModelSet:
    """All trained models for one source database.

    ``trained_on`` records the database's artifact key (name, schema
    version, data version) at training time, so artifact caches can tell
    whether a persisted model set still matches the live data.
    """

    database_name: str
    relation_models: Dict[str, SingleRelationModel] = field(default_factory=dict)
    join_models: Dict[tuple, JoinIndicatorModel] = field(default_factory=dict)
    trained_on: tuple = ()

    def estimator(self) -> SelectivityEstimator:
        """Build the selectivity estimator backed by these models."""
        return SelectivityEstimator(self.relation_models, self.join_models)

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    @property
    def supports_delta(self) -> bool:
        """Whether every member model can fold append deltas in place."""
        return all(
            model.supports_delta for model in self.join_models.values()
        )

    def apply_delta(
        self,
        database: Database,
        deltas: Mapping[str, "TableDelta"],
        trained_on: tuple,
    ) -> None:
        """Fold appended rows into every affected model in place.

        Relation models of changed tables absorb their table's delta;
        join models are updated whenever either endpoint's key column
        gained rows.  ``trained_on`` is the artifact key of the
        post-delta state.  Raises :class:`TrainingError` when a changed
        table has no fitted model or a join model lacks its sufficient
        statistics.
        """
        for table_name, delta in deltas.items():
            model = self.relation_models.get(table_name)
            if model is None:
                raise TrainingError(
                    f"no relation model for table {table_name!r}; retrain"
                )
            model.apply_delta(delta, database.table(table_name).columns)
        for join_model in self.join_models.values():
            foreign_key = join_model.foreign_key
            child_delta = deltas.get(foreign_key.child_table)
            parent_delta = deltas.get(foreign_key.parent_table)
            if child_delta is None and parent_delta is None:
                continue
            join_model.apply_delta(
                child_values=self._key_values(
                    database, child_delta,
                    foreign_key.child_table, foreign_key.child_column,
                ),
                parent_values=self._key_values(
                    database, parent_delta,
                    foreign_key.parent_table, foreign_key.parent_column,
                ),
                child_rows=None if child_delta is None else child_delta.end_row,
                parent_rows=(
                    None if parent_delta is None else parent_delta.end_row
                ),
            )
        self.trained_on = trained_on

    @staticmethod
    def _key_values(database, delta, table_name: str, column_name: str):
        """Non-NULL appended cells of one join-key column ([] if unchanged)."""
        if delta is None:
            return []
        position = database.table(table_name).column_position(column_name)
        return delta.columns[position].non_null_values

    @property
    def num_relation_models(self) -> int:
        """Number of per-relation models."""
        return len(self.relation_models)

    @property
    def num_join_models(self) -> int:
        """Number of join-indicator models."""
        return len(self.join_models)


def train_models(database: Database) -> BayesianModelSet:
    """Train the full Bayesian model set for ``database``.

    Raises :class:`TrainingError` for an empty database (no tables).
    """
    if not database.table_names:
        raise TrainingError(
            f"database {database.name!r} has no tables to train on"
        )
    model_set = BayesianModelSet(
        database_name=database.name, trained_on=database.artifact_key()
    )
    for table in database:
        model_set.relation_models[table.name] = SingleRelationModel.fit(table)
    for foreign_key in database.foreign_keys:
        model_set.join_models[JoinIndicatorModel.key(foreign_key)] = (
            JoinIndicatorModel.fit(database, foreign_key)
        )
    return model_set
