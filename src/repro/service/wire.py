"""The v1 wire format: versioned, JSON-serializable service messages.

Everything that crosses the service boundary — client → service
submissions, the process-shard IPC frames of
:mod:`repro.service.shards`, request files fed to ``prism serve-batch``
— is encoded by this module as plain JSON with an explicit
``api_version`` stamp.  The codec is deliberately **strict**: a missing
required field, an *unknown* field (typos never pass silently) or a
version this build does not speak raises
:class:`~repro.errors.WireFormatError` instead of guessing.

Two design points worth knowing:

* **Requests round-trip losslessly.**  Every constraint form of the
  multiresolution language (:mod:`repro.constraints`) has a typed JSON
  encoding, so ``DiscoveryRequest.from_json(request.to_json())``
  reconstructs an equal request — the codec does not go through the
  textual constraint syntax, whose parse is lossy for typed literals.
* **Responses serialize the serving-boundary view of a result.**  A
  :class:`~repro.discovery.result.DiscoveryResult` holds live
  :class:`~repro.query.ProjectJoinQuery` objects bound to database
  tables; those stay on the side that ran the round.  The wire form
  carries the rendered SQL strings plus the complete
  :class:`~repro.discovery.result.DiscoveryStats`, and decoding yields a
  :class:`RemoteDiscoveryResult` whose ``sql()``/``num_queries``/``stats``
  behave identically.  ``queries`` is empty on a decoded result — query
  *objects* do not cross process boundaries, by design.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping, Optional, Sequence

from repro.constraints.metadata import (
    MetadataConjunction,
    MetadataConstraint,
    MetadataDisjunction,
    MetadataField,
    MetadataPredicate,
)
from repro.constraints.sample import SampleConstraint
from repro.constraints.spec import MappingSpec
from repro.constraints.values import (
    AnyValue,
    Conjunction,
    Disjunction,
    ExactValue,
    OneOf,
    Predicate,
    Range,
    ValueConstraint,
)
from repro.discovery.result import DiscoveryResult, DiscoveryStats
from repro.errors import ReproError, WireFormatError

__all__ = [
    "API_VERSION",
    "RemoteDiscoveryResult",
    "request_to_wire",
    "request_from_wire",
    "response_to_wire",
    "response_from_wire",
    "spec_to_wire",
    "spec_from_wire",
    "dumps",
    "loads",
]

#: Major version of the wire format.  Readers reject anything else: a v1
#: endpoint cannot know whether a field added in v2 is safe to ignore.
API_VERSION = 1

_REQUEST_KIND = "discovery_request"
_RESPONSE_KIND = "discovery_response"

_RESPONSE_STATUSES = ("ok", "timeout", "cancelled", "error")

_STATS_FIELDS = {field.name for field in dataclasses.fields(DiscoveryStats)}


# ----------------------------------------------------------------------
# Strict-mapping helpers
# ----------------------------------------------------------------------
def _require_mapping(payload: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise WireFormatError(
            f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_fields(
    payload: Mapping[str, Any],
    what: str,
    required: Sequence[str],
    optional: Sequence[str] = (),
) -> None:
    missing = [key for key in required if key not in payload]
    if missing:
        raise WireFormatError(f"{what} is missing field(s) {missing}")
    allowed = set(required) | set(optional)
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise WireFormatError(
            f"{what} carries unknown field(s) {unknown}; "
            "v1 messages are strict — remove or fix them"
        )


def _check_version(payload: Mapping[str, Any], what: str) -> None:
    version = payload.get("api_version")
    if version != API_VERSION:
        raise WireFormatError(
            f"{what} declares api_version {version!r}; this build speaks "
            f"version {API_VERSION} only"
        )


# ----------------------------------------------------------------------
# Value constraints
# ----------------------------------------------------------------------
def value_constraint_to_wire(constraint: ValueConstraint) -> dict:
    """Encode one cell constraint as a typed JSON object."""
    if isinstance(constraint, ExactValue):
        return {"type": "exact", "value": constraint.value}
    if isinstance(constraint, OneOf):
        return {"type": "one_of", "values": list(constraint.values)}
    if isinstance(constraint, Range):
        return {
            "type": "range",
            "low": constraint.low,
            "high": constraint.high,
            "low_inclusive": constraint.low_inclusive,
            "high_inclusive": constraint.high_inclusive,
        }
    if isinstance(constraint, Predicate):
        return {"type": "predicate", "op": constraint.op,
                "constant": constraint.constant}
    if isinstance(constraint, Conjunction):
        return {"type": "and",
                "parts": [value_constraint_to_wire(part)
                          for part in constraint.parts]}
    if isinstance(constraint, Disjunction):
        return {"type": "or",
                "parts": [value_constraint_to_wire(part)
                          for part in constraint.parts]}
    if isinstance(constraint, AnyValue):
        return {"type": "any"}
    raise WireFormatError(
        f"value constraint {type(constraint).__name__} has no wire encoding"
    )


def value_constraint_from_wire(payload: Any) -> ValueConstraint:
    """Decode one cell constraint from its typed JSON object."""
    payload = _require_mapping(payload, "a value constraint")
    kind = payload.get("type")
    try:
        if kind == "exact":
            _check_fields(payload, "an 'exact' constraint", ["type", "value"])
            return ExactValue(payload["value"])
        if kind == "one_of":
            _check_fields(payload, "a 'one_of' constraint", ["type", "values"])
            return OneOf(list(payload["values"]))
        if kind == "range":
            _check_fields(
                payload, "a 'range' constraint", ["type"],
                ["low", "high", "low_inclusive", "high_inclusive"],
            )
            return Range(
                low=payload.get("low"),
                high=payload.get("high"),
                low_inclusive=bool(payload.get("low_inclusive", True)),
                high_inclusive=bool(payload.get("high_inclusive", True)),
            )
        if kind == "predicate":
            _check_fields(payload, "a 'predicate' constraint",
                          ["type", "op", "constant"])
            return Predicate(payload["op"], payload["constant"])
        if kind in ("and", "or"):
            _check_fields(payload, f"an {kind!r} constraint", ["type", "parts"])
            parts = [value_constraint_from_wire(part)
                     for part in payload["parts"]]
            return Conjunction(parts) if kind == "and" else Disjunction(parts)
        if kind == "any":
            _check_fields(payload, "an 'any' constraint", ["type"])
            return AnyValue()
    except WireFormatError:
        raise
    except ReproError as exc:
        raise WireFormatError(
            f"invalid {kind!r} value constraint: {exc}"
        ) from exc
    raise WireFormatError(f"unknown value constraint type {kind!r}")


# ----------------------------------------------------------------------
# Metadata constraints
# ----------------------------------------------------------------------
def metadata_constraint_to_wire(constraint: MetadataConstraint) -> dict:
    """Encode one column-level constraint as a typed JSON object."""
    if isinstance(constraint, MetadataPredicate):
        constant = constraint.constant
        if not isinstance(constant, (str, int, float, bool, type(None))):
            constant = str(getattr(constant, "value", constant))
        return {
            "type": "predicate",
            "field": constraint.field.value,
            "op": constraint.op,
            "constant": constant,
        }
    if isinstance(constraint, MetadataConjunction):
        return {"type": "and",
                "parts": [metadata_constraint_to_wire(part)
                          for part in constraint.parts]}
    if isinstance(constraint, MetadataDisjunction):
        return {"type": "or",
                "parts": [metadata_constraint_to_wire(part)
                          for part in constraint.parts]}
    raise WireFormatError(
        f"metadata constraint {type(constraint).__name__} has no wire "
        "encoding (user-defined constraints carry arbitrary callables "
        "and cannot cross the service boundary)"
    )


def metadata_constraint_from_wire(payload: Any) -> MetadataConstraint:
    """Decode one column-level constraint from its typed JSON object."""
    payload = _require_mapping(payload, "a metadata constraint")
    kind = payload.get("type")
    try:
        if kind == "predicate":
            _check_fields(payload, "a metadata predicate",
                          ["type", "field", "op", "constant"])
            field = MetadataField.from_name(str(payload["field"]))
            return MetadataPredicate(field, payload["op"], payload["constant"])
        if kind in ("and", "or"):
            _check_fields(payload, f"a metadata {kind!r} constraint",
                          ["type", "parts"])
            parts = [metadata_constraint_from_wire(part)
                     for part in payload["parts"]]
            if kind == "and":
                return MetadataConjunction(parts)
            return MetadataDisjunction(parts)
    except WireFormatError:
        raise
    except ReproError as exc:
        raise WireFormatError(
            f"invalid {kind!r} metadata constraint: {exc}"
        ) from exc
    raise WireFormatError(f"unknown metadata constraint type {kind!r}")


# ----------------------------------------------------------------------
# Mapping specifications
# ----------------------------------------------------------------------
def spec_to_wire(spec: MappingSpec) -> dict:
    """Encode a :class:`MappingSpec` as a JSON object."""
    return {
        "columns": spec.num_columns,
        "samples": [
            [
                None if cell is None else value_constraint_to_wire(cell)
                for cell in sample.cells
            ]
            for sample in spec.samples
        ],
        "metadata": {
            str(position): metadata_constraint_to_wire(constraint)
            for position, constraint in sorted(spec.metadata.items())
        },
    }


def spec_from_wire(payload: Any) -> MappingSpec:
    """Decode a :class:`MappingSpec` from its JSON object."""
    payload = _require_mapping(payload, "a mapping spec")
    _check_fields(payload, "a mapping spec", ["columns"],
                  ["samples", "metadata"])
    try:
        num_columns = int(payload["columns"])
    except (TypeError, ValueError) as exc:
        raise WireFormatError(
            f"a mapping spec's 'columns' must be an integer, "
            f"got {payload['columns']!r}"
        ) from exc
    try:
        spec = MappingSpec(num_columns)
        for row in payload.get("samples") or ():
            cells = [
                None if cell is None else value_constraint_from_wire(cell)
                for cell in row
            ]
            spec.add_sample(SampleConstraint(cells))
        metadata = _require_mapping(payload.get("metadata") or {},
                                    "a mapping spec's 'metadata'")
        for position, constraint in metadata.items():
            try:
                index = int(position)
            except (TypeError, ValueError) as exc:
                raise WireFormatError(
                    f"metadata position {position!r} is not an integer"
                ) from exc
            spec.set_metadata(index, metadata_constraint_from_wire(constraint))
    except WireFormatError:
        raise
    except ReproError as exc:
        raise WireFormatError(f"invalid mapping spec: {exc}") from exc
    return spec


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
def request_to_wire(request) -> dict:
    """Encode a :class:`~repro.service.DiscoveryRequest` as a JSON object."""
    payload: dict[str, Any] = {
        "api_version": API_VERSION,
        "kind": _REQUEST_KIND,
        "database": request.database,
        "spec": spec_to_wire(request.spec),
    }
    if request.scheduler is not None:
        payload["scheduler"] = request.scheduler
    if request.deadline_s is not None:
        payload["deadline_s"] = request.deadline_s
    if request.request_id is not None:
        payload["request_id"] = request.request_id
    return payload


def request_from_wire(payload: Any):
    """Decode a :class:`~repro.service.DiscoveryRequest` from a JSON object."""
    from repro.service.service import DiscoveryRequest

    payload = _require_mapping(payload, "a discovery request")
    _check_version(payload, "a discovery request")
    _check_fields(
        payload, "a discovery request",
        ["api_version", "kind", "database", "spec"],
        ["scheduler", "deadline_s", "request_id"],
    )
    if payload["kind"] != _REQUEST_KIND:
        raise WireFormatError(
            f"expected kind {_REQUEST_KIND!r}, got {payload['kind']!r}"
        )
    database = payload["database"]
    if not isinstance(database, str) or not database:
        raise WireFormatError("a discovery request's 'database' must be a "
                              "non-empty string")
    deadline_s = payload.get("deadline_s")
    if deadline_s is not None:
        try:
            deadline_s = float(deadline_s)
        except (TypeError, ValueError) as exc:
            raise WireFormatError(
                f"a discovery request's 'deadline_s' must be a number, "
                f"got {payload['deadline_s']!r}"
            ) from exc
    return DiscoveryRequest(
        database=database,
        spec=spec_from_wire(payload["spec"]),
        scheduler=payload.get("scheduler"),
        deadline_s=deadline_s,
        request_id=payload.get("request_id"),
    )


# ----------------------------------------------------------------------
# Results and responses
# ----------------------------------------------------------------------
class RemoteDiscoveryResult(DiscoveryResult):
    """A discovery result decoded from the wire.

    Carries the rendered SQL strings and the full stats of the round that
    ran on the other side of the boundary; the live
    :class:`~repro.query.ProjectJoinQuery` objects stay there, so
    ``queries`` is empty while ``sql()``, ``num_queries``, ``is_empty``
    and ``stats`` behave exactly like the original result's.
    """

    def __init__(self, sql_strings: Sequence[str], stats: DiscoveryStats):
        super().__init__(stats=stats)
        self._sql = [str(sql) for sql in sql_strings]

    @property
    def num_queries(self) -> int:
        return len(self._sql)

    @property
    def is_empty(self) -> bool:
        return not self._sql

    def sql(self) -> list[str]:
        return list(self._sql)

    def describe(self) -> str:
        lines = [
            f"{self.num_queries} satisfying schema mapping "
            f"quer{'y' if self.num_queries == 1 else 'ies'} "
            f"({self.stats.validations} filter validations, "
            f"{self.stats.elapsed_seconds:.2f}s"
            f"{', TIMED OUT' if self.timed_out else ''})",
        ]
        for index, sql in enumerate(self._sql, start=1):
            lines.append(f"  [{index}] {sql}")
        return "\n".join(lines)


def stats_to_wire(stats: DiscoveryStats) -> dict:
    """Encode every :class:`DiscoveryStats` field (lossless round trip)."""
    return {field.name: getattr(stats, field.name)
            for field in dataclasses.fields(DiscoveryStats)}


def stats_from_wire(payload: Any) -> DiscoveryStats:
    """Decode a :class:`DiscoveryStats`; unknown counter names are an error."""
    payload = _require_mapping(payload, "discovery stats")
    unknown = sorted(set(payload) - _STATS_FIELDS)
    if unknown:
        raise WireFormatError(f"discovery stats carry unknown field(s) {unknown}")
    return DiscoveryStats(**payload)


def result_to_wire(result: Optional[DiscoveryResult]) -> Optional[dict]:
    """Encode a result as its serving-boundary view (SQL + stats)."""
    if result is None:
        return None
    return {"sql": result.sql(), "stats": stats_to_wire(result.stats)}


def result_from_wire(payload: Any) -> Optional[DiscoveryResult]:
    """Decode a result into a :class:`RemoteDiscoveryResult`."""
    if payload is None:
        return None
    payload = _require_mapping(payload, "a discovery result")
    _check_fields(payload, "a discovery result", ["sql", "stats"])
    sql = payload["sql"]
    if not isinstance(sql, Sequence) or isinstance(sql, (str, bytes)):
        raise WireFormatError("a discovery result's 'sql' must be a list")
    return RemoteDiscoveryResult(sql, stats_from_wire(payload["stats"]))


def response_to_wire(response) -> dict:
    """Encode a :class:`~repro.service.DiscoveryResponse` as a JSON object."""
    return {
        "api_version": API_VERSION,
        "kind": _RESPONSE_KIND,
        "request_id": response.request_id,
        "database": response.database,
        "status": response.status,
        "result": result_to_wire(response.result),
        "error": response.error,
        "queued_seconds": response.queued_seconds,
        "execution_seconds": response.execution_seconds,
    }


def response_from_wire(payload: Any):
    """Decode a :class:`~repro.service.DiscoveryResponse` from a JSON object."""
    from repro.service.service import DiscoveryResponse

    payload = _require_mapping(payload, "a discovery response")
    _check_version(payload, "a discovery response")
    _check_fields(
        payload, "a discovery response",
        ["api_version", "kind", "request_id", "database", "status"],
        ["result", "error", "queued_seconds", "execution_seconds"],
    )
    if payload["kind"] != _RESPONSE_KIND:
        raise WireFormatError(
            f"expected kind {_RESPONSE_KIND!r}, got {payload['kind']!r}"
        )
    status = payload["status"]
    if status not in _RESPONSE_STATUSES:
        raise WireFormatError(
            f"unknown response status {status!r}; "
            f"expected one of {_RESPONSE_STATUSES}"
        )
    return DiscoveryResponse(
        request_id=str(payload["request_id"]),
        database=str(payload["database"]),
        status=status,
        result=result_from_wire(payload.get("result")),
        error=payload.get("error"),
        queued_seconds=float(payload.get("queued_seconds") or 0.0),
        execution_seconds=float(payload.get("execution_seconds") or 0.0),
    )


# ----------------------------------------------------------------------
# JSON text helpers
# ----------------------------------------------------------------------
def dumps(payload: Mapping[str, Any]) -> str:
    """Serialize a wire object to compact JSON text."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def loads(text: str) -> Any:
    """Parse JSON text, folding syntax errors into :class:`WireFormatError`."""
    try:
        return json.loads(text)
    except (TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed wire JSON: {exc}") from exc
