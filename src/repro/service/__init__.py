"""The serving layer: shared preprocessing artifacts + a concurrent front door.

This package separates Prism's two lifecycles:

* **per-database preprocessing** — expensive, immutable once built, shared:
  :class:`ArtifactStore` builds, caches and optionally disk-persists
  :class:`ArtifactBundle` objects keyed by
  :class:`ArtifactKey` ``(database, schema_version, data_version)``;
* **per-request discovery** — cheap, isolated, concurrent:
  :class:`DiscoveryService` runs rounds on a thread pool or across
  process shards (:mod:`repro.service.shards`), each on a fresh
  :class:`~repro.discovery.engine.Prism` engine layered over a shared
  bundle, with a bounded queue, deadlines, cancellation and metrics.
  Requests and responses are wire-serializable v1 messages
  (:mod:`repro.service.wire`).

Importing the public classes from this package still works but is
deprecated: the stable import point is :mod:`repro.api` (or the
top-level :mod:`repro` package).  The implementation submodules —
``repro.service.service``, ``repro.service.artifacts``,
``repro.service.wire``, ``repro.service.shards``,
``repro.service.workload`` — remain importable without warnings.
"""

from importlib import import_module as _import_module
from warnings import warn as _warn

# Old public path → (implementation module, attribute).  Resolved lazily
# by __getattr__ (PEP 562) so that touching any one name does not import
# the whole serving layer — and so each use warns at its call site.
_EXPORTS = {
    "ArtifactBundle": "repro.service.artifacts",
    "ArtifactKey": "repro.service.artifacts",
    "ArtifactStore": "repro.service.artifacts",
    "ArtifactStoreStats": "repro.service.artifacts",
    "DiscoveryRequest": "repro.service.service",
    "DiscoveryResponse": "repro.service.service",
    "DiscoveryService": "repro.service.service",
    "DiscoveryTicket": "repro.service.service",
    "ServiceMetrics": "repro.service.service",
    "demo_requests": "repro.service.workload",
    "request_from_dict": "repro.service.workload",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.service' has no attribute {name!r}"
        )
    _warn(
        f"importing {name} from 'repro.service' is deprecated; "
        "import it from 'repro.api' (or the top-level 'repro' package)",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(_import_module(module_name), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))
