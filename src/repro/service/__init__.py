"""The serving layer: shared preprocessing artifacts + a concurrent front door.

This package separates Prism's two lifecycles:

* **per-database preprocessing** — expensive, immutable once built, shared:
  :class:`ArtifactStore` builds, caches and optionally disk-persists
  :class:`ArtifactBundle` objects keyed by
  :class:`ArtifactKey` ``(database, schema_version, data_version)``;
* **per-request discovery** — cheap, isolated, concurrent:
  :class:`DiscoveryService` runs rounds on a worker pool, each on a fresh
  :class:`~repro.discovery.engine.Prism` engine layered over a shared
  bundle, with a bounded queue, deadlines, cancellation and metrics.
"""

from repro.service.artifacts import (
    ArtifactBundle,
    ArtifactKey,
    ArtifactStore,
    ArtifactStoreStats,
)
from repro.service.service import (
    DiscoveryRequest,
    DiscoveryResponse,
    DiscoveryService,
    DiscoveryTicket,
    ServiceMetrics,
)
from repro.service.workload import demo_requests, request_from_dict

__all__ = [
    "ArtifactBundle",
    "ArtifactKey",
    "ArtifactStore",
    "ArtifactStoreStats",
    "DiscoveryRequest",
    "DiscoveryResponse",
    "DiscoveryService",
    "DiscoveryTicket",
    "ServiceMetrics",
    "demo_requests",
    "request_from_dict",
]
