"""A multi-session front door for query discovery, thread- or process-sharded.

The demo paper pitches Prism as an *interactive, multi-user* system with a
60-second-per-round budget (§2.2).  :class:`DiscoveryService` is the
serving layer that makes the reproduction behave that way:

* an **executor** runs discovery rounds concurrently, each on a cheap
  per-request :class:`~repro.discovery.engine.Prism` engine layered over
  shared immutable artifacts from an
  :class:`~repro.service.ArtifactStore`.  Two shard modes exist:
  ``shard_mode="thread"`` (a worker-thread pool sharing one in-process
  store — simple, but the GIL serializes the pure-Python discovery work)
  and ``shard_mode="process"`` (long-lived worker *processes*, each
  owning its shard of the databases and warm-starting its artifacts from
  the store's ``persist_dir``; requests cross the process boundary as
  versioned JSON frames — see :mod:`repro.service.wire` and
  :mod:`repro.service.shards`);
* a **bounded request queue** applies backpressure — when it is full,
  :meth:`DiscoveryService.submit` raises
  :class:`~repro.errors.ServiceOverloaded` instead of buffering without
  limit;
* every request carries a **deadline** (``deadline_s``): time spent
  waiting in the queue counts against the round's interactive budget, and
  a request whose budget expired before a worker picked it up is answered
  with a timeout response instead of being run;
* tickets support **cancellation** while queued, and the service keeps
  **metrics** (in-flight/completed counts, latency statistics, artifact
  cache hits vs builds — per shard and merged, in process mode).

The front door is identical in both modes: queueing, cancellation,
deadline accounting and backpressure all happen in the submitting
process, so a request queued to a busy shard can still be cancelled or
expire without any IPC.

Timeouts are structured results, never opaque errors: a round that hits
its budget returns ``status="timeout"`` with the partial
:class:`~repro.discovery.result.DiscoveryResult` attached.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.constraints.spec import MappingSpec
from repro.dataset.database import Database
from repro.discovery.candidates import GenerationLimits
from repro.discovery.engine import DEFAULT_TIME_LIMIT_SECONDS, Prism
from repro.discovery.result import DiscoveryResult, DiscoveryStats
from repro.errors import (
    DiscoveryTimeout,
    ReproError,
    ServiceError,
    ServiceOverloaded,
)
from repro.service import wire as _wire
from repro.service.artifacts import ArtifactStore, ArtifactStoreStats

__all__ = [
    "DiscoveryRequest",
    "DiscoveryResponse",
    "DiscoveryTicket",
    "DiscoveryService",
    "ServiceMetrics",
]

_LATENCY_WINDOW = 1024

_SHARD_MODES = ("thread", "process")


def _deprecated_kwarg(canonical, legacy, canonical_name: str, legacy_name: str):
    """Resolve a renamed keyword: prefer the canonical spelling, accept the
    legacy one for a release with a :class:`DeprecationWarning`."""
    if legacy is not None:
        warnings.warn(
            f"{legacy_name} is deprecated; use {canonical_name}",
            DeprecationWarning,
            stacklevel=3,
        )
        if canonical is None:
            return legacy
    return canonical


def _merge_counts(target: dict, delta: Mapping) -> dict:
    """Fold one nested counter dict into another (ints add, dicts recurse)."""
    for key, value in delta.items():
        if isinstance(value, Mapping):
            _merge_counts(target.setdefault(key, {}), value)
        else:
            target[key] = target.get(key, 0) + value
    return target


@dataclass(frozen=True, init=False)
class DiscoveryRequest:
    """One discovery round as submitted to the service.

    ``deadline_s`` is the round's interactive budget in seconds — queue
    wait counts against it, so it is a *deadline*, not a pure execution
    limit.  The pre-v1 name ``time_limit`` is still accepted as a
    constructor keyword (and readable as a property) for one release,
    with a :class:`DeprecationWarning`.

    Requests are wire-serializable: :meth:`to_json` /
    :meth:`from_json` round-trip through the versioned v1 format of
    :mod:`repro.service.wire`, which is how they cross the process-shard
    IPC boundary and how ``prism serve-batch`` request files travel.
    """

    database: str
    spec: MappingSpec
    scheduler: Optional[str] = None
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None

    def __init__(
        self,
        database: str,
        spec: MappingSpec,
        scheduler: Optional[str] = None,
        deadline_s: Optional[float] = None,
        request_id: Optional[str] = None,
        time_limit: Optional[float] = None,
    ):
        deadline_s = _deprecated_kwarg(
            deadline_s, time_limit,
            "DiscoveryRequest(deadline_s=...)",
            "DiscoveryRequest(time_limit=...)",
        )
        object.__setattr__(self, "database", database)
        object.__setattr__(self, "spec", spec)
        object.__setattr__(self, "scheduler", scheduler)
        object.__setattr__(self, "deadline_s", deadline_s)
        object.__setattr__(self, "request_id", request_id)

    @property
    def time_limit(self) -> Optional[float]:
        """Deprecated alias for :attr:`deadline_s`."""
        warnings.warn(
            "DiscoveryRequest.time_limit is deprecated; use deadline_s",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.deadline_s

    def to_json(self) -> str:
        """This request as a versioned v1 wire message (JSON text)."""
        return _wire.dumps(_wire.request_to_wire(self))

    @classmethod
    def from_json(cls, text: str) -> "DiscoveryRequest":
        """Decode a request from v1 wire JSON.

        Raises:
            WireFormatError: the payload is not valid v1 — wrong
                ``api_version``, missing fields, or unknown fields.
        """
        return _wire.request_from_wire(_wire.loads(text))


@dataclass
class DiscoveryResponse:
    """The structured outcome of one request.

    ``status`` is one of ``ok``, ``timeout``, ``cancelled`` or ``error``.
    A ``timeout`` response still carries the partial result (whatever
    queries were confirmed before the budget ran out) plus its stats.

    Responses decoded from the wire (:meth:`from_json`, and everything a
    process shard returns) carry a
    :class:`~repro.service.wire.RemoteDiscoveryResult`: same ``sql()``,
    ``num_queries`` and ``stats``, but the live query objects stayed on
    the side that ran the round.
    """

    request_id: str
    database: str
    status: str
    result: Optional[DiscoveryResult] = None
    error: Optional[str] = None
    queued_seconds: float = 0.0
    execution_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the round ran to completion within its budget."""
        return self.status == "ok"

    @property
    def num_queries(self) -> int:
        """Number of (possibly partial) discovered queries."""
        return self.result.num_queries if self.result is not None else 0

    def to_json(self) -> str:
        """This response as a versioned v1 wire message (JSON text)."""
        return _wire.dumps(_wire.response_to_wire(self))

    @classmethod
    def from_json(cls, text: str) -> "DiscoveryResponse":
        """Decode a response from v1 wire JSON.

        Raises:
            WireFormatError: the payload is not valid v1 — wrong
                ``api_version``, missing fields, or unknown fields.
        """
        return _wire.response_from_wire(_wire.loads(text))


class DiscoveryTicket:
    """Future-like handle for a submitted request."""

    def __init__(self, request: DiscoveryRequest):
        self.request = request
        self.submitted_at = time.monotonic()
        self._done = threading.Event()
        self._response: Optional[DiscoveryResponse] = None
        self._cancelled = False
        self._started = False
        self._lock = threading.Lock()

    def cancel(self) -> bool:
        """Cancel the request if no worker has started it yet.

        Returns ``True`` when the cancellation took effect.  A cancelled
        ticket resolves to a ``status="cancelled"`` response.
        """
        with self._lock:
            if self._started or self._done.is_set():
                return False
            self._cancelled = True
            return True

    def done(self) -> bool:
        """Whether a response is available."""
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> DiscoveryResponse:
        """Block until the response is available and return it."""
        if not self._done.is_set() and not self._done.wait(timeout):
            raise ServiceError(
                f"request {self.request.request_id or '?'} did not complete "
                f"within {timeout} seconds"
            )
        assert self._response is not None
        return self._response

    # -- worker-side hooks ---------------------------------------------
    def _try_start(self) -> bool:
        with self._lock:
            if self._cancelled:
                return False
            self._started = True
            return True

    def _resolve(self, response: DiscoveryResponse) -> None:
        self._response = response
        self._done.set()


@dataclass
class ServiceMetrics:
    """A point-in-time snapshot of service health."""

    submitted: int = 0
    completed: int = 0
    ok: int = 0
    timeouts: int = 0
    errors: int = 0
    cancelled: int = 0
    rejected: int = 0
    in_flight: int = 0
    queue_depth: int = 0
    latency_count: int = 0
    latency_mean_seconds: float = 0.0
    latency_min_seconds: float = 0.0
    latency_max_seconds: float = 0.0
    latency_p50_seconds: float = 0.0
    latency_p95_seconds: float = 0.0
    #: Batched validation passes across all completed rounds, and the
    #: filter outcomes those batches decided beyond the scheduled filter
    #: (see :class:`~repro.discovery.validation.ValidationStats`).
    validation_batches: int = 0
    batched_outcomes: int = 0
    #: Sketch-layer counters across all completed rounds: probe rows the
    #: Bloom pre-filter rejected before any join work, and planner
    #: estimates answered from HLL/histogram sketches instead of raw
    #: counts (see :class:`~repro.query.executor.ExecutionStats`).
    bloom_rejections: int = 0
    sketch_estimates_used: int = 0
    artifacts: dict = field(default_factory=dict)
    #: Process mode only: per-shard breakdown — ``{shard_id: {"served": n,
    #: "artifacts": {...}}}``.  ``artifacts`` above is then the
    #: element-wise sum of the shard counters, so totals always equal the
    #: sum over shards.  Empty in thread mode.
    shards: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict view used by the CLI and reports."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "ok": self.ok,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "in_flight": self.in_flight,
            "queue_depth": self.queue_depth,
            "latency_count": self.latency_count,
            "latency_mean_seconds": self.latency_mean_seconds,
            "latency_min_seconds": self.latency_min_seconds,
            "latency_max_seconds": self.latency_max_seconds,
            "latency_p50_seconds": self.latency_p50_seconds,
            "latency_p95_seconds": self.latency_p95_seconds,
            "validation_batches": self.validation_batches,
            "batched_outcomes": self.batched_outcomes,
            "bloom_rejections": self.bloom_rejections,
            "sketch_estimates_used": self.sketch_estimates_used,
            "artifacts": dict(self.artifacts),
            "shards": {key: dict(value) for key, value in self.shards.items()},
        }


class _TicketQueue:
    """A bounded queue whose entries are routable to a subset of workers.

    Thread mode enqueues with ``owners=None`` (any worker may serve the
    ticket) and this degenerates to a plain bounded FIFO.  Process mode
    enqueues with the owner set from the
    :class:`~repro.service.shards.ShardAssignment`, and ``get(worker_id)``
    hands each worker the oldest ticket it is allowed to serve — so a
    partitioned database never lands on a shard that does not hold its
    artifacts, while replicated databases are work-stolen by whichever
    owning shard frees up first.

    ``close()`` wakes every waiting worker; workers drain the tickets
    still routable to them and then receive ``None``.
    """

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def put(
        self,
        ticket: DiscoveryTicket,
        owners: Optional[frozenset],
        block: bool = False,
        timeout: Optional[float] = None,
    ) -> None:
        """Enqueue; raises :class:`queue.Full` on an exhausted bound."""
        with self._not_full:
            if len(self._items) >= self.maxsize:
                if not block:
                    raise queue.Full
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                while len(self._items) >= self.maxsize:
                    remaining = (
                        None if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise queue.Full
                    self._not_full.wait(remaining)
            self._items.append((ticket, owners))
            # notify_all, not notify: with routing, the one woken worker
            # might not be an owner of the new ticket.
            self._not_empty.notify_all()

    def get(self, worker_id: int) -> Optional[DiscoveryTicket]:
        """The oldest ticket routable to ``worker_id``; ``None`` after close."""
        with self._not_empty:
            while True:
                for index, (ticket, owners) in enumerate(self._items):
                    if owners is None or worker_id in owners:
                        del self._items[index]
                        self._not_full.notify()
                        return ticket
                if self._closed:
                    return None
                self._not_empty.wait()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def qsize(self) -> int:
        with self._lock:
            return len(self._items)


def _execute_round(
    resolve_database: Callable[[str], Database],
    store: ArtifactStore,
    request: DiscoveryRequest,
    request_id: str,
    budget: float,
    queued_seconds: float,
    default_scheduler: str,
    limits: Optional[GenerationLimits],
    refresh_artifacts: bool,
) -> DiscoveryResponse:
    """Run one round to a structured response.

    This is the single execution path shared by the thread-mode workers,
    :meth:`DiscoveryService.execute`, and the shard worker processes
    (:mod:`repro.service.shards`) — which is what makes the golden
    thread-vs-process equality hold: both modes run exactly this code on
    the same artifacts.
    """
    started = time.monotonic()
    try:
        database = resolve_database(request.database)
        if refresh_artifacts:
            bundle = store.refresh(database)
        else:
            bundle = store.get(database)
        engine = Prism.from_artifacts(
            bundle,
            scheduler=request.scheduler or default_scheduler,
            time_limit=budget,
            limits=limits,
        )
        result = engine.discover(request.spec, raise_on_timeout=True)
    except DiscoveryTimeout as exc:
        partial = exc.partial_result
        if partial is None:
            stats = DiscoveryStats(
                scheduler_name=request.scheduler or default_scheduler
            )
            stats.timed_out = True
            partial = DiscoveryResult(stats=stats)
        return DiscoveryResponse(
            request_id=request_id,
            database=request.database,
            status="timeout",
            result=partial,
            error=str(exc),
            queued_seconds=queued_seconds,
            execution_seconds=time.monotonic() - started,
        )
    except ReproError as exc:
        return DiscoveryResponse(
            request_id=request_id,
            database=request.database,
            status="error",
            error=f"{type(exc).__name__}: {exc}",
            queued_seconds=queued_seconds,
            execution_seconds=time.monotonic() - started,
        )
    return DiscoveryResponse(
        request_id=request_id,
        database=request.database,
        status="ok",
        result=result,
        queued_seconds=queued_seconds,
        execution_seconds=time.monotonic() - started,
    )


class DiscoveryService:
    """Concurrent discovery over a fixed set of named databases.

    Example:
        >>> from repro import (Column, Database, DataType, DiscoveryRequest,
        ...                    DiscoveryService, MappingSpec,
        ...                    parse_value_constraint)
        >>> db = Database("docs")
        >>> city = db.create_table("City", [
        ...     Column("Name", DataType.TEXT),
        ...     Column("Population", DataType.INT),
        ... ])
        >>> city.insert_many([("Springfield", 117_000), ("Shelbyville", 42_000)])
        2
        >>> spec = MappingSpec(num_columns=1)
        >>> _ = spec.add_sample_cells([parse_value_constraint("Springfield")])
        >>> with DiscoveryService(databases={"docs": db}, workers=1) as svc:
        ...     response = svc.submit(DiscoveryRequest("docs", spec)).result()
        >>> response.status
        'ok'
        >>> response.result.sql()
        ['SELECT City.Name FROM City']
    """

    def __init__(
        self,
        databases: Optional[Mapping[str, Database]] = None,
        loaders: Optional[Mapping[str, Callable[[], Database]]] = None,
        store: Optional[ArtifactStore] = None,
        workers: Optional[int] = None,
        queue_size: int = 64,
        default_scheduler: str = "bayesian",
        default_deadline_s: Optional[float] = None,
        limits: Optional[GenerationLimits] = None,
        refresh_artifacts: bool = False,
        shard_mode: str = "thread",
        start_method: Optional[str] = None,
        replication: Optional[int] = None,
        num_workers: Optional[int] = None,
        default_time_limit: Optional[float] = None,
    ):
        """Create a service.

        Args:
            databases: mapping of name → loaded database.
            loaders: mapping of name → zero-argument loader, called lazily
                on a database's first request.  When both ``databases``
                and ``loaders`` are omitted, the bundled demo databases
                (mondial, imdb, nba) are served.  In
                ``shard_mode="process"`` with the ``spawn`` start method,
                loaders must be picklable (module-level functions).
            store: the artifact store to share; a private one is created
                when omitted.  Passing a store with a ``persist_dir``
                makes preprocessing survive restarts — and, in process
                mode, lets every shard warm-start from the same
                directory instead of rebuilding.
            workers: executor width — worker threads in thread mode,
                worker *processes* (shards) in process mode.  Default 4.
            queue_size: bound on queued (not yet running) requests; a full
                queue rejects submissions with
                :class:`~repro.errors.ServiceOverloaded`.
            default_scheduler: scheduling policy for requests that do not
                name one.
            default_deadline_s: per-round budget (seconds) for requests
                that do not carry their own.
            limits: candidate-generation bounds applied to every request.
            refresh_artifacts: resolve bundles through
                :meth:`ArtifactStore.refresh` instead of
                :meth:`ArtifactStore.get`, so a database that grew by
                appends between requests is caught up by folding the
                delta into its cached bundle rather than preprocessing
                from scratch (see ``docs/incremental.md``).  The flag
                propagates to every shard process.
            shard_mode: ``"thread"`` (default) or ``"process"``.  Process
                mode shards the databases across long-lived worker
                processes and ships requests to them as versioned JSON
                frames, sidestepping the GIL for the pure-Python
                discovery work.
            start_method: multiprocessing start method for process mode
                (``"fork"``, ``"spawn"``, ``"forkserver"``; platform
                default when ``None``).  Ignored in thread mode.
            replication: in process mode, how many shards hold each
                database.  ``None`` (default) replicates every database
                on every shard — maximum throughput, since any shard can
                serve any request.  Lower values partition the databases
                (memory-bounded sharding); requests are then routed only
                to owning shards.
            num_workers: deprecated alias for ``workers``.
            default_time_limit: deprecated alias for ``default_deadline_s``.
        """
        workers = _deprecated_kwarg(
            workers, num_workers, "workers", "num_workers"
        )
        default_deadline_s = _deprecated_kwarg(
            default_deadline_s, default_time_limit,
            "default_deadline_s", "default_time_limit",
        )
        if workers is None:
            workers = 4
        if default_deadline_s is None:
            default_deadline_s = DEFAULT_TIME_LIMIT_SECONDS
        if workers < 1:
            raise ServiceError("workers must be at least 1")
        if queue_size < 1:
            raise ServiceError("queue_size must be at least 1")
        if default_deadline_s <= 0:
            raise ServiceError("default_deadline_s must be positive")
        if shard_mode not in _SHARD_MODES:
            raise ServiceError(
                f"unknown shard_mode {shard_mode!r}; expected one of "
                f"{_SHARD_MODES}"
            )
        if databases is None and loaders is None:
            from repro.datasets import _LOADERS

            loaders = dict(_LOADERS)
        self._databases: dict[str, Database] = dict(databases or {})
        self._loaders: dict[str, Callable[[], Database]] = dict(loaders or {})
        self._database_lock = threading.Lock()
        self.store = store if store is not None else ArtifactStore()
        self._workers_count = workers
        self._queue = _TicketQueue(maxsize=queue_size)
        self._default_scheduler = default_scheduler
        self._default_deadline_s = default_deadline_s
        self._limits = limits
        self._refresh_artifacts = refresh_artifacts
        self._shard_mode = shard_mode
        self._start_method = start_method
        self._replication = replication
        self._assignment = None
        self._pool = None
        self._workers: list[threading.Thread] = []
        self._started = False
        self._shutdown = False
        self._state_lock = threading.Lock()
        # submit() registers itself here before enqueueing; shutdown() waits
        # for the count to hit zero before closing the queue, so a ticket
        # can never land in a queue no worker will drain.
        self._pending_submits = 0
        self._no_pending_submits = threading.Condition(self._state_lock)
        self._metrics_lock = threading.Lock()
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "ok": 0,
            "timeout": 0,
            "error": 0,
            "cancelled": 0,
            "rejected": 0,
        }
        self._in_flight = 0
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._latency_count = 0
        self._latency_total = 0.0
        self._latency_min = float("inf")
        self._latency_max = 0.0
        self._validation_batches = 0
        self._batched_outcomes = 0
        self._bloom_rejections = 0
        self._sketch_estimates_used = 0
        self._shard_served: dict[int, int] = {}
        self._shard_artifacts: dict[int, dict] = {}
        self._request_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def shard_mode(self) -> str:
        """``"thread"`` or ``"process"``."""
        return self._shard_mode

    def start(self) -> "DiscoveryService":
        """Start the executor (idempotent).

        In process mode this spawns the shard processes, each of which
        warm-starts its owned databases' artifacts (from the store's
        ``persist_dir`` when available) before serving.
        """
        with self._state_lock:
            if self._shutdown:
                raise ServiceError("the service has been shut down")
            if self._started:
                return self
            if self._shard_mode == "process":
                from repro.service.shards import (
                    ShardAssignment,
                    ShardProcessPool,
                )

                self._assignment = ShardAssignment(
                    self.available_databases(),
                    self._workers_count,
                    replication=self._replication,
                )
                self._pool = ShardProcessPool(
                    assignment=self._assignment,
                    databases=self._databases,
                    loaders=self._loaders,
                    persist_dir=self.store.persist_dir,
                    default_scheduler=self._default_scheduler,
                    limits=self._limits,
                    refresh_artifacts=self._refresh_artifacts,
                    start_method=self._start_method,
                )
                self._pool.start()
            for worker_index in range(self._workers_count):
                worker = threading.Thread(
                    target=self._worker_loop,
                    args=(worker_index,),
                    name=f"discovery-worker-{worker_index}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
            self._started = True
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting requests and (optionally) join the workers.

        Queued requests are drained and executed before the workers exit;
        shard processes are then shut down cleanly.
        """
        with self._state_lock:
            if self._shutdown:
                return
            self._shutdown = True
            started = self._started
            while self._pending_submits:
                self._no_pending_submits.wait()
        if started:
            self._queue.close()
            if wait:
                for worker in self._workers:
                    worker.join()
            if self._pool is not None:
                self._pool.shutdown(wait=wait)

    def __enter__(self) -> "DiscoveryService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Databases
    # ------------------------------------------------------------------
    def available_databases(self) -> list[str]:
        """Names this service can answer requests for."""
        return sorted(set(self._databases) | set(self._loaders))

    def database(self, name: str) -> Database:
        """The loaded database registered under ``name`` (loads lazily)."""
        with self._database_lock:
            loaded = self._databases.get(name)
            if loaded is not None:
                return loaded
            loader = self._loaders.get(name)
            if loader is None:
                raise ServiceError(
                    f"unknown database {name!r}; available: "
                    f"{self.available_databases()}"
                )
            loaded = loader()
            self._databases[name] = loaded
            return loaded

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        request: DiscoveryRequest,
        block: bool = False,
        timeout: Optional[float] = None,
    ) -> DiscoveryTicket:
        """Queue a request; returns a ticket resolving to its response.

        Args:
            request: the round to run.
            block: wait for queue space instead of rejecting immediately.
            timeout: bound on the wait when ``block`` is true.

        Raises:
            ServiceOverloaded: the queue is full (backpressure).
            ServiceError: the service is shut down, not started, or the
                request is invalid.
        """
        if self._shutdown:
            raise ServiceError("the service has been shut down")
        if not self._started:
            self.start()
        if request.database not in self._databases and (
            request.database not in self._loaders
        ):
            raise ServiceError(
                f"unknown database {request.database!r}; available: "
                f"{self.available_databases()}"
            )
        budget = (
            request.deadline_s
            if request.deadline_s is not None
            else self._default_deadline_s
        )
        if budget <= 0:
            raise ServiceError("a request's deadline_s must be positive")
        if request.request_id is None:
            request = DiscoveryRequest(
                database=request.database,
                spec=request.spec,
                scheduler=request.scheduler,
                deadline_s=request.deadline_s,
                request_id=f"req-{next(self._request_ids)}",
            )
        owners = None
        if self._assignment is not None:
            owners = self._assignment.owners(request.database)
        ticket = DiscoveryTicket(request)
        with self._state_lock:
            if self._shutdown:
                raise ServiceError("the service has been shut down")
            self._pending_submits += 1
        try:
            try:
                self._queue.put(ticket, owners, block=block, timeout=timeout)
            except queue.Full:
                with self._metrics_lock:
                    self._counters["rejected"] += 1
                raise ServiceOverloaded(
                    f"request queue is full ({self._queue.maxsize} pending); "
                    "retry later"
                ) from None
        finally:
            with self._state_lock:
                self._pending_submits -= 1
                if not self._pending_submits:
                    self._no_pending_submits.notify_all()
        with self._metrics_lock:
            self._counters["submitted"] += 1
        return ticket

    def run_batch(
        self,
        requests: Sequence[DiscoveryRequest],
        block: bool = True,
    ) -> list[DiscoveryResponse]:
        """Submit many requests and wait for all their responses.

        With ``block=True`` (the default) submission waits for queue space,
        so batches larger than the queue bound drain through backpressure
        instead of being rejected.
        """
        tickets = [self.submit(request, block=block) for request in requests]
        return [ticket.result() for ticket in tickets]

    def execute(self, request: DiscoveryRequest) -> DiscoveryResponse:
        """Run one request synchronously on the calling thread.

        This is the single-threaded baseline path (no queue, no workers,
        no shards — even in process mode it runs in the calling process);
        it still shares the artifact store, so repeated calls warm-start.
        """
        request_id = request.request_id or f"req-{next(self._request_ids)}"
        budget = (
            request.deadline_s
            if request.deadline_s is not None
            else self._default_deadline_s
        )
        return _execute_round(
            self.database,
            self.store,
            request,
            request_id,
            budget,
            queued_seconds=0.0,
            default_scheduler=self._default_scheduler,
            limits=self._limits,
            refresh_artifacts=self._refresh_artifacts,
        )

    def refresh_shards(self) -> dict:
        """Propagate an artifact refresh to the executor.

        In thread mode this refreshes the shared store's bundle for every
        currently loaded database.  In process mode every shard is asked
        to refresh the bundles it owns (each against its own copy of the
        data).  Returns ``{shard_id: [database, ...]}`` of refreshed
        names (thread mode reports shard ``-1``).
        """
        if self._pool is not None:
            refreshed = {}
            for shard_id, info in self._pool.refresh().items():
                delta = info.get("artifacts_delta")
                if delta:
                    with self._metrics_lock:
                        _merge_counts(
                            self._shard_artifacts.setdefault(shard_id, {}),
                            delta,
                        )
                refreshed[shard_id] = info.get("databases", [])
            return refreshed
        with self._database_lock:
            loaded = list(self._databases.values())
        refreshed = []
        for database in loaded:
            self.store.refresh(database)
            refreshed.append(database.name)
        return {-1: refreshed}

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def metrics(self) -> ServiceMetrics:
        """A consistent snapshot of counters and latency statistics.

        In process mode, ``shards`` breaks the artifact counters down per
        shard (accumulated from the deltas each worker process reports
        with its responses) and ``artifacts`` is their element-wise sum —
        the merged totals always equal the sum over shards.
        """
        with self._metrics_lock:
            ordered = sorted(self._latencies)
            snapshot = ServiceMetrics(
                submitted=self._counters["submitted"],
                completed=self._counters["completed"],
                ok=self._counters["ok"],
                timeouts=self._counters["timeout"],
                errors=self._counters["error"],
                cancelled=self._counters["cancelled"],
                rejected=self._counters["rejected"],
                in_flight=self._in_flight,
                queue_depth=self._queue.qsize(),
                latency_count=self._latency_count,
                validation_batches=self._validation_batches,
                batched_outcomes=self._batched_outcomes,
                bloom_rejections=self._bloom_rejections,
                sketch_estimates_used=self._sketch_estimates_used,
            )
            if self._latency_count:
                snapshot.latency_mean_seconds = (
                    self._latency_total / self._latency_count
                )
                snapshot.latency_min_seconds = self._latency_min
                snapshot.latency_max_seconds = self._latency_max
            if ordered:
                snapshot.latency_p50_seconds = ordered[len(ordered) // 2]
                snapshot.latency_p95_seconds = ordered[
                    min(len(ordered) - 1, int(len(ordered) * 0.95))
                ]
            shard_ids = sorted(set(self._shard_served) | set(self._shard_artifacts))
            snapshot.shards = {
                shard_id: {
                    "served": self._shard_served.get(shard_id, 0),
                    "artifacts": _merge_counts(
                        {}, self._shard_artifacts.get(shard_id, {})
                    ),
                }
                for shard_id in shard_ids
            }
        if self._shard_mode == "process":
            merged = ArtifactStoreStats().as_dict()
            for shard in snapshot.shards.values():
                _merge_counts(merged, shard["artifacts"])
            snapshot.artifacts = merged
        else:
            snapshot.artifacts = self.store.stats.as_dict()
        return snapshot

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------
    def _worker_loop(self, worker_id: int) -> None:
        while True:
            ticket = self._queue.get(worker_id)
            if ticket is None:
                return
            self._serve_ticket(ticket, worker_id)

    def _serve_ticket(self, ticket: DiscoveryTicket, worker_id: int) -> None:
        request = ticket.request
        request_id = request.request_id or "?"
        queued_seconds = time.monotonic() - ticket.submitted_at
        if not ticket._try_start():
            response = DiscoveryResponse(
                request_id=request_id,
                database=request.database,
                status="cancelled",
                queued_seconds=queued_seconds,
            )
            self._finish(ticket, response)
            return
        budget = (
            request.deadline_s
            if request.deadline_s is not None
            else self._default_deadline_s
        )
        remaining = budget - queued_seconds
        if remaining <= 0:
            # The round's interactive budget was consumed by queueing:
            # answer with a structured timeout instead of running.  In
            # process mode this check runs *before* dispatch, so an
            # expired request never costs a round of IPC.
            stats = DiscoveryStats(
                scheduler_name=request.scheduler or self._default_scheduler
            )
            stats.timed_out = True
            stats.elapsed_seconds = queued_seconds
            response = DiscoveryResponse(
                request_id=request_id,
                database=request.database,
                status="timeout",
                result=DiscoveryResult(stats=stats),
                error="time budget exhausted while queued",
                queued_seconds=queued_seconds,
            )
            self._finish(ticket, response)
            return
        with self._metrics_lock:
            self._in_flight += 1
        try:
            if self._pool is not None:
                response, delta = self._pool.run(
                    worker_id, request, remaining, queued_seconds, request_id
                )
                self._note_shard_result(worker_id, delta)
            else:
                response = self._run(
                    request, request_id, remaining, queued_seconds
                )
        finally:
            with self._metrics_lock:
                self._in_flight -= 1
        self._finish(ticket, response)

    def _run(
        self,
        request: DiscoveryRequest,
        request_id: str,
        budget: float,
        queued_seconds: float,
    ) -> DiscoveryResponse:
        return _execute_round(
            self.database,
            self.store,
            request,
            request_id,
            budget,
            queued_seconds,
            default_scheduler=self._default_scheduler,
            limits=self._limits,
            refresh_artifacts=self._refresh_artifacts,
        )

    def _note_shard_result(self, shard_id: int, delta: Optional[dict]) -> None:
        with self._metrics_lock:
            self._shard_served[shard_id] = (
                self._shard_served.get(shard_id, 0) + 1
            )
            if delta:
                _merge_counts(
                    self._shard_artifacts.setdefault(shard_id, {}), delta
                )

    def _finish(self, ticket: DiscoveryTicket, response: DiscoveryResponse) -> None:
        latency = time.monotonic() - ticket.submitted_at
        with self._metrics_lock:
            self._counters["completed"] += 1
            self._counters[response.status] = (
                self._counters.get(response.status, 0) + 1
            )
            self._latencies.append(latency)
            self._latency_count += 1
            self._latency_total += latency
            self._latency_min = min(self._latency_min, latency)
            self._latency_max = max(self._latency_max, latency)
            if response.result is not None:
                self._validation_batches += response.result.stats.validation_batches
                self._batched_outcomes += response.result.stats.batched_outcomes
                self._bloom_rejections += response.result.stats.bloom_rejections
                self._sketch_estimates_used += (
                    response.result.stats.sketch_estimates_used
                )
        ticket._resolve(response)
