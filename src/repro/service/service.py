"""A thread-safe, multi-session front door for query discovery.

The demo paper pitches Prism as an *interactive, multi-user* system with a
60-second-per-round budget (§2.2).  :class:`DiscoveryService` is the
serving layer that makes the reproduction behave that way:

* a **worker pool** executes discovery rounds concurrently, each on a
  cheap per-request :class:`~repro.discovery.engine.Prism` engine layered
  over shared immutable artifacts from an
  :class:`~repro.service.ArtifactStore`;
* a **bounded request queue** applies backpressure — when it is full,
  :meth:`DiscoveryService.submit` raises
  :class:`~repro.errors.ServiceOverloaded` instead of buffering without
  limit;
* every request carries a **deadline**: time spent waiting in the queue
  counts against the round's interactive budget, and a request whose
  budget expired before a worker picked it up is answered with a timeout
  response instead of being run;
* tickets support **cancellation** while queued, and the service keeps
  **metrics** (in-flight/completed counts, latency statistics, artifact
  cache hits vs builds).

Timeouts are structured results, never opaque errors: a round that hits
its budget returns ``status="timeout"`` with the partial
:class:`~repro.discovery.result.DiscoveryResult` attached.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.constraints.spec import MappingSpec
from repro.dataset.database import Database
from repro.discovery.candidates import GenerationLimits
from repro.discovery.engine import DEFAULT_TIME_LIMIT_SECONDS, Prism
from repro.discovery.result import DiscoveryResult, DiscoveryStats
from repro.errors import (
    DiscoveryTimeout,
    ReproError,
    ServiceError,
    ServiceOverloaded,
)
from repro.service.artifacts import ArtifactStore

__all__ = [
    "DiscoveryRequest",
    "DiscoveryResponse",
    "DiscoveryTicket",
    "DiscoveryService",
    "ServiceMetrics",
]

_LATENCY_WINDOW = 1024


@dataclass(frozen=True)
class DiscoveryRequest:
    """One discovery round as submitted to the service."""

    database: str
    spec: MappingSpec
    scheduler: Optional[str] = None
    time_limit: Optional[float] = None
    request_id: Optional[str] = None


@dataclass
class DiscoveryResponse:
    """The structured outcome of one request.

    ``status`` is one of ``ok``, ``timeout``, ``cancelled`` or ``error``.
    A ``timeout`` response still carries the partial result (whatever
    queries were confirmed before the budget ran out) plus its stats.
    """

    request_id: str
    database: str
    status: str
    result: Optional[DiscoveryResult] = None
    error: Optional[str] = None
    queued_seconds: float = 0.0
    execution_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the round ran to completion within its budget."""
        return self.status == "ok"

    @property
    def num_queries(self) -> int:
        """Number of (possibly partial) discovered queries."""
        return self.result.num_queries if self.result is not None else 0


class DiscoveryTicket:
    """Future-like handle for a submitted request."""

    def __init__(self, request: DiscoveryRequest):
        self.request = request
        self.submitted_at = time.monotonic()
        self._done = threading.Event()
        self._response: Optional[DiscoveryResponse] = None
        self._cancelled = False
        self._started = False
        self._lock = threading.Lock()

    def cancel(self) -> bool:
        """Cancel the request if no worker has started it yet.

        Returns ``True`` when the cancellation took effect.  A cancelled
        ticket resolves to a ``status="cancelled"`` response.
        """
        with self._lock:
            if self._started or self._done.is_set():
                return False
            self._cancelled = True
            return True

    def done(self) -> bool:
        """Whether a response is available."""
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> DiscoveryResponse:
        """Block until the response is available and return it."""
        if not self._done.is_set() and not self._done.wait(timeout):
            raise ServiceError(
                f"request {self.request.request_id or '?'} did not complete "
                f"within {timeout} seconds"
            )
        assert self._response is not None
        return self._response

    # -- worker-side hooks ---------------------------------------------
    def _try_start(self) -> bool:
        with self._lock:
            if self._cancelled:
                return False
            self._started = True
            return True

    def _resolve(self, response: DiscoveryResponse) -> None:
        self._response = response
        self._done.set()


@dataclass
class ServiceMetrics:
    """A point-in-time snapshot of service health."""

    submitted: int = 0
    completed: int = 0
    ok: int = 0
    timeouts: int = 0
    errors: int = 0
    cancelled: int = 0
    rejected: int = 0
    in_flight: int = 0
    queue_depth: int = 0
    latency_count: int = 0
    latency_mean_seconds: float = 0.0
    latency_min_seconds: float = 0.0
    latency_max_seconds: float = 0.0
    latency_p50_seconds: float = 0.0
    latency_p95_seconds: float = 0.0
    #: Batched validation passes across all completed rounds, and the
    #: filter outcomes those batches decided beyond the scheduled filter
    #: (see :class:`~repro.discovery.validation.ValidationStats`).
    validation_batches: int = 0
    batched_outcomes: int = 0
    artifacts: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-dict view used by the CLI and reports."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "ok": self.ok,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "in_flight": self.in_flight,
            "queue_depth": self.queue_depth,
            "latency_count": self.latency_count,
            "latency_mean_seconds": self.latency_mean_seconds,
            "latency_min_seconds": self.latency_min_seconds,
            "latency_max_seconds": self.latency_max_seconds,
            "latency_p50_seconds": self.latency_p50_seconds,
            "latency_p95_seconds": self.latency_p95_seconds,
            "validation_batches": self.validation_batches,
            "batched_outcomes": self.batched_outcomes,
            "artifacts": dict(self.artifacts),
        }


class DiscoveryService:
    """Concurrent discovery over a fixed set of named databases.

    Example:
        >>> from repro import (Column, Database, DataType, DiscoveryRequest,
        ...                    DiscoveryService, MappingSpec,
        ...                    parse_value_constraint)
        >>> db = Database("docs")
        >>> city = db.create_table("City", [
        ...     Column("Name", DataType.TEXT),
        ...     Column("Population", DataType.INT),
        ... ])
        >>> city.insert_many([("Springfield", 117_000), ("Shelbyville", 42_000)])
        2
        >>> spec = MappingSpec(num_columns=1)
        >>> _ = spec.add_sample_cells([parse_value_constraint("Springfield")])
        >>> with DiscoveryService(databases={"docs": db}, num_workers=1) as svc:
        ...     response = svc.submit(DiscoveryRequest("docs", spec)).result()
        >>> response.status
        'ok'
        >>> response.result.sql()
        ['SELECT City.Name FROM City']
    """

    def __init__(
        self,
        databases: Optional[Mapping[str, Database]] = None,
        loaders: Optional[Mapping[str, Callable[[], Database]]] = None,
        store: Optional[ArtifactStore] = None,
        num_workers: int = 4,
        queue_size: int = 64,
        default_scheduler: str = "bayesian",
        default_time_limit: float = DEFAULT_TIME_LIMIT_SECONDS,
        limits: Optional[GenerationLimits] = None,
        refresh_artifacts: bool = False,
    ):
        """Create a service.

        Args:
            databases: mapping of name → loaded database.
            loaders: mapping of name → zero-argument loader, called lazily
                on a database's first request.  When both ``databases``
                and ``loaders`` are omitted, the bundled demo databases
                (mondial, imdb, nba) are served.
            store: the artifact store to share; a private one is created
                when omitted.  Passing a store with a ``persist_dir``
                makes preprocessing survive restarts.
            num_workers: worker threads executing requests.
            queue_size: bound on queued (not yet running) requests; a full
                queue rejects submissions with
                :class:`~repro.errors.ServiceOverloaded`.
            default_scheduler: scheduling policy for requests that do not
                name one.
            default_time_limit: per-round budget (seconds) for requests
                that do not carry their own.
            limits: candidate-generation bounds applied to every request.
            refresh_artifacts: resolve bundles through
                :meth:`ArtifactStore.refresh` instead of
                :meth:`ArtifactStore.get`, so a database that grew by
                appends between requests is caught up by folding the
                delta into its cached bundle rather than preprocessing
                from scratch (see ``docs/incremental.md``).
        """
        if num_workers < 1:
            raise ServiceError("num_workers must be at least 1")
        if queue_size < 1:
            raise ServiceError("queue_size must be at least 1")
        if default_time_limit <= 0:
            raise ServiceError("default_time_limit must be positive")
        if databases is None and loaders is None:
            from repro.datasets import _LOADERS

            loaders = dict(_LOADERS)
        self._databases: dict[str, Database] = dict(databases or {})
        self._loaders: dict[str, Callable[[], Database]] = dict(loaders or {})
        self._database_lock = threading.Lock()
        self.store = store if store is not None else ArtifactStore()
        self._num_workers = num_workers
        self._queue: "queue.Queue[Optional[DiscoveryTicket]]" = queue.Queue(
            maxsize=queue_size
        )
        self._default_scheduler = default_scheduler
        self._default_time_limit = default_time_limit
        self._limits = limits
        self._refresh_artifacts = refresh_artifacts
        self._workers: list[threading.Thread] = []
        self._started = False
        self._shutdown = False
        self._state_lock = threading.Lock()
        # submit() registers itself here before enqueueing; shutdown() waits
        # for the count to hit zero before pushing the worker-stop sentinels,
        # so a ticket can never land in the queue behind a sentinel (where
        # no worker would ever resolve it).
        self._pending_submits = 0
        self._no_pending_submits = threading.Condition(self._state_lock)
        self._metrics_lock = threading.Lock()
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "ok": 0,
            "timeout": 0,
            "error": 0,
            "cancelled": 0,
            "rejected": 0,
        }
        self._in_flight = 0
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._latency_count = 0
        self._latency_total = 0.0
        self._latency_min = float("inf")
        self._latency_max = 0.0
        self._validation_batches = 0
        self._batched_outcomes = 0
        self._request_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "DiscoveryService":
        """Start the worker pool (idempotent)."""
        with self._state_lock:
            if self._shutdown:
                raise ServiceError("the service has been shut down")
            if self._started:
                return self
            for worker_index in range(self._num_workers):
                worker = threading.Thread(
                    target=self._worker_loop,
                    name=f"discovery-worker-{worker_index}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
            self._started = True
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting requests and (optionally) join the workers.

        Queued requests are drained and executed before the workers exit.
        """
        with self._state_lock:
            if self._shutdown:
                return
            self._shutdown = True
            started = self._started
            while self._pending_submits:
                self._no_pending_submits.wait()
        if started:
            for _ in self._workers:
                self._queue.put(None)
            if wait:
                for worker in self._workers:
                    worker.join()

    def __enter__(self) -> "DiscoveryService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Databases
    # ------------------------------------------------------------------
    def available_databases(self) -> list[str]:
        """Names this service can answer requests for."""
        return sorted(set(self._databases) | set(self._loaders))

    def database(self, name: str) -> Database:
        """The loaded database registered under ``name`` (loads lazily)."""
        with self._database_lock:
            loaded = self._databases.get(name)
            if loaded is not None:
                return loaded
            loader = self._loaders.get(name)
            if loader is None:
                raise ServiceError(
                    f"unknown database {name!r}; available: "
                    f"{self.available_databases()}"
                )
            loaded = loader()
            self._databases[name] = loaded
            return loaded

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        request: DiscoveryRequest,
        block: bool = False,
        timeout: Optional[float] = None,
    ) -> DiscoveryTicket:
        """Queue a request; returns a ticket resolving to its response.

        Args:
            request: the round to run.
            block: wait for queue space instead of rejecting immediately.
            timeout: bound on the wait when ``block`` is true.

        Raises:
            ServiceOverloaded: the queue is full (backpressure).
            ServiceError: the service is shut down, not started, or the
                request is invalid.
        """
        if self._shutdown:
            raise ServiceError("the service has been shut down")
        if not self._started:
            self.start()
        if request.database not in self._databases and (
            request.database not in self._loaders
        ):
            raise ServiceError(
                f"unknown database {request.database!r}; available: "
                f"{self.available_databases()}"
            )
        budget = (
            request.time_limit
            if request.time_limit is not None
            else self._default_time_limit
        )
        if budget <= 0:
            raise ServiceError("a request's time_limit must be positive")
        if request.request_id is None:
            request = DiscoveryRequest(
                database=request.database,
                spec=request.spec,
                scheduler=request.scheduler,
                time_limit=request.time_limit,
                request_id=f"req-{next(self._request_ids)}",
            )
        ticket = DiscoveryTicket(request)
        with self._state_lock:
            if self._shutdown:
                raise ServiceError("the service has been shut down")
            self._pending_submits += 1
        try:
            try:
                self._queue.put(ticket, block=block, timeout=timeout)
            except queue.Full:
                with self._metrics_lock:
                    self._counters["rejected"] += 1
                raise ServiceOverloaded(
                    f"request queue is full ({self._queue.maxsize} pending); "
                    "retry later"
                ) from None
        finally:
            with self._state_lock:
                self._pending_submits -= 1
                if not self._pending_submits:
                    self._no_pending_submits.notify_all()
        with self._metrics_lock:
            self._counters["submitted"] += 1
        return ticket

    def run_batch(
        self,
        requests: Sequence[DiscoveryRequest],
        block: bool = True,
    ) -> list[DiscoveryResponse]:
        """Submit many requests and wait for all their responses.

        With ``block=True`` (the default) submission waits for queue space,
        so batches larger than the queue bound drain through backpressure
        instead of being rejected.
        """
        tickets = [self.submit(request, block=block) for request in requests]
        return [ticket.result() for ticket in tickets]

    def execute(self, request: DiscoveryRequest) -> DiscoveryResponse:
        """Run one request synchronously on the calling thread.

        This is the single-threaded baseline path (no queue, no workers);
        it still shares the artifact store, so repeated calls warm-start.
        """
        request_id = request.request_id or f"req-{next(self._request_ids)}"
        budget = (
            request.time_limit
            if request.time_limit is not None
            else self._default_time_limit
        )
        return self._run(request, request_id, budget, queued_seconds=0.0)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def metrics(self) -> ServiceMetrics:
        """A consistent snapshot of counters and latency statistics."""
        with self._metrics_lock:
            ordered = sorted(self._latencies)
            snapshot = ServiceMetrics(
                submitted=self._counters["submitted"],
                completed=self._counters["completed"],
                ok=self._counters["ok"],
                timeouts=self._counters["timeout"],
                errors=self._counters["error"],
                cancelled=self._counters["cancelled"],
                rejected=self._counters["rejected"],
                in_flight=self._in_flight,
                queue_depth=self._queue.qsize(),
                latency_count=self._latency_count,
                validation_batches=self._validation_batches,
                batched_outcomes=self._batched_outcomes,
            )
            if self._latency_count:
                snapshot.latency_mean_seconds = (
                    self._latency_total / self._latency_count
                )
                snapshot.latency_min_seconds = self._latency_min
                snapshot.latency_max_seconds = self._latency_max
            if ordered:
                snapshot.latency_p50_seconds = ordered[len(ordered) // 2]
                snapshot.latency_p95_seconds = ordered[
                    min(len(ordered) - 1, int(len(ordered) * 0.95))
                ]
        snapshot.artifacts = self.store.stats.as_dict()
        return snapshot

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            ticket = self._queue.get()
            if ticket is None:
                self._queue.task_done()
                return
            try:
                self._serve_ticket(ticket)
            finally:
                self._queue.task_done()

    def _serve_ticket(self, ticket: DiscoveryTicket) -> None:
        request = ticket.request
        request_id = request.request_id or "?"
        queued_seconds = time.monotonic() - ticket.submitted_at
        if not ticket._try_start():
            response = DiscoveryResponse(
                request_id=request_id,
                database=request.database,
                status="cancelled",
                queued_seconds=queued_seconds,
            )
            self._finish(ticket, response)
            return
        budget = (
            request.time_limit
            if request.time_limit is not None
            else self._default_time_limit
        )
        remaining = budget - queued_seconds
        if remaining <= 0:
            # The round's interactive budget was consumed by queueing:
            # answer with a structured timeout instead of running.
            stats = DiscoveryStats(
                scheduler_name=request.scheduler or self._default_scheduler
            )
            stats.timed_out = True
            stats.elapsed_seconds = queued_seconds
            response = DiscoveryResponse(
                request_id=request_id,
                database=request.database,
                status="timeout",
                result=DiscoveryResult(stats=stats),
                error="time budget exhausted while queued",
                queued_seconds=queued_seconds,
            )
            self._finish(ticket, response)
            return
        with self._metrics_lock:
            self._in_flight += 1
        try:
            response = self._run(request, request_id, remaining, queued_seconds)
        finally:
            with self._metrics_lock:
                self._in_flight -= 1
        self._finish(ticket, response)

    def _run(
        self,
        request: DiscoveryRequest,
        request_id: str,
        budget: float,
        queued_seconds: float,
    ) -> DiscoveryResponse:
        started = time.monotonic()
        try:
            database = self.database(request.database)
            if self._refresh_artifacts:
                bundle = self.store.refresh(database)
            else:
                bundle = self.store.get(database)
            engine = Prism.from_artifacts(
                bundle,
                scheduler=request.scheduler or self._default_scheduler,
                time_limit=budget,
                limits=self._limits,
            )
            result = engine.discover(request.spec, raise_on_timeout=True)
        except DiscoveryTimeout as exc:
            partial = exc.partial_result
            if partial is None:
                stats = DiscoveryStats(
                    scheduler_name=request.scheduler or self._default_scheduler
                )
                stats.timed_out = True
                partial = DiscoveryResult(stats=stats)
            return DiscoveryResponse(
                request_id=request_id,
                database=request.database,
                status="timeout",
                result=partial,
                error=str(exc),
                queued_seconds=queued_seconds,
                execution_seconds=time.monotonic() - started,
            )
        except ReproError as exc:
            return DiscoveryResponse(
                request_id=request_id,
                database=request.database,
                status="error",
                error=f"{type(exc).__name__}: {exc}",
                queued_seconds=queued_seconds,
                execution_seconds=time.monotonic() - started,
            )
        return DiscoveryResponse(
            request_id=request_id,
            database=request.database,
            status="ok",
            result=result,
            queued_seconds=queued_seconds,
            execution_seconds=time.monotonic() - started,
        )

    def _finish(self, ticket: DiscoveryTicket, response: DiscoveryResponse) -> None:
        latency = time.monotonic() - ticket.submitted_at
        with self._metrics_lock:
            self._counters["completed"] += 1
            self._counters[response.status] = (
                self._counters.get(response.status, 0) + 1
            )
            self._latencies.append(latency)
            self._latency_count += 1
            self._latency_total += latency
            self._latency_min = min(self._latency_min, latency)
            self._latency_max = max(self._latency_max, latency)
            if response.result is not None:
                self._validation_batches += response.result.stats.validation_batches
                self._batched_outcomes += response.result.stats.batched_outcomes
        ticket._resolve(response)
