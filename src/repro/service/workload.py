"""Request builders for the service layer.

Two producers of :class:`~repro.service.DiscoveryRequest` objects:

* :func:`request_from_dict` — deserialize one request from the plain-dict
  shape used by ``prism serve-batch --requests FILE.json``;
* :func:`demo_requests` — a built-in mixed workload over the bundled demo
  databases (the §3 Lake Tahoe walk-through on Mondial plus equivalent
  rounds on IMDB and NBA), used by the CLI's default batch, the examples
  and the benchmarks.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.constraints.parser import parse_metadata_constraint, parse_value_constraint
from repro.constraints.sample import SampleConstraint
from repro.constraints.spec import MappingSpec
from repro.errors import ServiceError
from repro.service.service import DiscoveryRequest

__all__ = ["request_from_dict", "demo_requests", "DEMO_REQUEST_TEMPLATES"]

# One representative multiresolution round per bundled database:
# (database, num_columns, sample cell texts, {column: metadata text}).
DEMO_REQUEST_TEMPLATES: tuple[tuple[str, int, tuple[str, ...], dict[int, str]], ...] = (
    (
        "mondial",
        3,
        ("California || Nevada", "Lake Tahoe", ""),
        {2: "DataType=='decimal' AND MinValue>=0"},
    ),
    (
        "imdb",
        2,
        ("The Dark Knight", "Christian Bale"),
        {},
    ),
    (
        "nba",
        2,
        ("Lakers", "LeBron James"),
        {},
    ),
)


def _spec_from_texts(
    num_columns: int,
    sample_rows: Iterable[Sequence[str]],
    metadata: Mapping[int, str],
) -> MappingSpec:
    spec = MappingSpec(num_columns)
    for cells in sample_rows:
        if len(cells) > num_columns:
            raise ServiceError(
                f"sample row has {len(cells)} cells but the target schema "
                f"has {num_columns} columns"
            )
        constraints = [
            parse_value_constraint(text) if text and text.strip() else None
            for text in cells
        ]
        constraints.extend([None] * (num_columns - len(constraints)))
        if any(cell is not None for cell in constraints):
            spec.add_sample(SampleConstraint(constraints))
    for column, text in metadata.items():
        constraint = parse_metadata_constraint(text)
        if constraint is not None:
            spec.set_metadata(int(column), constraint)
    return spec


def request_from_dict(entry: Mapping[str, Any]) -> DiscoveryRequest:
    """Build a request from its JSON-friendly dict form.

    Expected keys: ``database`` (str), ``columns`` (int), ``samples``
    (list of rows, each a list of cell texts; empty text means an
    unconstrained cell), ``metadata`` (mapping of column index → text),
    and optionally ``scheduler``, ``deadline_s`` and ``request_id``.
    The pre-v1 key ``time_limit`` is still honored as an alias for
    ``deadline_s``.
    """
    try:
        database = entry["database"]
        num_columns = int(entry["columns"])
    except KeyError as exc:
        raise ServiceError(f"request entry is missing key {exc}") from exc
    spec = _spec_from_texts(
        num_columns,
        entry.get("samples", ()),
        {int(key): value for key, value in (entry.get("metadata") or {}).items()},
    )
    deadline_s = entry.get("deadline_s")
    if deadline_s is None:
        deadline_s = entry.get("time_limit")
    return DiscoveryRequest(
        database=database,
        spec=spec,
        scheduler=entry.get("scheduler"),
        deadline_s=float(deadline_s) if deadline_s is not None else None,
        request_id=entry.get("request_id"),
    )


def demo_requests(
    databases: Optional[Sequence[str]] = None,
    rounds: int = 1,
    scheduler: Optional[str] = None,
    deadline_s: Optional[float] = None,
    time_limit: Optional[float] = None,
) -> list[DiscoveryRequest]:
    """The built-in mixed workload: one round per template per repetition.

    Args:
        databases: restrict to these database names (all templates when
            omitted).
        rounds: how many times to repeat the template set.
        scheduler: scheduling policy stamped on every request.
        deadline_s: per-round budget stamped on every request.
        time_limit: deprecated alias for ``deadline_s``.
    """
    if time_limit is not None:
        import warnings

        warnings.warn(
            "demo_requests(time_limit=...) is deprecated; use deadline_s",
            DeprecationWarning,
            stacklevel=2,
        )
        if deadline_s is None:
            deadline_s = time_limit
    if rounds < 1:
        raise ServiceError("rounds must be at least 1")
    wanted = set(databases) if databases is not None else None
    templates = [
        template
        for template in DEMO_REQUEST_TEMPLATES
        if wanted is None or template[0] in wanted
    ]
    if not templates:
        raise ServiceError(
            f"no demo workload for databases {sorted(wanted or set())}; "
            f"available: {sorted(t[0] for t in DEMO_REQUEST_TEMPLATES)}"
        )
    requests = []
    for round_index in range(rounds):
        for database, num_columns, cells, metadata in templates:
            spec = _spec_from_texts(num_columns, [cells], metadata)
            requests.append(
                DiscoveryRequest(
                    database=database,
                    spec=spec,
                    scheduler=scheduler,
                    deadline_s=deadline_s,
                    request_id=f"demo-{database}-{round_index + 1}",
                )
            )
    return requests
