"""Process-shard executor: long-lived worker processes behind JSON pipes.

Discovery is pure Python, so the thread pool of
:class:`~repro.service.DiscoveryService` cannot scale past one core — the
GIL serializes every round.  This module is the ``shard_mode="process"``
backend: each **shard** is a long-lived worker process that owns a subset
of the databases (per :class:`ShardAssignment`), builds or warm-starts
its preprocessing artifacts locally, and serves rounds end to end.

Design rules, in decreasing order of importance:

* **Requests cross the boundary, artifacts never do.**  Databases and
  loaders ship *once*, at process spawn; per-request traffic is
  exclusively versioned JSON frames (:mod:`repro.service.wire`) over a
  :func:`multiprocessing.Pipe` — one length-prefixed UTF-8 JSON document
  per message, no pickled objects.  The IPC layer is therefore exactly as
  expressive as the public v1 wire format, which keeps the two honest:
  anything the service can serve, a remote client could submit.
* **Warm start from the shared ``persist_dir``.**  Every shard opens its
  own :class:`~repro.service.ArtifactStore` on the same directory as the
  parent's, so bundles persisted by any earlier process are disk-loaded
  instead of rebuilt; a shard without a persist dir preprocesses its
  owned databases at spawn, before serving.
* **Crashes are contained.**  A shard that dies or hangs is killed and
  respawned; the in-flight request is answered with a structured
  ``status="error"`` response, and later requests hit the fresh process.
* **Metrics flow back as deltas.**  Each response carries the shard's
  artifact-counter increments since its previous report; the parent
  accumulates them per shard and merges them in
  :meth:`~repro.service.DiscoveryService.metrics`.

The queueing front door (backpressure, cancellation, deadline-in-queue)
stays entirely in the parent — see
:class:`~repro.service.service._TicketQueue` — so those semantics are
identical across shard modes and cost no IPC.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
from typing import Callable, Mapping, Optional, Sequence

from repro.dataset.database import Database
from repro.discovery.candidates import GenerationLimits
from repro.errors import ReproError, ServiceError, WireFormatError
from repro.service import wire
from repro.service.artifacts import ArtifactStore

__all__ = ["ShardAssignment", "ShardProcessPool"]

#: How long to wait for a shard to warm its artifacts and report ready.
_READY_TIMEOUT_S = 300.0
#: Extra patience beyond a round's budget before declaring a shard hung.
_GRACE_FLOOR_S = 60.0


def _send(conn, payload: Mapping) -> None:
    """Write one JSON frame (the only thing that ever crosses the pipe)."""
    conn.send_bytes(wire.dumps(payload).encode("utf-8"))


def _recv(conn) -> dict:
    """Read one JSON frame; malformed bytes raise ``WireFormatError``."""
    payload = wire.loads(conn.recv_bytes().decode("utf-8"))
    if not isinstance(payload, dict):
        raise WireFormatError("an IPC frame must be a JSON object")
    return payload


def _diff_counts(current: Mapping, previous: Mapping) -> dict:
    """Element-wise ``current - previous`` over nested counter dicts,
    keeping only non-zero entries."""
    delta: dict = {}
    for key, value in current.items():
        if isinstance(value, Mapping):
            nested = _diff_counts(value, previous.get(key) or {})
            if nested:
                delta[key] = nested
        else:
            change = value - (previous.get(key) or 0)
            if change:
                delta[key] = change
    return delta


class ShardAssignment:
    """Which shard processes own which databases.

    With ``replication=None`` (the default) every shard owns every
    database: any shard can serve any request, so the routed queue
    degenerates to work stealing and throughput is maximal.  A smaller
    ``replication`` partitions the databases round-robin across shards —
    each database lives on exactly ``replication`` shards, bounding
    per-process memory at the cost of routing freedom.
    """

    def __init__(
        self,
        databases: Sequence[str],
        num_shards: int,
        replication: Optional[int] = None,
    ):
        if num_shards < 1:
            raise ServiceError("num_shards must be at least 1")
        if replication is None:
            replication = num_shards
        if not 1 <= replication <= num_shards:
            raise ServiceError(
                f"replication must be between 1 and num_shards "
                f"({num_shards}), got {replication}"
            )
        self.num_shards = num_shards
        self.replication = replication
        self._owners: dict[str, frozenset[int]] = {}
        for index, name in enumerate(sorted(set(databases))):
            first = index % num_shards
            self._owners[name] = frozenset(
                (first + offset) % num_shards for offset in range(replication)
            )

    def owners(self, database: str) -> frozenset:
        """The shard ids allowed to serve ``database``."""
        owners = self._owners.get(database)
        if owners is None:
            raise ServiceError(
                f"no shard owns database {database!r}; assigned: "
                f"{sorted(self._owners)}"
            )
        return owners

    def databases_for(self, shard_id: int) -> list[str]:
        """The databases ``shard_id`` owns (sorted)."""
        return sorted(
            name for name, owners in self._owners.items() if shard_id in owners
        )

    def as_dict(self) -> dict:
        """JSON-friendly view (used by the CLI and docs examples)."""
        return {
            "num_shards": self.num_shards,
            "replication": self.replication,
            "owners": {
                name: sorted(owners) for name, owners in self._owners.items()
            },
        }


def _shard_main(
    conn,
    shard_id: int,
    databases: dict,
    loaders: dict,
    persist_dir: Optional[str],
    default_scheduler: str,
    limits: Optional[GenerationLimits],
    refresh_artifacts: bool,
) -> None:
    """Worker-process entry point: warm up, then serve frames until told
    to stop.  Runs in the child; everything it touches is process-local.
    """
    from repro.service.service import DiscoveryResponse, _execute_round

    store = ArtifactStore(persist_dir=persist_dir)
    local: dict[str, Database] = dict(databases)

    def resolve(name: str) -> Database:
        loaded = local.get(name)
        if loaded is not None:
            return loaded
        loader = loaders.get(name)
        if loader is None:
            raise ServiceError(
                f"shard {shard_id} does not own database {name!r}; owned: "
                f"{sorted(set(local) | set(loaders))}"
            )
        loaded = loader()
        local[name] = loaded
        return loaded

    try:
        warmed = []
        for name in sorted(set(local) | set(loaders)):
            store.get(resolve(name))
            warmed.append(name)
        _send(conn, {
            "api_version": wire.API_VERSION,
            "kind": "ready",
            "shard": shard_id,
            "pid": os.getpid(),
            "warmed": warmed,
        })
    except Exception as exc:  # noqa: BLE001 - report, then die visibly
        try:
            _send(conn, {
                "api_version": wire.API_VERSION,
                "kind": "fatal",
                "shard": shard_id,
                "error": f"{type(exc).__name__}: {exc}",
            })
        finally:
            return

    # The warm-up builds/disk-loads stay in ``reported`` = {} so the first
    # response's delta carries them — the parent's merged metrics then
    # account for every build any shard ever did.
    reported: dict = {}

    def stats_delta() -> dict:
        nonlocal reported
        current = store.stats.as_dict()
        delta = _diff_counts(current, reported)
        reported = current
        return delta

    while True:
        try:
            frame = _recv(conn)
        except (EOFError, OSError):
            return
        except WireFormatError as exc:
            _send(conn, {
                "api_version": wire.API_VERSION,
                "kind": "error",
                "error": str(exc),
            })
            continue
        kind = frame.get("kind")
        if kind == "shutdown":
            return
        if kind == "ping":
            _send(conn, {
                "api_version": wire.API_VERSION,
                "kind": "pong",
                "shard": shard_id,
            })
            continue
        if kind == "crash":
            # Test hook: die without cleanup, exactly like a hard fault.
            os._exit(2)
        if kind == "refresh":
            refreshed = []
            for name in sorted(local):
                try:
                    store.refresh(local[name])
                    refreshed.append(name)
                except ReproError:
                    continue
            _send(conn, {
                "api_version": wire.API_VERSION,
                "kind": "refreshed",
                "databases": refreshed,
                "artifacts_delta": stats_delta(),
            })
            continue
        if kind == "run":
            request_id = str(frame.get("request_id") or "?")
            try:
                request = wire.request_from_wire(frame["request"])
                response = _execute_round(
                    resolve,
                    store,
                    request,
                    request_id,
                    float(frame["budget_s"]),
                    float(frame.get("queued_seconds") or 0.0),
                    default_scheduler=default_scheduler,
                    limits=limits,
                    refresh_artifacts=refresh_artifacts,
                )
            except (ReproError, KeyError, TypeError, ValueError) as exc:
                response = DiscoveryResponse(
                    request_id=request_id,
                    database=str(
                        (frame.get("request") or {}).get("database", "?")
                    ),
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
            _send(conn, {
                "api_version": wire.API_VERSION,
                "kind": "response",
                "response": wire.response_to_wire(response),
                "artifacts_delta": stats_delta(),
            })
            continue
        _send(conn, {
            "api_version": wire.API_VERSION,
            "kind": "error",
            "error": f"unknown frame kind {kind!r}",
        })


class _Shard:
    """Parent-side handle for one worker process."""

    def __init__(self, shard_id: int, conn, process):
        self.id = shard_id
        self.conn = conn
        self.process = process
        self.warmed: list[str] = []
        #: Serializes pipe traffic: normally only this shard's dedicated
        #: worker thread talks to it, but refresh/shutdown may come from
        #: other threads.
        self.lock = threading.Lock()


class _ShardHung(Exception):
    """Internal: the shard did not answer within budget plus grace."""


class ShardProcessPool:
    """The parent-side face of the shard processes.

    One :class:`~repro.service.DiscoveryService` worker thread is pinned
    to each shard; :meth:`run` is its blocking round-trip RPC.  The pool
    owns spawn, warm-up handshake, crash detection/respawn and shutdown.
    """

    def __init__(
        self,
        assignment: ShardAssignment,
        databases: Mapping[str, Database],
        loaders: Mapping[str, Callable[[], Database]],
        persist_dir=None,
        default_scheduler: str = "bayesian",
        limits: Optional[GenerationLimits] = None,
        refresh_artifacts: bool = False,
        start_method: Optional[str] = None,
        ready_timeout_s: float = _READY_TIMEOUT_S,
    ):
        self.assignment = assignment
        self._databases = dict(databases)
        self._loaders = dict(loaders)
        self._persist_dir = str(persist_dir) if persist_dir is not None else None
        self._default_scheduler = default_scheduler
        self._limits = limits
        self._refresh_artifacts = refresh_artifacts
        self._ctx = multiprocessing.get_context(start_method)
        self._ready_timeout_s = ready_timeout_s
        self._shards: list[_Shard] = []
        self._respawns = 0
        self._started = False

    @property
    def start_method(self) -> str:
        """The multiprocessing start method actually in use."""
        return self._ctx.get_start_method()

    @property
    def respawns(self) -> int:
        """How many times a crashed/hung shard was replaced."""
        return self._respawns

    def start(self) -> "ShardProcessPool":
        """Spawn every shard and wait for each to finish warming up."""
        if self._started:
            return self
        for shard_id in range(self.assignment.num_shards):
            self._shards.append(self._spawn(shard_id))
        for shard in self._shards:
            self._await_ready(shard)
        self._started = True
        return self

    def _spawn(self, shard_id: int) -> _Shard:
        owned = self.assignment.databases_for(shard_id)
        databases = {
            name: self._databases[name]
            for name in owned
            if name in self._databases
        }
        loaders = {
            name: self._loaders[name]
            for name in owned
            if name in self._loaders and name not in databases
        }
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_main,
            args=(
                child_conn,
                shard_id,
                databases,
                loaders,
                self._persist_dir,
                self._default_scheduler,
                self._limits,
                self._refresh_artifacts,
            ),
            name=f"prism-shard-{shard_id}",
            daemon=True,
        )
        try:
            process.start()
        except Exception as exc:
            raise ServiceError(
                f"could not start shard {shard_id} with the "
                f"{self.start_method!r} start method: {exc}. Under 'spawn' "
                "every database and loader must be picklable — register "
                "module-level loader functions instead of lambdas or "
                "closures."
            ) from exc
        child_conn.close()
        return _Shard(shard_id, parent_conn, process)

    def _await_ready(self, shard: _Shard) -> None:
        deadline = time.monotonic() + self._ready_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not shard.conn.poll(remaining):
                self._kill(shard)
                raise ServiceError(
                    f"shard {shard.id} did not finish warming up within "
                    f"{self._ready_timeout_s:.0f}s"
                )
            try:
                frame = _recv(shard.conn)
            except (EOFError, OSError) as exc:
                self._kill(shard)
                raise ServiceError(
                    f"shard {shard.id} died during warm-up"
                ) from exc
            kind = frame.get("kind")
            if kind == "ready":
                shard.warmed = list(frame.get("warmed") or [])
                return
            if kind == "fatal":
                self._kill(shard)
                raise ServiceError(
                    f"shard {shard.id} failed to warm up: "
                    f"{frame.get('error')}"
                )
            # Anything else during warm-up is stale traffic; keep waiting.

    # ------------------------------------------------------------------
    # RPC
    # ------------------------------------------------------------------
    def run(
        self,
        shard_id: int,
        request,
        budget_s: float,
        queued_seconds: float,
        request_id: str,
    ):
        """Run one round on ``shard_id``; returns ``(response, delta)``.

        Crashes and hangs never propagate: they come back as a
        ``status="error"`` response (after the shard has been respawned),
        with ``delta=None``.
        """
        frame = {
            "api_version": wire.API_VERSION,
            "kind": "run",
            "request": wire.request_to_wire(request),
            "request_id": request_id,
            "budget_s": budget_s,
            "queued_seconds": queued_seconds,
        }
        shard = self._shards[shard_id]
        with shard.lock:
            try:
                _send(shard.conn, frame)
                reply = self._recv_reply(shard, budget_s)
            except (EOFError, OSError, BrokenPipeError):
                self._respawn(shard)
                return self._error_response(
                    request, request_id, queued_seconds,
                    f"shard {shard_id} died while serving the request and "
                    "was respawned; retry",
                ), None
            except _ShardHung:
                self._respawn(shard)
                return self._error_response(
                    request, request_id, queued_seconds,
                    f"shard {shard_id} did not respond within its grace "
                    "period and was respawned; retry",
                ), None
        if reply.get("kind") != "response":
            return self._error_response(
                request, request_id, queued_seconds,
                f"shard {shard_id} answered with unexpected frame "
                f"{reply.get('kind')!r}: {reply.get('error')}",
            ), None
        response = wire.response_from_wire(reply["response"])
        return response, reply.get("artifacts_delta") or {}

    def _recv_reply(self, shard: _Shard, budget_s: float) -> dict:
        # The shard enforces the round budget itself (the engine checks
        # its deadline between work units), so a healthy reply arrives
        # within the budget plus scheduling noise.  The grace period only
        # exists to distinguish "slow" from "gone".
        grace = budget_s + max(_GRACE_FLOOR_S, budget_s)
        deadline = time.monotonic() + grace
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise _ShardHung()
            if shard.conn.poll(min(remaining, 1.0)):
                return _recv(shard.conn)
            if not shard.process.is_alive():
                # Drain anything flushed before death, else report it.
                if shard.conn.poll(0):
                    return _recv(shard.conn)
                raise EOFError()

    @staticmethod
    def _error_response(request, request_id, queued_seconds, message):
        from repro.service.service import DiscoveryResponse

        return DiscoveryResponse(
            request_id=request_id,
            database=request.database,
            status="error",
            error=message,
            queued_seconds=queued_seconds,
        )

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def refresh(self) -> dict:
        """Ask every shard to refresh its owned bundles.

        Returns ``{shard_id: {"databases": [...], "artifacts_delta":
        {...}}}``.  A shard that died is respawned (fresh artifacts count
        as refreshed state) and reports an empty list.
        """
        outcome: dict[int, dict] = {}
        for shard in list(self._shards):
            with shard.lock:
                try:
                    _send(shard.conn, {
                        "api_version": wire.API_VERSION,
                        "kind": "refresh",
                    })
                    reply = self._recv_reply(shard, budget_s=_GRACE_FLOOR_S)
                except (EOFError, OSError, BrokenPipeError, _ShardHung):
                    self._respawn(shard)
                    outcome[shard.id] = {"databases": [], "artifacts_delta": {}}
                    continue
            outcome[shard.id] = {
                "databases": list(reply.get("databases") or []),
                "artifacts_delta": reply.get("artifacts_delta") or {},
            }
        return outcome

    def crash_shard(self, shard_id: int) -> None:
        """Make a shard die abruptly (test hook for the respawn path)."""
        shard = self._shards[shard_id]
        with shard.lock:
            try:
                _send(shard.conn, {
                    "api_version": wire.API_VERSION,
                    "kind": "crash",
                })
            except OSError:
                pass
        shard.process.join(timeout=10.0)

    def shutdown(self, wait: bool = True) -> None:
        """Stop every shard (graceful frame first, then terminate)."""
        for shard in self._shards:
            with shard.lock:
                try:
                    _send(shard.conn, {
                        "api_version": wire.API_VERSION,
                        "kind": "shutdown",
                    })
                except (OSError, ValueError):
                    pass
        for shard in self._shards:
            shard.process.join(timeout=10.0 if wait else 0.2)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=5.0)
            try:
                shard.conn.close()
            except OSError:
                pass
        self._started = False

    def _respawn(self, shard: _Shard) -> None:
        self._kill(shard)
        fresh = self._spawn(shard.id)
        self._await_ready(fresh)
        # The dedicated worker thread looks the shard up per request, so
        # swapping the list entry routes the next round to the new
        # process.
        self._shards[shard.id] = fresh
        self._respawns += 1

    def _kill(self, shard: _Shard) -> None:
        try:
            if shard.process.is_alive():
                shard.process.terminate()
            shard.process.join(timeout=5.0)
        except (OSError, ValueError):
            pass
        try:
            shard.conn.close()
        except OSError:
            pass
