"""Shared, persistable preprocessing-artifact bundles.

The paper trains its models and builds its indexes "a priori for the
source database" (§2.3) — preprocessing is a long-lived, per-database
activity, while each interactive discovery round is cheap.  This module
makes that split explicit:

* :class:`ArtifactBundle` — one immutable set of preprocessing artifacts
  (inverted index, metadata catalog, schema graph, trained Bayesian
  models) for one database state;
* :class:`ArtifactKey` — the bundle's identity:
  ``(database, schema_version, data_version)``.  Any schema or data change
  yields a new key, so stale bundles are never served;
* :class:`ArtifactStore` — a thread-safe build-once cache of bundles,
  optionally persisted to disk so process restarts and sibling processes
  warm-start instead of re-preprocessing.

Bundles are read-only to every consumer
(:class:`~repro.discovery.engine.Prism` engines, the
:class:`~repro.service.DiscoveryService` worker pool): consumers layer
their own mutable state (executor caches, statistics) on top.  The one
writer is :meth:`ArtifactStore.refresh`, which — under the per-database
build lock — upgrades a bundle to a newer database state by folding the
append delta into its artifacts in place instead of rebuilding them
(see ``docs/incremental.md``).
"""

from __future__ import annotations

import pickle
import re
import threading
from collections import Counter
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Union

from repro.bayesian.training import BayesianModelSet, train_models
from repro.dataset.catalog import MetadataCatalog
from repro.dataset.database import Database
from repro.dataset.index import InvertedIndex
from repro.dataset.schema_graph import SchemaGraph
from repro.errors import ArtifactError, ReproError

__all__ = ["ArtifactKey", "ArtifactBundle", "ArtifactStore", "ArtifactStoreStats"]

_PICKLE_PROTOCOL = 4
_UNSAFE_FILENAME = re.compile(r"[^A-Za-z0-9_.-]+")


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one preprocessing bundle.

    Attributes:
        database: the source database's name.
        schema_version: the database's schema version counter.
        data_version: the database's cheap data-change token.
    """

    database: str
    schema_version: int
    data_version: tuple

    @classmethod
    def for_database(cls, database: Database) -> "ArtifactKey":
        """The key describing ``database``'s current state."""
        name, schema_version, data_version = database.artifact_key()
        return cls(name, schema_version, data_version)

    def filename(self) -> str:
        """A filesystem-safe file name for this key's persisted bundle."""
        safe_name = _UNSAFE_FILENAME.sub("_", self.database)
        data_token = "-".join(str(part) for part in self.data_version)
        return f"{safe_name}.s{self.schema_version}.d{data_token}.artifacts.pkl"


@dataclass(frozen=True)
class ArtifactBundle:
    """One database's full preprocessing output, immutable once built.

    The bundle owns the database instance it was built from (for bundles
    loaded from disk that is a private unpickled copy, fully isolated from
    the caller's objects), so serving from a bundle never races with
    mutations of the database the caller passed in.

    ``marks`` records one storage :class:`~repro.storage.TableMark` per
    table, captured at build time; :meth:`ArtifactStore.refresh` compares
    them against the live database to derive the append delta that
    upgrades this bundle in place instead of rebuilding it.
    """

    key: ArtifactKey
    database: Database
    index: InvertedIndex
    catalog: MetadataCatalog
    schema_graph: SchemaGraph
    models: Optional[BayesianModelSet]
    marks: Optional[dict] = None

    @property
    def trained(self) -> bool:
        """Whether the bundle carries trained Bayesian models."""
        return self.models is not None

    def engine(self, **kwargs):
        """Construct a cheap per-request :class:`Prism` over this bundle."""
        from repro.discovery.engine import Prism

        return Prism.from_artifacts(self, **kwargs)


@dataclass
class ArtifactStoreStats:
    """Counters describing how the store satisfied its requests.

    The refresh counters describe the incremental-maintenance path:
    ``refreshes`` counts bundles upgraded in place by folding append
    deltas, ``delta_rows_applied`` the total rows folded that way, and
    ``rebuild_fallbacks`` the :meth:`ArtifactStore.refresh` calls that
    had to fall back to a full rebuild, broken down by cause in
    ``fallback_reasons`` (see ``docs/incremental.md``).
    """

    hits: int = 0
    builds: int = 0
    disk_loads: int = 0
    disk_writes: int = 0
    disk_errors: int = 0
    invalidations: int = 0
    refreshes: int = 0
    delta_rows_applied: int = 0
    rebuild_fallbacks: int = 0
    hits_by_database: Counter = field(default_factory=Counter)
    builds_by_database: Counter = field(default_factory=Counter)
    refreshes_by_database: Counter = field(default_factory=Counter)
    fallback_reasons: Counter = field(default_factory=Counter)

    def as_dict(self) -> dict:
        """Plain-dict snapshot used by service metrics and reports."""
        return {
            "hits": self.hits,
            "builds": self.builds,
            "disk_loads": self.disk_loads,
            "disk_writes": self.disk_writes,
            "disk_errors": self.disk_errors,
            "invalidations": self.invalidations,
            "refreshes": self.refreshes,
            "delta_rows_applied": self.delta_rows_applied,
            "rebuild_fallbacks": self.rebuild_fallbacks,
            "hits_by_database": dict(self.hits_by_database),
            "builds_by_database": dict(self.builds_by_database),
            "refreshes_by_database": dict(self.refreshes_by_database),
            "fallback_reasons": dict(self.fallback_reasons),
        }


class ArtifactStore:
    """Builds, caches and optionally disk-persists preprocessing bundles.

    One store serves any number of concurrent sessions: per-database build
    locks guarantee each distinct ``(database, schema_version,
    data_version)`` state is preprocessed exactly once no matter how many
    requests race for it, and every later request is a cache hit.  With a
    ``persist_dir``, freshly built bundles are pickled to disk and a new
    process (or a restart) warm-starts by loading them instead of
    rebuilding.

    For databases that keep growing, :meth:`refresh` upgrades a cached
    bundle by folding the append delta into it instead of rebuilding —
    see ``docs/incremental.md``.

    Example:
        >>> from repro import ArtifactStore, Column, Database, DataType
        >>> db = Database("docs")
        >>> items = db.create_table("Item", [Column("Name", DataType.TEXT)])
        >>> items.insert_many([("Hammer",), ("Nail",), ("Saw",), ("Vase",)])
        4
        >>> store = ArtifactStore()
        >>> bundle = store.get(db)           # builds index/catalog/models
        >>> store.get(db) is bundle          # unchanged state: cache hit
        True
        >>> items.insert(("Bolt",))          # the append moves the key...
        >>> fresh = store.refresh(db)        # ...folded in incrementally
        >>> (store.stats.builds, store.stats.refreshes)
        (1, 1)
        >>> fresh.key == ArtifactKey.for_database(db)
        True
    """

    def __init__(
        self,
        persist_dir: Optional[Union[str, Path]] = None,
        train_bayesian: bool = True,
        max_delta_fraction: float = 0.25,
    ):
        """Create a store.

        Args:
            persist_dir: directory for persisted bundles (created on first
                write).  ``None`` disables persistence.
            train_bayesian: include trained Bayesian models in built
                bundles (required for the ``bayesian`` scheduler).
            max_delta_fraction: bound on the append delta
                :meth:`refresh` will fold incrementally, as a fraction of
                the bundle's row count; larger deltas fall back to a
                full rebuild (at that size a rebuild is competitive and
                resets any accumulated floating-point drift in the
                catalog's running moments).
        """
        if max_delta_fraction <= 0:
            raise ArtifactError("max_delta_fraction must be positive")
        self._persist_dir = Path(persist_dir) if persist_dir is not None else None
        self._train_bayesian = train_bayesian
        self._max_delta_fraction = max_delta_fraction
        self._bundles: dict[str, ArtifactBundle] = {}
        self._build_locks: dict[str, threading.Lock] = {}
        self._mutex = threading.Lock()
        self.stats = ArtifactStoreStats()

    @property
    def persist_dir(self) -> Optional[Path]:
        """The bundle persistence directory (``None`` when disabled).

        The process-shard executor reads this to point every worker
        process at the same warm-start directory as the parent store.
        """
        return self._persist_dir

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, database: Database) -> ArtifactBundle:
        """The current bundle for ``database``, building it if needed.

        Thread-safe: concurrent callers for the same database state block
        on one build and then all share the single resulting bundle.
        """
        return self._current_bundle(database, try_refresh=False)

    def refresh(self, database: Database) -> ArtifactBundle:
        """The current bundle for ``database``, upgraded incrementally.

        Like :meth:`get`, but when a cached bundle exists for an earlier
        state of the same schema, the append delta since that state is
        folded into the bundle's artifacts in place (index, catalog,
        schema-graph statistics, Bayesian sufficient statistics) instead
        of rebuilding them from scratch — typically an order of magnitude
        faster for small deltas (see ``benchmarks/test_bench_incremental.py``).

        The delta path falls back to a counted full rebuild
        (``stats.rebuild_fallbacks``, per-cause in
        ``stats.fallback_reasons``) when the change is not expressible as
        pure appends or would mutate shared state unsafely: a schema
        change, a dropped/recreated table, a non-append storage write, a
        delta larger than ``max_delta_fraction`` of the bundle, a bundle
        loaded from disk (whose database is a private copy detached from
        the live one), or a bundle that predates delta support.

        Concurrency: the upgrade runs under the same per-database build
        lock as :meth:`get`.  Artifacts are upgraded additively in place,
        so a reader holding the pre-refresh bundle may observe some of
        the appended rows mid-refresh — equivalent to the insert having
        become visible, never a torn structure.
        """
        return self._current_bundle(database, try_refresh=True)

    def _current_bundle(
        self, database: Database, try_refresh: bool
    ) -> ArtifactBundle:
        """The shared cache protocol behind :meth:`get` and :meth:`refresh`.

        Unlocked fast path on a key hit, then (under the per-database
        build lock) double-check, optionally attempt the incremental
        upgrade, and finally fall back to persisted-load or a full build.
        """
        key = ArtifactKey.for_database(database)
        bundle = self._bundles.get(key.database)
        if bundle is not None and bundle.key == key:
            self._record_hit(key.database)
            return bundle
        with self._build_lock(key.database):
            # Re-read the state: a racing caller may have refreshed or
            # rebuilt while we waited for the build lock.
            key = ArtifactKey.for_database(database)
            bundle = self._bundles.get(key.database)
            if bundle is not None and bundle.key == key:
                self._record_hit(key.database)
                return bundle
            if bundle is not None:
                if try_refresh:
                    upgraded = self._refresh_bundle(bundle, database)
                    if upgraded is not None:
                        self._bundles[key.database] = upgraded
                        self._persist(upgraded)
                        return upgraded
                with self._mutex:
                    if try_refresh:
                        self.stats.rebuild_fallbacks += 1
                    self.stats.invalidations += 1
            fresh = self._load_persisted(key)
            if fresh is None:
                fresh = self.build(database)
                self._persist(fresh)
            self._bundles[key.database] = fresh
            return fresh

    def _refresh_bundle(
        self, bundle: ArtifactBundle, database: Database
    ) -> Optional[ArtifactBundle]:
        """Upgrade ``bundle`` to the database's current state via deltas.

        Returns ``None`` (after recording the cause in
        ``stats.fallback_reasons``) whenever the incremental path does
        not apply; the caller then rebuilds from scratch.
        """
        if database.schema_version != bundle.key.schema_version:
            return self._fallback("schema_change")
        if bundle.database is not database:
            # A disk-loaded bundle's database is a private unpickled copy
            # frozen at load time; folding the live delta into artifacts
            # shared with readers of that copy would hand them postings
            # past the copy's row count.  Rebuild once — the rebuilt
            # bundle references the live database and refreshes fine from
            # then on.
            return self._fallback("detached_database")
        marks = getattr(bundle, "marks", None)
        if not marks or not self._bundle_supports_delta(bundle):
            return self._fallback("unsupported_bundle")
        deltas = database.storage_deltas_since(marks)
        if deltas is None:
            return self._fallback("non_append_change")
        if not deltas:
            # The key moved but no table reports appended rows — the
            # bundle and the live storage disagree; trust neither.
            return self._fallback("inconsistent_marks")
        delta_rows = sum(delta.num_rows for delta in deltas.values())
        base_rows = sum(mark.num_rows for mark in marks.values())
        if base_rows == 0 or delta_rows > self._max_delta_fraction * base_rows:
            return self._fallback("delta_overflow")

        new_marks = dict(marks)
        for table_name, delta in deltas.items():
            new_marks[table_name] = delta.new_mark
        # The target key is derived from the captured marks, not from the
        # live database: appends racing with the upgrade simply leave the
        # result one delta behind, to be caught up by the next refresh.
        target_key = ArtifactKey(
            database.name,
            bundle.key.schema_version,
            (
                bundle.key.schema_version,
                len(new_marks),
                sum(mark.version for mark in new_marks.values()),
            ),
        )
        built_from = (
            target_key.database,
            target_key.schema_version,
            target_key.data_version,
        )
        try:
            bundle.index.apply_delta(database, deltas, built_from=built_from)
            bundle.catalog.apply_delta(database, deltas, built_from=built_from)
            bundle.schema_graph.apply_delta(database, built_from=built_from)
            if bundle.models is not None:
                bundle.models.apply_delta(
                    database, deltas, trained_on=built_from
                )
        except ReproError:
            # The artifacts may be half-upgraded; drop the bundle so the
            # fallback rebuild (and every later request) starts clean.
            self._bundles.pop(database.name, None)
            return self._fallback("apply_failed")
        except BaseException:
            # Same eviction for unexpected failures (MemoryError, a
            # KeyboardInterrupt mid-apply): were the half-upgraded bundle
            # left cached under its old key and marks, the next refresh
            # would fold the same delta in a second time.
            self._bundles.pop(database.name, None)
            raise
        with self._mutex:
            self.stats.refreshes += 1
            self.stats.delta_rows_applied += delta_rows
            self.stats.refreshes_by_database[database.name] += 1
        return replace(
            bundle, key=target_key, database=database, marks=new_marks
        )

    @staticmethod
    def _bundle_supports_delta(bundle: ArtifactBundle) -> bool:
        """Whether every artifact carries its incremental-maintenance
        state (bundles persisted before this feature existed do not)."""
        if not getattr(bundle.catalog, "supports_delta", False):
            return False
        models = bundle.models
        if models is not None and not getattr(models, "supports_delta", False):
            return False
        return True

    def _fallback(self, reason: str) -> None:
        """Record why the delta path was abandoned; returns ``None`` so
        callers can ``return self._fallback(...)``."""
        with self._mutex:
            self.stats.fallback_reasons[reason] += 1
        return None

    def cached_bundle(self, database_name: str) -> Optional[ArtifactBundle]:
        """The in-memory bundle for ``database_name``, if any (no build)."""
        return self._bundles.get(database_name)

    def warm(self, databases) -> list[ArtifactBundle]:
        """Eagerly materialize bundles for an iterable of databases."""
        return [self.get(database) for database in databases]

    def evict(self, database_name: str) -> bool:
        """Drop the in-memory bundle for ``database_name`` (disk untouched)."""
        with self._build_lock(database_name):
            return self._bundles.pop(database_name, None) is not None

    # ------------------------------------------------------------------
    # Construction and persistence
    # ------------------------------------------------------------------
    def build(self, database: Database) -> ArtifactBundle:
        """Build a bundle from scratch (no cache interaction besides stats)."""
        key = ArtifactKey.for_database(database)
        marks = database.storage_marks()
        index = InvertedIndex.build(database)
        catalog = MetadataCatalog.build(database)
        schema_graph = SchemaGraph(database)
        models = train_models(database) if self._train_bayesian else None
        built_key = ArtifactKey.for_database(database)
        if built_key != key:
            raise ArtifactError(
                f"database {database.name!r} was mutated while its artifacts "
                "were being built; retry once writes have quiesced"
            )
        with self._mutex:
            self.stats.builds += 1
            self.stats.builds_by_database[key.database] += 1
        return ArtifactBundle(
            key=key,
            database=database,
            index=index,
            catalog=catalog,
            schema_graph=schema_graph,
            models=models,
            marks=marks,
        )

    def persisted_path(self, key: ArtifactKey) -> Optional[Path]:
        """Where ``key``'s bundle is (or would be) persisted, if enabled."""
        if self._persist_dir is None:
            return None
        return self._persist_dir / key.filename()

    def _persist(self, bundle: ArtifactBundle) -> None:
        """Best-effort write-through: a persistence failure never fails the
        request — the freshly built in-memory bundle is still served, and
        the failure is only counted in ``stats.disk_errors``."""
        path = self.persisted_path(bundle.key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp_path = path.with_suffix(path.suffix + ".tmp")
            with open(tmp_path, "wb") as handle:
                pickle.dump(bundle, handle, protocol=_PICKLE_PROTOCOL)
            tmp_path.replace(path)
        except (OSError, pickle.PicklingError):
            with self._mutex:
                self.stats.disk_errors += 1
            return
        with self._mutex:
            self.stats.disk_writes += 1

    def _load_persisted(self, key: ArtifactKey) -> Optional[ArtifactBundle]:
        """Load ``key``'s persisted bundle, degrading to a cache miss.

        An unreadable, corrupt or mismatched file must never poison the
        database it belongs to: the failure is counted, ``None`` is
        returned, and the caller rebuilds (the rebuild's write-through then
        replaces the bad file).
        """
        path = self.persisted_path(key)
        if path is None or not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                bundle = pickle.load(handle)
        except Exception:
            # pickle.load can raise nearly anything on hostile or
            # version-skewed input (UnpicklingError, EOFError,
            # AttributeError, ImportError, ...); all of it means "miss".
            with self._mutex:
                self.stats.disk_errors += 1
            return None
        if not isinstance(bundle, ArtifactBundle) or bundle.key != key:
            with self._mutex:
                self.stats.disk_errors += 1
            return None
        if self._train_bayesian and bundle.models is None:
            # The persisted bundle predates model training; rebuild.
            return None
        with self._mutex:
            self.stats.disk_loads += 1
        return bundle

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------
    def _build_lock(self, database_name: str) -> threading.Lock:
        with self._mutex:
            lock = self._build_locks.get(database_name)
            if lock is None:
                lock = threading.Lock()
                self._build_locks[database_name] = lock
            return lock

    def _record_hit(self, database_name: str) -> None:
        with self._mutex:
            self.stats.hits += 1
            self.stats.hits_by_database[database_name] += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ArtifactStore(bundles={sorted(self._bundles)}, "
            f"persist_dir={self._persist_dir})"
        )
