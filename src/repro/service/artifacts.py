"""Shared, persistable preprocessing-artifact bundles.

The paper trains its models and builds its indexes "a priori for the
source database" (§2.3) — preprocessing is a long-lived, per-database
activity, while each interactive discovery round is cheap.  This module
makes that split explicit:

* :class:`ArtifactBundle` — one immutable set of preprocessing artifacts
  (inverted index, metadata catalog, schema graph, trained Bayesian
  models) for one database state;
* :class:`ArtifactKey` — the bundle's identity:
  ``(database, schema_version, data_version)``.  Any schema or data change
  yields a new key, so stale bundles are never served;
* :class:`ArtifactStore` — a thread-safe build-once cache of bundles,
  optionally persisted to disk so process restarts and sibling processes
  warm-start instead of re-preprocessing.

Bundles are strictly read-only after construction; every consumer
(:class:`~repro.discovery.engine.Prism` engines, the
:class:`~repro.service.DiscoveryService` worker pool) layers its own
mutable state (executor caches, statistics) on top.
"""

from __future__ import annotations

import pickle
import re
import threading
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.bayesian.training import BayesianModelSet, train_models
from repro.dataset.catalog import MetadataCatalog
from repro.dataset.database import Database
from repro.dataset.index import InvertedIndex
from repro.dataset.schema_graph import SchemaGraph
from repro.errors import ArtifactError

__all__ = ["ArtifactKey", "ArtifactBundle", "ArtifactStore", "ArtifactStoreStats"]

_PICKLE_PROTOCOL = 4
_UNSAFE_FILENAME = re.compile(r"[^A-Za-z0-9_.-]+")


@dataclass(frozen=True)
class ArtifactKey:
    """Identity of one preprocessing bundle.

    Attributes:
        database: the source database's name.
        schema_version: the database's schema version counter.
        data_version: the database's cheap data-change token.
    """

    database: str
    schema_version: int
    data_version: tuple

    @classmethod
    def for_database(cls, database: Database) -> "ArtifactKey":
        """The key describing ``database``'s current state."""
        name, schema_version, data_version = database.artifact_key()
        return cls(name, schema_version, data_version)

    def filename(self) -> str:
        """A filesystem-safe file name for this key's persisted bundle."""
        safe_name = _UNSAFE_FILENAME.sub("_", self.database)
        data_token = "-".join(str(part) for part in self.data_version)
        return f"{safe_name}.s{self.schema_version}.d{data_token}.artifacts.pkl"


@dataclass(frozen=True)
class ArtifactBundle:
    """One database's full preprocessing output, immutable once built.

    The bundle owns the database instance it was built from (for bundles
    loaded from disk that is a private unpickled copy, fully isolated from
    the caller's objects), so serving from a bundle never races with
    mutations of the database the caller passed in.
    """

    key: ArtifactKey
    database: Database
    index: InvertedIndex
    catalog: MetadataCatalog
    schema_graph: SchemaGraph
    models: Optional[BayesianModelSet]

    @property
    def trained(self) -> bool:
        """Whether the bundle carries trained Bayesian models."""
        return self.models is not None

    def engine(self, **kwargs):
        """Construct a cheap per-request :class:`Prism` over this bundle."""
        from repro.discovery.engine import Prism

        return Prism.from_artifacts(self, **kwargs)


@dataclass
class ArtifactStoreStats:
    """Counters describing how the store satisfied its requests."""

    hits: int = 0
    builds: int = 0
    disk_loads: int = 0
    disk_writes: int = 0
    disk_errors: int = 0
    invalidations: int = 0
    hits_by_database: Counter = field(default_factory=Counter)
    builds_by_database: Counter = field(default_factory=Counter)

    def as_dict(self) -> dict:
        """Plain-dict snapshot used by service metrics and reports."""
        return {
            "hits": self.hits,
            "builds": self.builds,
            "disk_loads": self.disk_loads,
            "disk_writes": self.disk_writes,
            "disk_errors": self.disk_errors,
            "invalidations": self.invalidations,
            "hits_by_database": dict(self.hits_by_database),
            "builds_by_database": dict(self.builds_by_database),
        }


class ArtifactStore:
    """Builds, caches and optionally disk-persists preprocessing bundles.

    One store serves any number of concurrent sessions: per-database build
    locks guarantee each distinct ``(database, schema_version,
    data_version)`` state is preprocessed exactly once no matter how many
    requests race for it, and every later request is a cache hit.  With a
    ``persist_dir``, freshly built bundles are pickled to disk and a new
    process (or a restart) warm-starts by loading them instead of
    rebuilding.
    """

    def __init__(
        self,
        persist_dir: Optional[Union[str, Path]] = None,
        train_bayesian: bool = True,
    ):
        """Create a store.

        Args:
            persist_dir: directory for persisted bundles (created on first
                write).  ``None`` disables persistence.
            train_bayesian: include trained Bayesian models in built
                bundles (required for the ``bayesian`` scheduler).
        """
        self._persist_dir = Path(persist_dir) if persist_dir is not None else None
        self._train_bayesian = train_bayesian
        self._bundles: dict[str, ArtifactBundle] = {}
        self._build_locks: dict[str, threading.Lock] = {}
        self._mutex = threading.Lock()
        self.stats = ArtifactStoreStats()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, database: Database) -> ArtifactBundle:
        """The current bundle for ``database``, building it if needed.

        Thread-safe: concurrent callers for the same database state block
        on one build and then all share the single resulting bundle.
        """
        key = ArtifactKey.for_database(database)
        bundle = self._bundles.get(key.database)
        if bundle is not None and bundle.key == key:
            self._record_hit(key.database)
            return bundle
        with self._build_lock(key.database):
            # Double-checked: a racing caller may have built this state
            # while we waited for the build lock.
            bundle = self._bundles.get(key.database)
            if bundle is not None and bundle.key == key:
                self._record_hit(key.database)
                return bundle
            if bundle is not None:
                with self._mutex:
                    self.stats.invalidations += 1
            fresh = self._load_persisted(key)
            if fresh is None:
                fresh = self.build(database)
                self._persist(fresh)
            self._bundles[key.database] = fresh
            return fresh

    def cached_bundle(self, database_name: str) -> Optional[ArtifactBundle]:
        """The in-memory bundle for ``database_name``, if any (no build)."""
        return self._bundles.get(database_name)

    def warm(self, databases) -> list[ArtifactBundle]:
        """Eagerly materialize bundles for an iterable of databases."""
        return [self.get(database) for database in databases]

    def evict(self, database_name: str) -> bool:
        """Drop the in-memory bundle for ``database_name`` (disk untouched)."""
        with self._build_lock(database_name):
            return self._bundles.pop(database_name, None) is not None

    # ------------------------------------------------------------------
    # Construction and persistence
    # ------------------------------------------------------------------
    def build(self, database: Database) -> ArtifactBundle:
        """Build a bundle from scratch (no cache interaction besides stats)."""
        key = ArtifactKey.for_database(database)
        index = InvertedIndex.build(database)
        catalog = MetadataCatalog.build(database)
        schema_graph = SchemaGraph(database)
        models = train_models(database) if self._train_bayesian else None
        built_key = ArtifactKey.for_database(database)
        if built_key != key:
            raise ArtifactError(
                f"database {database.name!r} was mutated while its artifacts "
                "were being built; retry once writes have quiesced"
            )
        with self._mutex:
            self.stats.builds += 1
            self.stats.builds_by_database[key.database] += 1
        return ArtifactBundle(
            key=key,
            database=database,
            index=index,
            catalog=catalog,
            schema_graph=schema_graph,
            models=models,
        )

    def persisted_path(self, key: ArtifactKey) -> Optional[Path]:
        """Where ``key``'s bundle is (or would be) persisted, if enabled."""
        if self._persist_dir is None:
            return None
        return self._persist_dir / key.filename()

    def _persist(self, bundle: ArtifactBundle) -> None:
        """Best-effort write-through: a persistence failure never fails the
        request — the freshly built in-memory bundle is still served, and
        the failure is only counted in ``stats.disk_errors``."""
        path = self.persisted_path(bundle.key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp_path = path.with_suffix(path.suffix + ".tmp")
            with open(tmp_path, "wb") as handle:
                pickle.dump(bundle, handle, protocol=_PICKLE_PROTOCOL)
            tmp_path.replace(path)
        except (OSError, pickle.PicklingError):
            with self._mutex:
                self.stats.disk_errors += 1
            return
        with self._mutex:
            self.stats.disk_writes += 1

    def _load_persisted(self, key: ArtifactKey) -> Optional[ArtifactBundle]:
        """Load ``key``'s persisted bundle, degrading to a cache miss.

        An unreadable, corrupt or mismatched file must never poison the
        database it belongs to: the failure is counted, ``None`` is
        returned, and the caller rebuilds (the rebuild's write-through then
        replaces the bad file).
        """
        path = self.persisted_path(key)
        if path is None or not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                bundle = pickle.load(handle)
        except Exception:
            # pickle.load can raise nearly anything on hostile or
            # version-skewed input (UnpicklingError, EOFError,
            # AttributeError, ImportError, ...); all of it means "miss".
            with self._mutex:
                self.stats.disk_errors += 1
            return None
        if not isinstance(bundle, ArtifactBundle) or bundle.key != key:
            with self._mutex:
                self.stats.disk_errors += 1
            return None
        if self._train_bayesian and bundle.models is None:
            # The persisted bundle predates model training; rebuild.
            return None
        with self._mutex:
            self.stats.disk_loads += 1
        return bundle

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------
    def _build_lock(self, database_name: str) -> threading.Lock:
        with self._mutex:
            lock = self._build_locks.get(database_name)
            if lock is None:
                lock = threading.Lock()
                self._build_locks[database_name] = lock
            return lock

    def _record_hit(self, database_name: str) -> None:
        with self._mutex:
            self.stats.hits += 1
            self.stats.hits_by_database[database_name] += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ArtifactStore(bundles={sorted(self._bundles)}, "
            f"persist_dir={self._persist_dir})"
        )
