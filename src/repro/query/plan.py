"""Logical plan IR for Project-Join queries.

Every consumer of a :class:`~repro.query.pj_query.ProjectJoinQuery` —
the executor, the SQL renderer, the explain tooling and the batched
filter validator — now goes through one intermediate representation
instead of re-deriving structure from the query ad hoc.  A plan is a
tree of immutable nodes:

* :class:`Scan` — one base table;
* :class:`Filter` — symbolic per-column predicates applied to its child
  (predicates are *described*, not stored as callables, so plans stay
  hashable and comparable);
* :class:`Join` — one foreign-key equi-join between two sub-plans;
* :class:`Project` — the ordered output columns;
* :class:`Exists` — an existence probe over its child (``LIMIT 1``
  semantics), the shape every filter validation takes.

The load-bearing feature is **canonical hashing**: two plans that denote
the same join work hash equally regardless of the order their joins were
listed or which columns they project.  :func:`join_prefix_key` is the
structure-level form — the key the executor's physical-plan cache uses,
which is what lets equivalent sub-plans be shared *across candidates*,
and the key the validation driver groups filters by for batched passes
over one shared join.  :meth:`PlanNode.canonical_key` is the node-level
generalization covering filters and projections too; the explain
tooling and the equivalence tests use it to prove two plans denote the
same work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterator, Optional, Sequence

from repro.dataset.schema import ColumnRef, ForeignKey
from repro.errors import QueryError
from repro.query.pj_query import ProjectJoinQuery

__all__ = [
    "PlanNode",
    "Scan",
    "Filter",
    "Join",
    "Project",
    "Exists",
    "PredicateSpec",
    "logical_plan_for_query",
    "join_prefix_key",
    "edge_key",
]


def edge_key(edge: ForeignKey) -> tuple:
    """Canonical hashable identity of one join edge.

    Symmetric in the two endpoints: the same physical equi-join hashes
    equally no matter which side the foreign key calls the child.
    """
    left = (edge.child_table, edge.child_column)
    right = (edge.parent_table, edge.parent_column)
    return (left, right) if left <= right else (right, left)


@dataclass(frozen=True)
class PredicateSpec:
    """A symbolic cell predicate: column plus a hashable description.

    ``tag`` identifies the predicate's *content* — typically the value
    constraint object it was derived from (hashable, compared by typed
    content), or a human-readable description when the spec only feeds
    the explain rendering.  The default ``"?"`` marks an opaque
    predicate.
    """

    table: str
    column: str
    tag: Hashable = "?"

    def __str__(self) -> str:
        describe = getattr(self.tag, "describe", None)
        label = describe() if callable(describe) else self.tag
        return f"{self.table}.{self.column}⟨{label}⟩"


@dataclass(frozen=True)
class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> tuple["PlanNode", ...]:
        """This node's sub-plans (empty for leaves)."""
        return ()

    @property
    def tables(self) -> frozenset[str]:
        """Every base table under this node."""
        tables: set[str] = set()
        for node in self.walk():
            if isinstance(node, Scan):
                tables.add(node.table)
        return frozenset(tables)

    def edges(self) -> tuple[ForeignKey, ...]:
        """Every join edge under this node, in plan order."""
        found: list[ForeignKey] = []
        for node in self.walk():
            if isinstance(node, Join):
                found.append(node.edge)
        return tuple(found)

    def predicates(self) -> tuple[PredicateSpec, ...]:
        """Every pushed-down predicate under this node, in plan order."""
        found: list[PredicateSpec] = []
        for node in self.walk():
            if isinstance(node, Filter):
                found.extend(node.specs)
        return tuple(found)

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the plan tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def canonical_key(self) -> tuple:
        """A hashable key equal for plans denoting the same work.

        Join subtrees are canonicalized as *sets* of edges over *sets*
        of (filtered) inputs, so different join orders — and, for
        :class:`Project`-free sub-plans, different projections — of the
        same logical join collapse onto one key.  This is the key the
        executor's physical-plan cache uses to share work across
        candidates.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Scan(PlanNode):
    """A full scan of one base table."""

    table: str

    def canonical_key(self) -> tuple:
        return ("scan", self.table)

    def __str__(self) -> str:
        return f"Scan({self.table})"


@dataclass(frozen=True)
class Filter(PlanNode):
    """Symbolic predicates applied to the rows of ``child``.

    In practice the planner pushes filters all the way onto their scans,
    so ``child`` is a :class:`Scan` after optimization; the IR itself
    allows filtering any sub-plan.
    """

    child: PlanNode
    specs: tuple[PredicateSpec, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def canonical_key(self) -> tuple:
        return (
            "filter",
            tuple(sorted(
                (spec.table, spec.column, repr(spec.tag)) for spec in self.specs
            )),
            self.child.canonical_key(),
        )

    def __str__(self) -> str:
        specs = ", ".join(str(spec) for spec in self.specs)
        return f"Filter[{specs}]"


@dataclass(frozen=True)
class Join(PlanNode):
    """A foreign-key equi-join between two sub-plans."""

    left: PlanNode
    right: PlanNode
    edge: ForeignKey

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def canonical_key(self) -> tuple:
        # Flatten the whole join subtree: canonical form is the set of
        # edges over the set of non-join inputs, so any join order (and
        # any left/right flip) of the same tree hashes equally.
        edges: set[tuple] = set()
        inputs: list[tuple] = []
        stack: list[PlanNode] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Join):
                edges.add(edge_key(node.edge))
                stack.extend((node.left, node.right))
            else:
                inputs.append(node.canonical_key())
        return ("join", tuple(sorted(edges)), tuple(sorted(inputs)))

    def __str__(self) -> str:
        return (
            f"Join({self.edge.child_table}.{self.edge.child_column} = "
            f"{self.edge.parent_table}.{self.edge.parent_column})"
        )


@dataclass(frozen=True)
class Project(PlanNode):
    """The ordered output columns of the query."""

    child: PlanNode
    columns: tuple[ColumnRef, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def canonical_key(self) -> tuple:
        return (
            "project",
            tuple((ref.table, ref.column) for ref in self.columns),
            self.child.canonical_key(),
        )

    def __str__(self) -> str:
        columns = ", ".join(str(ref) for ref in self.columns)
        return f"Project[{columns}]"


@dataclass(frozen=True)
class Exists(PlanNode):
    """An existence probe (``LIMIT 1``) over its child."""

    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def canonical_key(self) -> tuple:
        return ("exists", self.child.canonical_key())

    def __str__(self) -> str:
        return "Exists"


def logical_plan_for_query(
    query: ProjectJoinQuery,
    predicates: Optional[Sequence[PredicateSpec]] = None,
    exists: bool = False,
) -> PlanNode:
    """Build the unoptimized logical plan of ``query``.

    The shape is ``[Exists] → Project → joins → [Filter →] Scan`` with
    joins nested left-deep in *connected* order — the query's own edge
    order, corrected only where an edge would not touch an
    already-joined table — and each predicate pushed onto the scan of
    its table.  The planner reorders the joins by cost afterwards
    (:class:`repro.query.planner.Planner`); this function deliberately
    preserves connected order so SQL rendered from the raw plan lists
    join conditions as the query wrote them (already-connected edge
    tuples, which is how the discovery pipeline builds every query,
    render byte-identically to the historical renderer).
    """
    per_table: dict[str, list[PredicateSpec]] = {}
    for spec in predicates or ():
        per_table.setdefault(spec.table, []).append(spec)

    def leaf(table: str) -> PlanNode:
        scan: PlanNode = Scan(table)
        specs = per_table.get(table)
        if specs:
            return Filter(scan, tuple(specs))
        return scan

    if not query.joins:
        table = next(iter(query.tables))
        plan: PlanNode = leaf(table)
    else:
        ordered = _connected_edge_order(query)
        first = ordered[0]
        joined = {first.tables()[0]}
        plan = leaf(first.tables()[0])
        for edge in ordered:
            left_table, right_table = edge.tables()
            new_table = right_table if left_table in joined else left_table
            if new_table in joined:
                # Defensive: a tree never revisits a table; keep the
                # edge anyway as a redundant join for faithfulness.
                plan = Join(plan, leaf(new_table), edge)
                continue
            plan = Join(plan, leaf(new_table), edge)
            joined.add(new_table)
    plan = Project(plan, query.projections)
    if exists:
        plan = Exists(plan)
    return plan


def attach_predicates(
    plan: PlanNode, specs: Sequence[PredicateSpec]
) -> PlanNode:
    """Overlay predicate specs onto a plan without changing its shape.

    Each spec becomes (part of) a :class:`Filter` directly above the
    scan of its table; joins, their order, projections and wrappers are
    preserved exactly.  Used by the explain tooling to annotate the
    *physical* plan — whose join order never depends on a request's
    predicates — with the constraints a probe pushes down.
    """
    per_table: dict[str, list[PredicateSpec]] = {}
    for spec in specs:
        per_table.setdefault(spec.table, []).append(spec)
    if not per_table:
        return plan

    def rebuild(node: PlanNode) -> PlanNode:
        if isinstance(node, Scan):
            mine = per_table.get(node.table)
            return Filter(node, tuple(mine)) if mine else node
        if isinstance(node, Filter):
            child = node.child
            extra: tuple[PredicateSpec, ...] = ()
            if isinstance(child, Scan):
                extra = tuple(per_table.get(child.table, ()))
            else:
                child = rebuild(child)
            return Filter(child, node.specs + extra)
        if isinstance(node, Join):
            return Join(rebuild(node.left), rebuild(node.right), node.edge)
        if isinstance(node, Project):
            return Project(rebuild(node.child), node.columns)
        if isinstance(node, Exists):
            return Exists(rebuild(node.child))
        raise QueryError(f"cannot attach predicates to {node!r}")

    return rebuild(plan)


def _connected_edge_order(query: ProjectJoinQuery) -> list[ForeignKey]:
    """Order the query's edges so each touches an already-joined table."""
    remaining = list(query.joins)
    ordered: list[ForeignKey] = []
    joined = {query.projections[0].table}
    if not any(
        table in joined for edge in remaining for table in edge.tables()
    ):
        joined = {remaining[0].tables()[0]}
    while remaining:
        progressed = False
        for edge in list(remaining):
            left, right = edge.tables()
            if left in joined or right in joined:
                ordered.append(edge)
                joined.update((left, right))
                remaining.remove(edge)
                progressed = True
        if not progressed:
            raise QueryError("join edges do not form a connected tree")
    return ordered


def join_prefix_key(query: ProjectJoinQuery) -> tuple:
    """The canonical identity of a query's join structure.

    Two queries share a join prefix exactly when they join the same
    tables over the same edges — projections and predicates are
    irrelevant.  Filters grouped under one prefix key can be validated
    in a single batched pass over the shared join, and physical join
    plans cached under it are reused across all of them.

    The key is computed once per (immutable) query and cached on it:
    the validation driver asks for it for every pending filter on every
    scheduling step.
    """
    cached = query.__dict__.get("_prefix_key")
    if cached is None:
        cached = (
            tuple(sorted(edge_key(edge) for edge in query.joins)),
            tuple(sorted(query.tables)),
        )
        object.__setattr__(query, "_prefix_key", cached)
    return cached
