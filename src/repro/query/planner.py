"""Cost-based optimization of logical plans.

The planner turns the raw IR from :func:`~repro.query.plan.logical_plan_for_query`
into an optimized plan the executor can lower to physical probe steps:

* **predicate pushdown** is structural — cell predicates always sit in a
  :class:`~repro.query.plan.Filter` directly above their table's
  :class:`~repro.query.plan.Scan` (the raw builder already places them
  there; the planner preserves the invariant while reordering);
* **join reordering** is cost-based: cardinalities come from the
  :class:`~repro.dataset.catalog.MetadataCatalog` when one is attached
  (live ``num_rows`` otherwise), filters discount their input by a
  distinct-count-derived selectivity, and joins are estimated under the
  classic containment assumption
  ``|L ⋈ R| ≈ |L|·|R| / max(d(L.key), d(R.key))``.  The greedy order
  starts from the cheapest (most selective) input and always expands
  with the edge minimizing the estimated intermediate result;
* **common-join-prefix identification** groups plans or queries whose
  join structure is identical (:meth:`Planner.prefix_key`,
  :func:`~repro.query.plan.join_prefix_key`), the basis for batched
  cross-candidate validation and physical-plan sharing.

Plans depend only on query structure and statistics, never on a request's
concrete predicate callables, so optimized orders are deterministic and
cacheable by canonical plan hash.
"""

from __future__ import annotations

from typing import Optional

from repro.dataset.database import Database
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.errors import QueryError
from repro.query.pj_query import ProjectJoinQuery
from repro.query.plan import (
    Exists,
    Filter,
    Join,
    PlanNode,
    PredicateSpec,
    Project,
    Scan,
    join_prefix_key,
    logical_plan_for_query,
)

__all__ = ["Planner", "JoinOrder", "DEFAULT_FILTER_SELECTIVITY"]

# Selectivity assumed for a predicate on a column with unknown statistics.
DEFAULT_FILTER_SELECTIVITY = 0.1


class JoinOrder:
    """The physical join order derived from an optimized plan."""

    __slots__ = ("start_table", "edges")

    def __init__(self, start_table: str, edges: tuple[ForeignKey, ...]):
        self.start_table = start_table
        self.edges = edges

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"JoinOrder(start={self.start_table!r}, edges={self.edges!r})"


class Planner:
    """Optimizes logical plans against one database's statistics."""

    def __init__(
        self,
        database: Database,
        catalog: Optional[object] = None,
        *,
        use_sketches: bool = True,
        stats: Optional[object] = None,
    ):
        """Create a planner.

        Args:
            database: the database plans execute against.
            catalog: optional :class:`~repro.dataset.catalog.MetadataCatalog`
                supplying row and distinct counts.  Without one the
                planner falls back to live table row counts and default
                selectivities — still deterministic, just less informed.
            use_sketches: consult the catalog's statistics sketches
                (HLL join-key overlap, histograms) when present.  Off,
                estimation falls back to the raw-count containment
                model — the baseline the sketch benchmark compares
                against.
            stats: optional counter sink (typically the executor's
                :class:`~repro.query.executor.ExecutionStats`) whose
                ``sketch_estimates_used`` field is bumped whenever a
                sketch, rather than raw counts, produced an estimate.
        """
        self._database = database
        self._catalog = catalog
        self._use_sketches = use_sketches
        self._stats = stats
        # Memoized sketch-derived quantities, invalidated when the
        # catalog folds a delta (built_from changes).
        self._edge_memo: dict = {}
        self._structure_memo: dict = {}
        self._memo_version: object = None
        self._counting = True

    # ------------------------------------------------------------------
    # Cardinality model
    # ------------------------------------------------------------------
    def table_rows(self, table: str) -> int:
        """Estimated row count of a base table."""
        catalog = self._catalog
        if catalog is not None:
            try:
                return catalog.table_row_count(table)
            except Exception:
                pass
        return self._database.table(table).num_rows

    def _distinct_count(self, table: str, column: str) -> Optional[int]:
        catalog = self._catalog
        if catalog is None:
            return None
        try:
            stats = catalog.stats(ColumnRef(table, column))
        except Exception:
            return None
        return stats.distinct_count

    def _column_sketches(self, table: str, column: str):
        """The catalog's sketches for one column, or ``None``."""
        catalog = self._catalog
        if catalog is None or not self._use_sketches:
            return None
        getter = getattr(catalog, "sketches", None)
        if getter is None:
            return None
        try:
            return getter(ColumnRef(table, column))
        except Exception:
            return None

    def _count_sketch_estimate(self) -> None:
        stats = self._stats
        if stats is not None and self._counting:
            stats.sketch_estimates_used += 1

    def _memo_guard(self) -> None:
        """Drop sketch memos when the catalog has folded a delta."""
        version = getattr(self._catalog, "built_from", None)
        if version != self._memo_version:
            self._edge_memo.clear()
            self._structure_memo.clear()
            self._memo_version = version

    def filter_selectivity(self, spec: PredicateSpec) -> float:
        """Estimated fraction of rows surviving one pushed predicate.

        When the spec's tag is a :class:`~repro.constraints.values.Range`
        over a column with an equi-depth histogram, selectivity comes
        from the histogram's quantiles (discounted by the column's NULL
        fraction).  A ``OneOf`` over ``d`` distinct values keeps ``k/d``.
        Otherwise a predicate on a column with ``d`` distinct values is
        assumed to keep ``1/d`` of the rows (an equality-flavoured
        estimate — most sample-constraint probes are); columns without
        statistics use :data:`DEFAULT_FILTER_SELECTIVITY`.
        """
        sketched = self._sketch_filter_selectivity(spec)
        if sketched is not None:
            self._count_sketch_estimate()
            return sketched
        return self._raw_filter_selectivity(spec)

    def _raw_filter_selectivity(self, spec: PredicateSpec) -> float:
        distinct = self._distinct_count(spec.table, spec.column)
        width = 1
        tag = spec.tag
        if not isinstance(tag, str):
            values = getattr(tag, "values", None)
            if isinstance(values, tuple) and values:
                width = len(values)
        if distinct and distinct > 0:
            return min(1.0, width / distinct)
        return DEFAULT_FILTER_SELECTIVITY

    def _sketch_filter_selectivity(
        self, spec: PredicateSpec
    ) -> Optional[float]:
        """Histogram-based selectivity for Range-tagged predicates, or
        ``None`` when no sketch applies (the raw model decides then)."""
        tag = spec.tag
        if isinstance(tag, str) or not hasattr(tag, "matches"):
            return None
        low = getattr(tag, "low", None)
        high = getattr(tag, "high", None)
        if (low is None and high is None) or not hasattr(tag, "low_inclusive"):
            return None
        if isinstance(low, str) or isinstance(high, str):
            return None
        sketches = self._column_sketches(spec.table, spec.column)
        if sketches is None or sketches.histogram is None:
            return None
        selectivity = sketches.histogram.selectivity(low, high)
        try:
            stats = self._catalog.stats(ColumnRef(spec.table, spec.column))
            selectivity *= 1.0 - stats.null_fraction
        except Exception:
            pass
        return min(1.0, max(selectivity, 0.0))

    def estimated_rows(self, plan: PlanNode) -> float:
        """Estimated output cardinality of any plan node."""
        if isinstance(plan, Scan):
            return float(self.table_rows(plan.table))
        if isinstance(plan, Filter):
            rows = self.estimated_rows(plan.child)
            for spec in plan.specs:
                rows *= self.filter_selectivity(spec)
            return max(rows, 1e-9)
        if isinstance(plan, Join):
            return self._join_rows(
                self.estimated_rows(plan.left),
                self.estimated_rows(plan.right),
                plan.edge,
            )
        if isinstance(plan, (Project, Exists)):
            return self.estimated_rows(plan.child)
        raise QueryError(f"cannot estimate unknown plan node {plan!r}")

    def _join_rows(self, left_rows: float, right_rows: float, edge: ForeignKey) -> float:
        rows, _raw, _used = self.join_estimate_detail(
            left_rows, right_rows, edge
        )
        return rows

    def join_estimate_detail(
        self,
        left_rows: float,
        right_rows: float,
        edge: ForeignKey,
        count: bool = True,
    ) -> tuple[float, float, bool]:
        """``(estimate, raw_estimate, used_sketch)`` for one join edge.

        The raw estimate is the classic containment assumption
        ``L·R / max(d_child, d_parent)``.  With HLL sketches on both key
        columns the estimate instead uses the sketched key overlap:
        merging the two sketches gives ``|keys(L) ∪ keys(R)|``, so by
        inclusion–exclusion the join predicate's selectivity is
        ``|∩| / (d_child · d_parent)`` — which collapses toward zero on
        dangling-key edges where containment badly over-counts.
        """
        raw = self._raw_join_rows(left_rows, right_rows, edge)
        selectivity = self._sketch_edge_selectivity(edge)
        if selectivity is None:
            return raw, raw, False
        if count:
            self._count_sketch_estimate()
        estimate = max(left_rows * right_rows * selectivity, 1e-9)
        return estimate, raw, True

    def _raw_join_rows(
        self, left_rows: float, right_rows: float, edge: ForeignKey
    ) -> float:
        child_distinct = self._distinct_count(edge.child_table, edge.child_column)
        parent_distinct = self._distinct_count(edge.parent_table, edge.parent_column)
        candidates = [d for d in (child_distinct, parent_distinct) if d]
        if candidates:
            denominator = float(max(candidates))
        else:
            denominator = max(
                float(self.table_rows(edge.parent_table)), 1.0
            )
        return max(left_rows * right_rows / max(denominator, 1.0), 1e-9)

    def _sketch_edge_selectivity(self, edge: ForeignKey) -> Optional[float]:
        """Sketched join-predicate selectivity ``|∩| / (d_c · d_p)``,
        memoized per edge until the catalog folds a delta."""
        self._memo_guard()
        key = (
            edge.child_table,
            edge.child_column,
            edge.parent_table,
            edge.parent_column,
        )
        if key in self._edge_memo:
            return self._edge_memo[key]
        selectivity: Optional[float] = None
        child = self._column_sketches(edge.child_table, edge.child_column)
        parent = self._column_sketches(edge.parent_table, edge.parent_column)
        if (
            child is not None
            and parent is not None
            and child.hll is not None
            and parent.hll is not None
        ):
            child_distinct = child.hll.estimate()
            parent_distinct = parent.hll.estimate()
            union = child.hll.union_estimate(parent.hll)
            overlap = max(0.0, child_distinct + parent_distinct - union)
            overlap = min(overlap, child_distinct, parent_distinct)
            denominator = max(child_distinct * parent_distinct, 1.0)
            selectivity = min(1.0, overlap / denominator)
        self._edge_memo[key] = selectivity
        return selectivity

    # ------------------------------------------------------------------
    # Optimization
    # ------------------------------------------------------------------
    def optimize(self, plan: PlanNode) -> PlanNode:
        """Reorder a plan's joins by estimated cost (cheapest first).

        The result is a left-deep plan with the same Project/Exists
        wrappers and the same filtered scans; only the join order (and
        therefore which side streams and which side is index-probed)
        changes.  Optimization is a no-op for join-free plans.
        """
        wrappers: list[PlanNode] = []
        body = plan
        while isinstance(body, (Exists, Project)):
            wrappers.append(body)
            body = body.child
        if not isinstance(body, Join):
            return plan

        inputs: dict[str, PlanNode] = {}
        edges: list[ForeignKey] = []
        stack: list[PlanNode] = [body]
        while stack:
            node = stack.pop()
            if isinstance(node, Join):
                edges.append(node.edge)
                stack.extend((node.left, node.right))
            else:
                table = self._input_table(node)
                inputs[table] = node
        order = self._order_edges(inputs, edges)
        ordered_body: PlanNode = inputs[order.start_table]
        joined = {order.start_table}
        for edge in order.edges:
            left_table, right_table = edge.tables()
            new_table = right_table if left_table in joined else left_table
            ordered_body = Join(ordered_body, inputs[new_table], edge)
            joined.add(new_table)

        for wrapper in reversed(wrappers):
            if isinstance(wrapper, Project):
                ordered_body = Project(ordered_body, wrapper.columns)
            else:
                ordered_body = Exists(ordered_body)
        return ordered_body

    @staticmethod
    def _input_table(node: PlanNode) -> str:
        if isinstance(node, Scan):
            return node.table
        if isinstance(node, Filter) and isinstance(node.child, Scan):
            return node.child.table
        raise QueryError(
            f"join input must be a (filtered) scan, got {node!r}"
        )

    def _order_edges(
        self, inputs: dict[str, PlanNode], edges: list[ForeignKey]
    ) -> JoinOrder:
        """Greedy cost-based ordering of a join tree's edges."""
        input_rows = {
            table: self.estimated_rows(node) for table, node in inputs.items()
        }
        start = min(input_rows, key=lambda table: (input_rows[table], table))
        joined = {start}
        current_rows = input_rows[start]
        remaining = list(edges)
        ordered: list[ForeignKey] = []
        while remaining:
            best: Optional[tuple[float, str, ForeignKey, str]] = None
            for edge in remaining:
                left, right = edge.tables()
                if left in joined and right in joined:
                    new_table = left  # redundant edge; apply as a filter
                    cost = current_rows
                elif left in joined:
                    new_table = right
                    cost = self._join_rows(
                        current_rows, input_rows[right], edge
                    )
                elif right in joined:
                    new_table = left
                    cost = self._join_rows(
                        current_rows, input_rows[left], edge
                    )
                else:
                    continue
                candidate = (cost, new_table, edge, str(edge))
                if best is None or (candidate[0], candidate[3]) < (
                    best[0], best[3]
                ):
                    best = candidate
            if best is None:
                raise QueryError("join edges do not form a connected tree")
            cost, new_table, edge, __ = best
            ordered.append(edge)
            joined.add(new_table)
            current_rows = cost
            remaining.remove(edge)
        return JoinOrder(start, tuple(ordered))

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def plan_query(
        self,
        query: ProjectJoinQuery,
        predicates: Optional[tuple[PredicateSpec, ...]] = None,
        exists: bool = False,
    ) -> PlanNode:
        """Build and optimize the logical plan of ``query``."""
        return self.optimize(
            logical_plan_for_query(query, predicates, exists=exists)
        )

    def join_order(self, query: ProjectJoinQuery) -> JoinOrder:
        """The optimized physical join order of ``query``.

        This is what the executor lowers to probe steps; it depends only
        on the query's join structure and the statistics, so it is safe
        to cache under the structure's canonical prefix key.
        """
        if not query.joins:
            return JoinOrder(next(iter(query.tables)), ())
        plan = self.plan_query(query)
        body: PlanNode = plan
        while isinstance(body, (Exists, Project)):
            body = body.child
        edges_in_order: list[ForeignKey] = []
        node = body
        while isinstance(node, Join):
            edges_in_order.append(node.edge)
            node = node.left
        edges_in_order.reverse()
        return JoinOrder(self._input_table(node), tuple(edges_in_order))

    def structure_rows(self, query: ProjectJoinQuery) -> float:
        """Estimated result cardinality of a query's optimized join
        structure, memoized per canonical join prefix.

        This is the scheduler's cost signal: validating a filter means
        probing its join structure, and the sketched estimate prices a
        dangling- or disjoint-key join as nearly free (its semijoin dies
        immediately) where raw containment would price it as huge.
        """
        self._memo_guard()
        key = join_prefix_key(query)
        cached = self._structure_memo.get(key)
        if cached is None:
            cached = self.estimated_rows(self.plan_query(query))
            self._structure_memo[key] = cached
        return cached

    def node_estimate(self, plan: PlanNode) -> tuple[float, float, str]:
        """``(rows, raw_rows, source)`` for one plan node's own estimate.

        ``source`` is ``"sketch"`` when sketch statistics (HLL overlap,
        histogram) decided this node's estimate and ``"raw"`` when the
        raw-count model did; ``raw_rows`` is what the raw model alone
        would have produced for the node (its inputs still use the
        active model).  Used by the explain renderer — never bumps the
        ``sketch_estimates_used`` counter.
        """
        was_counting = self._counting
        self._counting = False
        try:
            rows = self.estimated_rows(plan)
            if isinstance(plan, Join):
                left = self.estimated_rows(plan.left)
                right = self.estimated_rows(plan.right)
                estimate, raw, used = self.join_estimate_detail(
                    left, right, plan.edge, count=False
                )
                return estimate, raw, "sketch" if used else "raw"
            if isinstance(plan, Filter):
                child = self.estimated_rows(plan.child)
                raw = child
                used = False
                for spec in plan.specs:
                    if self._sketch_filter_selectivity(spec) is not None:
                        used = True
                    raw *= self._raw_filter_selectivity(spec)
                return rows, max(raw, 1e-9), "sketch" if used else "raw"
            return rows, rows, "raw"
        finally:
            self._counting = was_counting

    @staticmethod
    def prefix_key(query: ProjectJoinQuery) -> tuple:
        """Canonical join-prefix key (see :func:`join_prefix_key`)."""
        return join_prefix_key(query)

    @staticmethod
    def group_by_prefix(queries) -> dict[tuple, list]:
        """Group queries (or filters exposing ``.query``) by join prefix."""
        groups: dict[tuple, list] = {}
        for item in queries:
            query = getattr(item, "query", item)
            groups.setdefault(join_prefix_key(query), []).append(item)
        return groups
