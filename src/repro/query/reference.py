"""Naive reference evaluation of Project-Join queries.

This is the retained straight-line semantics of PJ evaluation: nested-loop
joins over row tuples, no planner, no pushdown, no indexes, no caches.  It
exists purely as the differential-testing oracle for the planner/executor
pipeline — the property suite runs randomized databases and candidate sets
through both paths and asserts bit-for-bit identical results.  Never use
it on a hot path.

Semantics mirrored exactly:

* inner-join: NULL join keys never match;
* a cell predicate at projection position ``p`` must accept the projected
  cell's value, and NULL cells never satisfy a predicate;
* two projections of the same column with different predicates must both
  pass (conjunction).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional

from repro.dataset.database import Database
from repro.errors import QueryError
from repro.query.pj_query import ProjectJoinQuery
from repro.query.plan import _connected_edge_order

__all__ = ["execute_reference", "exists_reference"]

CellPredicate = Callable[[Any], bool]


def execute_reference(
    database: Database,
    query: ProjectJoinQuery,
    cell_predicates: Optional[Mapping[int, CellPredicate]] = None,
) -> list[tuple[Any, ...]]:
    """Evaluate ``query`` by brute force and return its projected rows.

    Row order is implementation-defined (differential tests compare
    sorted results); everything else matches
    :meth:`~repro.query.executor.Executor.execute` exactly.
    """
    query.validate(database)
    predicates = dict(cell_predicates or {})
    for position in predicates:
        if position < 0 or position >= query.width:
            raise QueryError(
                f"cell predicate position {position} out of range "
                f"for a query of width {query.width}"
            )

    readers = {
        table_name: {
            column.name: database.table(table_name).cell_reader(column.name)
            for column in database.table(table_name).columns
        }
        for table_name in query.tables
    }

    # Order tables so each one after the first connects to an earlier one
    # through a join edge, carrying the edge it connects through.
    if query.joins:
        edge_order = _connected_edge_order(query)
        first = edge_order[0].tables()[0]
        table_order: list[tuple[str, Optional[Any]]] = [(first, None)]
        placed = {first}
        for edge in edge_order:
            left, right = edge.tables()
            new_table = right if left in placed else left
            table_order.append((new_table, edge))
            placed.add(new_table)
    else:
        table_order = [(next(iter(query.tables)), None)]

    results: list[tuple[Any, ...]] = []
    assignment: dict[str, int] = {}

    def edge_matches(edge: Any) -> bool:
        child_value = readers[edge.child_table][edge.child_column](
            assignment[edge.child_table]
        )
        parent_value = readers[edge.parent_table][edge.parent_column](
            assignment[edge.parent_table]
        )
        return (
            child_value is not None
            and parent_value is not None
            and child_value == parent_value
        )

    def emit_if_satisfied() -> None:
        cells = tuple(
            readers[ref.table][ref.column](assignment[ref.table])
            for ref in query.projections
        )
        for position, predicate in predicates.items():
            value = cells[position]
            if value is None or not predicate(value):
                return
        results.append(cells)

    def recurse(depth: int) -> None:
        if depth == len(table_order):
            emit_if_satisfied()
            return
        table_name, edge = table_order[depth]
        for row_index in range(database.table(table_name).num_rows):
            assignment[table_name] = row_index
            if edge is not None and not edge_matches(edge):
                continue
            recurse(depth + 1)
        assignment.pop(table_name, None)

    recurse(0)
    return results


def exists_reference(
    database: Database,
    query: ProjectJoinQuery,
    cell_predicates: Optional[Mapping[int, CellPredicate]] = None,
) -> bool:
    """Brute-force counterpart of :meth:`Executor.exists`."""
    return bool(execute_reference(database, query, cell_predicates))
