"""Project-Join query model, SQL rendering and hash-join execution."""

from repro.query.executor import ExecutionStats, Executor
from repro.query.pj_query import ProjectJoinQuery
from repro.query.sql import constraint_to_sql, parse_literal, render_literal, to_sql

__all__ = [
    "ExecutionStats",
    "Executor",
    "ProjectJoinQuery",
    "constraint_to_sql",
    "parse_literal",
    "render_literal",
    "to_sql",
]
