"""Project-Join query model, logical-plan IR, cost-based planner, SQL
rendering and hash-join execution."""

from repro.query.executor import BatchProbe, ExecutionStats, Executor
from repro.query.pj_query import ProjectJoinQuery
from repro.query.plan import (
    Exists,
    Filter,
    Join,
    PlanNode,
    PredicateSpec,
    Project,
    Scan,
    join_prefix_key,
    logical_plan_for_query,
)
from repro.query.planner import Planner
from repro.query.sql import (
    constraint_to_sql,
    parse_literal,
    plan_to_sql,
    render_literal,
    to_sql,
)

__all__ = [
    "BatchProbe",
    "ExecutionStats",
    "Executor",
    "Exists",
    "Filter",
    "Join",
    "PlanNode",
    "Planner",
    "PredicateSpec",
    "Project",
    "ProjectJoinQuery",
    "Scan",
    "constraint_to_sql",
    "join_prefix_key",
    "logical_plan_for_query",
    "parse_literal",
    "plan_to_sql",
    "render_literal",
    "to_sql",
]
