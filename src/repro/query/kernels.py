"""Array kernels for existence probes over NumPy-backed tables.

The executor's generic existence path streams per-row join assignments
through Python frames — perfect for early termination, but on a *false*
probe it enumerates a join product just to prove nothing is there.  For
backends that expose column array snapshots
(:meth:`~repro.storage.numpy_store.NumpyColumnStore.column_kernel`),
this module decides the same probes with a bottom-up semijoin sweep
instead:

every physical plan is a tree of probe steps (each step attaches one new
table), so processing the steps in *reverse* order visits every subtree
before its root.  One step folds the new table's surviving-row mask into
the existing side — ``mask[existing] &= existing key ∈ keys(new rows
still alive)`` — as one vectorized membership test, and after the sweep
the start table's mask is non-empty iff the join has at least one result
row.  A probe over k tables of n rows costs O(k·n log n) in C instead of
a Python-frame walk of the join.

Key comparisons must match the generic path *exactly*:

* **text ⋈ text** compares dictionary codes after translating one
  column's code space into the other's (a small translate array built
  once per edge and cached);
* **same-dtype arrays** (int ⋈ int, float ⋈ float, bool ⋈ bool) compare
  raw values with ``np.isin`` masked by the NULL bitmasks;
* **everything else** — mixed dtypes (int ⋈ float, bool ⋈ int, text ⋈
  non-text) and object columns (dates, overflowed ints) — drops to a
  Python-``set`` membership kernel, preserving Python's cross-type
  equality (``True == 1 == 1.0``) bit for bit.

Float columns containing NaN are rejected wholesale
(:attr:`ColumnKernel.nan_unsafe` — NaN never equals itself, so array
membership and the dict-probing reference disagree there); the executor
then keeps the generic path.  NULL keys never match (SQL semantics): the
text kernel's NULL code ``-1`` can never appear in a translated allowed
set, and the array/set kernels intersect with the NULL masks explicitly.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.dataset.sketches import hash_values

__all__ = ["EdgeKernel", "bloom_keep", "selection_mask", "semijoin_exists"]

# Row masks are ``np.ndarray`` (bool) or ``None`` meaning "every row".
_Mask = Optional[np.ndarray]


def selection_mask(size: int, selection) -> np.ndarray:
    """A boolean row mask with exactly ``selection``'s indexes set."""
    mask = np.zeros(size, dtype=np.bool_)
    if selection:
        mask[np.fromiter(selection, dtype=np.int64, count=len(selection))] = True
    return mask


def bloom_keep(kernel, rows: list, bloom) -> list:
    """Rows of ``rows`` whose key in ``kernel`` may be in ``bloom``.

    Vectorized pre-filter for the executor's Bloom probe pruning: gathers
    the selected rows' keys from an array-kind :class:`ColumnKernel`,
    hashes them through the sketch layer's canonical value hash, and
    keeps only rows whose key the Bloom filter does not rule out.  NULL
    keys are dropped (they can never join).  The hash equality classes
    match the scalar path exactly, so this returns the same subset, in
    the same order, as a per-row ``bloom.might_contain`` loop.
    """
    index = np.fromiter(rows, dtype=np.int64, count=len(rows))
    valid = kernel.valid[index]
    keep = valid.copy()
    if keep.any():
        hashes = hash_values(kernel.keys[index][valid])
        keep[valid] = bloom.contains_hashes(hashes)
    return [row for row, kept in zip(rows, keep.tolist()) if kept]


class EdgeKernel:
    """One join edge lowered onto two :class:`ColumnKernel` snapshots.

    Bound to specific kernel objects (``existing``/``new``): backends
    publish a fresh kernel after every append, so callers revalidate a
    cached edge by kernel identity and rebuild on mismatch.  The
    fully-unconstrained fold (``new_mask is None`` — by far the common
    case for interior tables of a probe) is computed once and cached.
    """

    __slots__ = ("existing", "new", "mode", "_translate", "_full_keep")

    def __init__(self, existing, new):
        self.existing = existing
        self.new = new
        self._full_keep: Optional[np.ndarray] = None
        if existing.kind == "text" and new.kind == "text":
            self.mode = "text"
            # new-side code → existing-side code (-1: absent from the
            # existing dictionary, matches nothing).
            self._translate = np.fromiter(
                (existing.code_of.get(entry, -1) for entry in new.dictionary),
                dtype=np.int64,
                count=len(new.dictionary),
            )
        elif (
            existing.kind == "array"
            and new.kind == "array"
            and existing.keys.dtype == new.keys.dtype
        ):
            self.mode = "array"
            self._translate = None
        else:
            self.mode = "set"
            self._translate = None

    def keep_existing(self, new_mask: _Mask) -> np.ndarray:
        """Existing-side rows whose key survives on the new side.

        Returns a fresh (or cached, never subsequently mutated) boolean
        array over the existing table's rows; NULL keys are always
        False.
        """
        if new_mask is None:
            keep = self._full_keep
            if keep is None:
                keep = self._keep(self._allowed(None))
                self._full_keep = keep
            return keep
        return self._keep(self._allowed(new_mask))

    def _allowed(self, new_mask: _Mask) -> Any:
        """The surviving new-side keys, in the existing side's key space."""
        new = self.new
        if self.mode == "text":
            codes = new.keys if new_mask is None else new.keys[new_mask]
            codes = codes[codes >= 0]
            mapped = self._translate[codes]
            return np.unique(mapped[mapped >= 0])
        if self.mode == "array":
            valid = new.valid if new_mask is None else new_mask & new.valid
            return np.unique(new.keys[valid])
        keys = new.python_keys()
        if new_mask is None:
            return {key for key in keys if key is not None}
        return {
            key
            for key, keep in zip(keys, new_mask.tolist())
            if keep and key is not None
        }

    def _keep(self, allowed: Any) -> np.ndarray:
        existing = self.existing
        if self.mode == "text":
            # NULL code -1 can never be in `allowed` (all entries >= 0);
            # codes are small bounded ints, so the table method applies.
            if len(allowed) == 1:
                return existing.keys == allowed[0]
            return np.isin(existing.keys, allowed, kind="table")
        if self.mode == "array":
            return np.isin(existing.keys, allowed) & existing.valid
        keys = existing.python_keys()
        # `allowed` holds no None, so NULL keys fall out naturally.
        return np.fromiter(
            (key in allowed for key in keys), dtype=np.bool_, count=len(keys)
        )


def semijoin_exists(start_table: str, steps, edges, masks: dict) -> bool:
    """Whether the join admits at least one fully-assigned result row.

    ``steps``/``edges`` are the plan's probe steps with their aligned
    :class:`EdgeKernel` per step; ``masks`` maps table name → pushed-down
    row mask (missing or ``None`` = every row).  Iterating the steps in
    reverse visits children before parents (a step's new table can only
    serve as the existing side of *later* steps), so each fold sees the
    new side's mask already narrowed by its whole subtree — the upward
    pass of Yannakakis' semijoin reduction, which is exact for the tree
    joins the planner emits.  Pushdown has already ruled out empty
    tables and empty selections, so an empty mask can only arise from a
    fold, and the final fold (into ``start_table``) is emptiness-checked
    like every other.
    """
    for step, edge in zip(reversed(steps), reversed(edges)):
        keep = edge.keep_existing(masks.get(step.new_table))
        current = masks.get(step.existing_table)
        combined = keep if current is None else current & keep
        if not combined.any():
            return False
        masks[step.existing_table] = combined
    return True
