"""SQL rendering for Project-Join queries.

The Result section of the demo shows the synthesized queries as SQL text
(Figure 4b).  Join trees never repeat a table, so no aliases are required
and the classic ``SELECT ... FROM ... WHERE`` comma-join form used in the
paper's example is emitted.
"""

from __future__ import annotations

from repro.query.pj_query import ProjectJoinQuery

__all__ = ["to_sql"]


def _quote_identifier(name: str) -> str:
    """Quote an identifier only when it would otherwise be ambiguous."""
    if name.isidentifier():
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def to_sql(query: ProjectJoinQuery, pretty: bool = False) -> str:
    """Render ``query`` as a SQL string.

    Args:
        query: the Project-Join query to render.
        pretty: when ``True``, place each clause on its own line.
    """
    select_list = ", ".join(
        f"{_quote_identifier(ref.table)}.{_quote_identifier(ref.column)}"
        for ref in query.projections
    )
    tables = sorted(query.tables)
    from_list = ", ".join(_quote_identifier(table) for table in tables)
    conditions = [
        (
            f"{_quote_identifier(edge.child_table)}."
            f"{_quote_identifier(edge.child_column)} = "
            f"{_quote_identifier(edge.parent_table)}."
            f"{_quote_identifier(edge.parent_column)}"
        )
        for edge in query.joins
    ]
    separator = "\n" if pretty else " "
    parts = [f"SELECT {select_list}", f"FROM {from_list}"]
    if conditions:
        parts.append("WHERE " + " AND ".join(conditions))
    return separator.join(parts)
