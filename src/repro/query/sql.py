"""SQL rendering for Project-Join queries and logical plans.

The Result section of the demo shows the synthesized queries as SQL text
(Figure 4b).  Join trees never repeat a table, so no aliases are required
and the classic ``SELECT ... FROM ... WHERE`` comma-join form used in the
paper's example is emitted.  Rendering goes through the logical-plan IR:
:func:`to_sql` builds the plan of its query and hands it to
:func:`plan_to_sql`, so the SQL text is by construction a rendering of
the same structure the planner optimizes and the executor runs.

Passing the user's :class:`~repro.constraints.spec.MappingSpec` renders
the sample-value constraints as WHERE predicates too.  Sample cells are
user-typed text — names like ``O'Brien`` or disjunction syntax like
``California || Nevada`` must survive the trip into SQL — so every
constant goes through :func:`render_literal`, which escapes embedded
single quotes by doubling them (the one escape mechanism standard SQL
defines).  :func:`parse_literal` is the exact inverse, used by the
escaping round-trip tests.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.constraints.spec import MappingSpec
from repro.constraints.values import (
    AnyValue,
    Conjunction,
    Disjunction,
    ExactValue,
    OneOf,
    Predicate,
    Range,
    ValueConstraint,
)
from repro.errors import QueryError
from repro.query.pj_query import ProjectJoinQuery
from repro.query.plan import (
    Join,
    PlanNode,
    Project,
    logical_plan_for_query,
)

__all__ = [
    "to_sql",
    "plan_to_sql",
    "render_literal",
    "parse_literal",
    "constraint_to_sql",
]


def _quote_identifier(name: str) -> str:
    """Quote an identifier only when it would otherwise be ambiguous."""
    if name.isidentifier():
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def render_literal(value: Any) -> str:
    """Render a Python constant as a SQL literal.

    Strings are single-quoted with embedded single quotes doubled
    (``O'Brien`` → ``'O''Brien'``); other content — ``||``, semicolons,
    comment markers — needs no escaping once inside a correctly quoted
    string.  ``None`` renders as ``NULL`` and booleans as ``TRUE``/
    ``FALSE`` (before the int check: ``bool`` subclasses ``int``).
    """
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    return "'" + text.replace("'", "''") + "'"


def parse_literal(text: str) -> Any:
    """The inverse of :func:`render_literal` (round-trip support).

    Raises :class:`QueryError` for malformed literals, e.g. a quoted
    string with an unescaped embedded quote.
    """
    stripped = text.strip()
    upper = stripped.upper()
    if upper == "NULL":
        return None
    if upper == "TRUE":
        return True
    if upper == "FALSE":
        return False
    if stripped.startswith("'"):
        if len(stripped) < 2 or not stripped.endswith("'"):
            raise QueryError(f"unterminated string literal: {text!r}")
        body = stripped[1:-1]
        # Every remaining quote must come in escaped pairs.
        unescaped = body.replace("''", "")
        if "'" in unescaped:
            raise QueryError(f"unescaped quote inside string literal: {text!r}")
        return body.replace("''", "'")
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError as exc:
        raise QueryError(f"unrecognized SQL literal: {text!r}") from exc


def constraint_to_sql(column_sql: str, constraint: ValueConstraint) -> str:
    """Render one value constraint as a SQL predicate over ``column_sql``."""
    if isinstance(constraint, ExactValue):
        return f"{column_sql} = {render_literal(constraint.value)}"
    if isinstance(constraint, OneOf):
        if len(constraint.values) == 1:
            return f"{column_sql} = {render_literal(constraint.values[0])}"
        rendered = ", ".join(render_literal(value) for value in constraint.values)
        return f"{column_sql} IN ({rendered})"
    if isinstance(constraint, Range):
        parts = []
        if constraint.low is not None:
            op = ">=" if constraint.low_inclusive else ">"
            parts.append(f"{column_sql} {op} {render_literal(constraint.low)}")
        if constraint.high is not None:
            op = "<=" if constraint.high_inclusive else "<"
            parts.append(f"{column_sql} {op} {render_literal(constraint.high)}")
        return " AND ".join(parts)
    if isinstance(constraint, Predicate):
        op = {"==": "=", "!=": "<>"}.get(constraint.op, constraint.op)
        return f"{column_sql} {op} {render_literal(constraint.constant)}"
    if isinstance(constraint, Conjunction):
        joined = " AND ".join(
            constraint_to_sql(column_sql, part) for part in constraint.parts
        )
        return f"({joined})"
    if isinstance(constraint, Disjunction):
        joined = " OR ".join(
            constraint_to_sql(column_sql, part) for part in constraint.parts
        )
        return f"({joined})"
    if isinstance(constraint, AnyValue):
        return f"{column_sql} IS NOT NULL"
    # User-defined constraint classes have no SQL equivalent; the cell
    # being non-NULL is the only part expressible in the rendered query.
    return f"{column_sql} IS NOT NULL"


def _sample_predicates(projections, spec: MappingSpec) -> list[str]:
    """One parenthesized AND-group per sample row carrying constraints."""
    groups = []
    for sample in spec.samples:
        parts = []
        for position, ref in enumerate(projections):
            if position >= sample.width:
                break
            cell = sample.cell(position)
            if cell is None:
                continue
            column_sql = (
                f"{_quote_identifier(ref.table)}.{_quote_identifier(ref.column)}"
            )
            parts.append(constraint_to_sql(column_sql, cell))
        if parts:
            groups.append("(" + " AND ".join(parts) + ")")
    return groups


def _join_conditions(node: PlanNode) -> list[str]:
    """Join predicates collected bottom-up (first-joined edge first)."""
    if isinstance(node, Join):
        conditions = _join_conditions(node.left)
        conditions.extend(_join_conditions(node.right))
        edge = node.edge
        conditions.append(
            f"{_quote_identifier(edge.child_table)}."
            f"{_quote_identifier(edge.child_column)} = "
            f"{_quote_identifier(edge.parent_table)}."
            f"{_quote_identifier(edge.parent_column)}"
        )
        return conditions
    conditions = []
    for child in node.children():
        conditions.extend(_join_conditions(child))
    return conditions


def plan_to_sql(
    plan: PlanNode,
    pretty: bool = False,
    spec: Optional[MappingSpec] = None,
) -> str:
    """Render a logical plan as a SQL string.

    The plan must contain a :class:`~repro.query.plan.Project` node (every
    plan built from a PJ query does).  Join predicates are emitted in the
    plan's join order; symbolic :class:`~repro.query.plan.Filter` nodes
    are not rendered — cell predicates are arbitrary Python callables —
    but a ``spec``'s sample-value constraints are, exactly as before.
    """
    project = next(
        (node for node in plan.walk() if isinstance(node, Project)), None
    )
    if project is None:
        raise QueryError("cannot render a plan without a Project node")
    select_list = ", ".join(
        f"{_quote_identifier(ref.table)}.{_quote_identifier(ref.column)}"
        for ref in project.columns
    )
    tables = sorted(plan.tables)
    from_list = ", ".join(_quote_identifier(table) for table in tables)
    conditions = _join_conditions(plan)
    if spec is not None:
        groups = _sample_predicates(project.columns, spec)
        if groups:
            conditions.append(
                groups[0] if len(groups) == 1 else "(" + " OR ".join(groups) + ")"
            )
    separator = "\n" if pretty else " "
    parts = [f"SELECT {select_list}", f"FROM {from_list}"]
    if conditions:
        parts.append("WHERE " + " AND ".join(conditions))
    return separator.join(parts)


def to_sql(
    query: ProjectJoinQuery,
    pretty: bool = False,
    spec: Optional[MappingSpec] = None,
) -> str:
    """Render ``query`` as a SQL string (via its logical plan).

    Args:
        query: the Project-Join query to render.
        pretty: when ``True``, place each clause on its own line.
        spec: when given, the spec's sample-value constraints are rendered
            as additional WHERE predicates (one OR-connected group per
            sample row), with all constants escaped via
            :func:`render_literal`.
    """
    return plan_to_sql(logical_plan_for_query(query), pretty=pretty, spec=spec)
