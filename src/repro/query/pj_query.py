"""Project-Join (PJ) query model.

The paper restricts synthesized schema mappings to Project-Join queries
(§2.1, "System Output").  A :class:`ProjectJoinQuery` is an ordered tuple of
projected columns (one per target-schema column) plus a set of foreign-key
join edges forming a tree over the participating tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.dataset.database import Database
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.errors import QueryError

__all__ = ["ProjectJoinQuery"]


@dataclass(frozen=True)
class ProjectJoinQuery:
    """An immutable Project-Join query.

    Attributes:
        projections: projected columns, in target-schema order.
        joins: foreign-key edges; must form a tree whose tables include
            every projection's table.
    """

    projections: tuple[ColumnRef, ...]
    joins: tuple[ForeignKey, ...] = ()

    def __post_init__(self) -> None:
        if not self.projections:
            raise QueryError("a PJ query must project at least one column")
        object.__setattr__(self, "projections", tuple(self.projections))
        object.__setattr__(self, "joins", tuple(self.joins))

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    @property
    def tables(self) -> frozenset[str]:
        """All tables referenced by projections or joins.

        Computed once and cached on the (immutable) query: the planner,
        the prefix-grouping driver and validation all ask for this
        repeatedly on hot paths.
        """
        cached = self.__dict__.get("_tables")
        if cached is None:
            tables = {ref.table for ref in self.projections}
            for edge in self.joins:
                tables.update(edge.tables())
            cached = frozenset(tables)
            object.__setattr__(self, "_tables", cached)
        return cached

    @property
    def join_size(self) -> int:
        """Number of join edges (0 for a single-table query)."""
        return len(self.joins)

    @property
    def width(self) -> int:
        """Number of projected columns."""
        return len(self.projections)

    def projection_positions(self, table: str) -> list[int]:
        """Positions of projections drawn from ``table``."""
        return [
            position
            for position, ref in enumerate(self.projections)
            if ref.table == table
        ]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def is_tree(self) -> bool:
        """Whether the join edges form a single tree over the tables.

        An empty join set is a tree only when all projections come from a
        single table.
        """
        tables = self.tables
        if not self.joins:
            return len(tables) == 1
        # A connected graph with |V| - 1 edges is a tree.
        edge_tables: set[str] = set()
        for edge in self.joins:
            edge_tables.update(edge.tables())
        if not tables <= edge_tables | {next(iter(tables))}:
            # Some projected table is not touched by any join edge.
            projected = {ref.table for ref in self.projections}
            if not projected <= edge_tables:
                return False
        if len(self.joins) != len(edge_tables) - 1:
            return False
        return self._connected(edge_tables)

    def _connected(self, tables: set[str]) -> bool:
        adjacency: dict[str, set[str]] = {table: set() for table in tables}
        for edge in self.joins:
            left, right = edge.tables()
            adjacency[left].add(right)
            adjacency[right].add(left)
        start = next(iter(tables))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return seen == tables

    def validate(self, database: Database) -> None:
        """Check every referenced table/column exists and joins form a tree."""
        for ref in self.projections:
            table = database.table(ref.table)
            if not table.has_column(ref.column):
                raise QueryError(f"unknown projected column: {ref}")
        for edge in self.joins:
            for table_name, column_name in (
                (edge.child_table, edge.child_column),
                (edge.parent_table, edge.parent_column),
            ):
                table = database.table(table_name)
                if not table.has_column(column_name):
                    raise QueryError(
                        f"join references unknown column {table_name}.{column_name}"
                    )
        if not self.is_tree():
            raise QueryError("join edges do not form a tree over the query tables")
        projected_tables = {ref.table for ref in self.projections}
        join_tables: set[str] = set()
        for edge in self.joins:
            join_tables.update(edge.tables())
        if self.joins and not projected_tables <= join_tables:
            raise QueryError(
                "every projected table must participate in the join tree"
            )

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def subquery(
        self,
        tables: Iterable[str],
        positions: Optional[Sequence[int]] = None,
    ) -> "ProjectJoinQuery":
        """A sub-PJ-query restricted to ``tables``.

        Keeps only join edges with both endpoints inside ``tables`` and, by
        default, only the projections whose table is inside ``tables``.
        This is the operation used to derive *filters* from candidates.
        """
        table_set = set(tables)
        kept_joins = tuple(
            edge for edge in self.joins if set(edge.tables()) <= table_set
        )
        if positions is None:
            kept_projections = tuple(
                ref for ref in self.projections if ref.table in table_set
            )
        else:
            kept_projections = tuple(self.projections[i] for i in positions)
        if not kept_projections:
            raise QueryError("subquery would project no columns")
        return ProjectJoinQuery(kept_projections, kept_joins)

    def signature(self) -> tuple:
        """A hashable canonical signature (used for deduplication)."""
        return (
            self.projections,
            tuple(sorted((str(edge) for edge in self.joins))),
        )

    def __str__(self) -> str:
        from repro.query.sql import to_sql

        return to_sql(self)
