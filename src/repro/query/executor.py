"""Hash-join execution of Project-Join queries.

The executor evaluates PJ queries against an in-memory :class:`Database`.
It supports two features the discovery pipeline relies on heavily:

* **predicate pushdown** — per-projection cell predicates (derived from the
  user's value constraints) are applied to base-table rows *before* joining,
  which is both realistic (a DBMS would use its indexes the same way) and
  essential for fast filter validation;
* **early termination** — an optional ``limit`` stops execution as soon as
  enough result rows have been produced, so existence checks cost close to
  nothing when a match is found early.

Inner-join semantics follow SQL: NULL join keys never match.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.dataset.database import Database
from repro.dataset.schema import ForeignKey
from repro.errors import QueryError
from repro.query.pj_query import ProjectJoinQuery

__all__ = ["Executor", "ExecutionStats"]

CellPredicate = Callable[[Any], bool]


@dataclass
class ExecutionStats:
    """Counters accumulated by an :class:`Executor` across calls."""

    queries_executed: int = 0
    rows_scanned: int = 0
    rows_emitted: int = 0
    joins_performed: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another stats object into this one."""
        self.queries_executed += other.queries_executed
        self.rows_scanned += other.rows_scanned
        self.rows_emitted += other.rows_emitted
        self.joins_performed += other.joins_performed


class Executor:
    """Evaluates Project-Join queries with hash joins."""

    def __init__(self, database: Database):
        self._database = database
        self.stats = ExecutionStats()

    @property
    def database(self) -> Database:
        """The database this executor evaluates queries against."""
        return self._database

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(
        self,
        query: ProjectJoinQuery,
        cell_predicates: Optional[Mapping[int, CellPredicate]] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[Any, ...]]:
        """Execute ``query`` and return its projected result rows.

        Args:
            query: the PJ query to execute.
            cell_predicates: optional mapping from projection position to a
                predicate the projected cell must satisfy; rows failing any
                predicate are excluded (and pruned before joining).
            limit: stop after this many result rows (None = no limit).
        """
        query.validate(self._database)
        self.stats.queries_executed += 1
        predicates = dict(cell_predicates or {})
        for position in predicates:
            if position < 0 or position >= query.width:
                raise QueryError(
                    f"cell predicate position {position} out of range "
                    f"for a query of width {query.width}"
                )

        per_table_rows = self._filtered_base_rows(query, predicates)
        if per_table_rows is None:
            return []

        join_order = self._join_order(query)
        partials = self._join(query, per_table_rows, join_order)

        results: list[tuple[Any, ...]] = []
        for assignment in partials:
            row = tuple(
                assignment[ref.table][
                    self._database.table(ref.table).column_position(ref.column)
                ]
                for ref in query.projections
            )
            results.append(row)
            self.stats.rows_emitted += 1
            if limit is not None and len(results) >= limit:
                break
        return results

    def exists(
        self,
        query: ProjectJoinQuery,
        cell_predicates: Optional[Mapping[int, CellPredicate]] = None,
    ) -> bool:
        """Whether at least one result row satisfies all cell predicates."""
        return bool(self.execute(query, cell_predicates=cell_predicates, limit=1))

    def count(self, query: ProjectJoinQuery) -> int:
        """Number of result rows of ``query``."""
        return len(self.execute(query))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _filtered_base_rows(
        self,
        query: ProjectJoinQuery,
        predicates: Mapping[int, CellPredicate],
    ) -> Optional[dict[str, list[tuple[Any, ...]]]]:
        """Base rows per table after predicate pushdown.

        Returns ``None`` when some table's filtered row set is empty, which
        means the overall (inner-join) result is necessarily empty.
        """
        # Group predicates by (table, column position in base table).
        per_table_predicates: dict[str, list[tuple[int, CellPredicate]]] = defaultdict(list)
        for position, predicate in predicates.items():
            ref = query.projections[position]
            column_position = self._database.table(ref.table).column_position(ref.column)
            per_table_predicates[ref.table].append((column_position, predicate))

        per_table_rows: dict[str, list[tuple[Any, ...]]] = {}
        for table_name in query.tables:
            table = self._database.table(table_name)
            rows = table.rows
            self.stats.rows_scanned += len(rows)
            checks = per_table_predicates.get(table_name)
            if checks:
                rows = [
                    row
                    for row in rows
                    if all(
                        row[column_position] is not None
                        and predicate(row[column_position])
                        for column_position, predicate in checks
                    )
                ]
            if not rows:
                return None
            per_table_rows[table_name] = rows
        return per_table_rows

    def _join_order(self, query: ProjectJoinQuery) -> list[ForeignKey]:
        """Order join edges so each edge touches an already-joined table."""
        if not query.joins:
            return []
        remaining = list(query.joins)
        ordered: list[ForeignKey] = []
        joined_tables = {query.projections[0].table}
        # The projection table might not be an endpoint of the first edge in
        # pathological orders; seed from any edge if necessary.
        if not any(table in joined_tables for edge in remaining for table in edge.tables()):
            joined_tables = {remaining[0].tables()[0]}
        while remaining:
            progressed = False
            for edge in list(remaining):
                left, right = edge.tables()
                if left in joined_tables or right in joined_tables:
                    ordered.append(edge)
                    joined_tables.update((left, right))
                    remaining.remove(edge)
                    progressed = True
            if not progressed:
                raise QueryError("join edges do not form a connected tree")
        return ordered

    def _join(
        self,
        query: ProjectJoinQuery,
        per_table_rows: dict[str, list[tuple[Any, ...]]],
        join_order: Sequence[ForeignKey],
    ) -> list[dict[str, tuple[Any, ...]]]:
        """Perform the hash joins, returning per-table row assignments."""
        if not join_order:
            only_table = next(iter(query.tables))
            return [{only_table: row} for row in per_table_rows[only_table]]

        first_left, first_right = join_order[0].tables()
        start_table = first_left
        partials: list[dict[str, tuple[Any, ...]]] = [
            {start_table: row} for row in per_table_rows[start_table]
        ]
        joined_tables = {start_table}

        for edge in join_order:
            left, right = edge.tables()
            if left in joined_tables and right in joined_tables:
                # Both sides already joined (cannot happen for trees, but be
                # defensive): apply the condition as a post-filter.
                partials = [
                    assignment
                    for assignment in partials
                    if self._edge_matches(assignment, edge)
                ]
                continue
            if left in joined_tables:
                existing_table, new_table = left, right
            else:
                existing_table, new_table = right, left
                if right not in joined_tables:
                    # Neither endpoint joined yet — cannot happen when
                    # _join_order succeeded; guard anyway.
                    raise QueryError("disconnected join order")

            existing_column, new_column = self._edge_columns(
                edge, existing_table, new_table
            )
            new_table_obj = self._database.table(new_table)
            new_position = new_table_obj.column_position(new_column)
            hash_table: dict[Any, list[tuple[Any, ...]]] = defaultdict(list)
            for row in per_table_rows[new_table]:
                key = row[new_position]
                if key is None:
                    continue
                hash_table[key].append(row)

            existing_position = self._database.table(existing_table).column_position(
                existing_column
            )
            next_partials: list[dict[str, tuple[Any, ...]]] = []
            for assignment in partials:
                key = assignment[existing_table][existing_position]
                if key is None:
                    continue
                for row in hash_table.get(key, ()):
                    extended = dict(assignment)
                    extended[new_table] = row
                    next_partials.append(extended)
            partials = next_partials
            joined_tables.add(new_table)
            self.stats.joins_performed += 1
            if not partials:
                return []
        return partials

    def _edge_columns(
        self, edge: ForeignKey, existing_table: str, new_table: str
    ) -> tuple[str, str]:
        if edge.child_table == existing_table and edge.parent_table == new_table:
            return edge.child_column, edge.parent_column
        if edge.parent_table == existing_table and edge.child_table == new_table:
            return edge.parent_column, edge.child_column
        raise QueryError(
            f"join edge {edge} does not connect {existing_table} and {new_table}"
        )

    def _edge_matches(
        self, assignment: dict[str, tuple[Any, ...]], edge: ForeignKey
    ) -> bool:
        child_row = assignment[edge.child_table]
        parent_row = assignment[edge.parent_table]
        child_value = child_row[
            self._database.table(edge.child_table).column_position(edge.child_column)
        ]
        parent_value = parent_row[
            self._database.table(edge.parent_table).column_position(edge.parent_column)
        ]
        if child_value is None or parent_value is None:
            return False
        return child_value == parent_value
