"""Vectorized hash-join execution of Project-Join queries.

The executor evaluates PJ queries against an in-memory :class:`Database`
whose tables live in a columnar storage backend.  The execution model is
column- and index-oriented:

* **predicate pushdown over column arrays** — per-projection cell
  predicates (derived from the user's value constraints) are evaluated
  directly against base-table columns, producing row-index selections;
  dictionary-encoded text columns evaluate each predicate once per
  distinct value instead of once per row;
* **reusable join indexes** — the value → row-indexes hash index for a
  join key column is built once per (table, column) and cached on the
  storage backend, so the thousands of existence probes issued during
  filter validation reuse it instead of rebuilding hash tables per query
  (hits and builds are counted in :class:`ExecutionStats`);
* **lazy join evaluation with early termination** — join results are
  produced as a stream of per-table row-index assignments, so an optional
  ``limit`` (and in particular ``exists()``'s ``limit=1``) stops work at
  the first match instead of materializing the full join;
* **an existence-memo cache** — ``exists()`` outcomes can be memoized
  under a caller-supplied canonical (query, predicate) signature and are
  invalidated automatically when the database changes.

Inner-join semantics follow SQL: NULL join keys never match.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

from repro.dataset.database import Database
from repro.dataset.schema import ForeignKey
from repro.errors import QueryError
from repro.query.pj_query import ProjectJoinQuery

__all__ = ["Executor", "ExecutionStats"]

CellPredicate = Callable[[Any], bool]

# Selections are row-index lists; None means "every row" (no predicate).
_Selection = Optional[list[int]]

# Caps on the per-executor caches so a long-lived session over a static
# database cannot grow without bound; oldest entries are evicted first.
MAX_EXISTS_MEMO_ENTRIES = 100_000
MAX_PLAN_CACHE_ENTRIES = 10_000


@dataclass
class ExecutionStats:
    """Counters accumulated by an :class:`Executor` across calls."""

    queries_executed: int = 0
    rows_scanned: int = 0
    rows_emitted: int = 0
    joins_performed: int = 0
    join_index_hits: int = 0
    join_index_builds: int = 0
    exists_cache_hits: int = 0
    exists_cache_misses: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another stats object into this one."""
        self.queries_executed += other.queries_executed
        self.rows_scanned += other.rows_scanned
        self.rows_emitted += other.rows_emitted
        self.joins_performed += other.joins_performed
        self.join_index_hits += other.join_index_hits
        self.join_index_builds += other.join_index_builds
        self.exists_cache_hits += other.exists_cache_hits
        self.exists_cache_misses += other.exists_cache_misses


@dataclass(frozen=True)
class _ProbeStep:
    """One hash-join step: probe ``new_table``'s join index from the
    already-joined ``existing_table`` side."""

    existing_table: str
    existing_position: int
    new_table: str
    new_position: int


@dataclass(frozen=True)
class _FilterStep:
    """Both endpoints already joined: apply the edge as a post-filter."""

    child_table: str
    child_position: int
    parent_table: str
    parent_position: int


@dataclass(frozen=True)
class _JoinPlan:
    """A query's join strategy (depends only on its structure, not data)."""

    start_table: str
    steps: tuple[Any, ...]  # _ProbeStep | _FilterStep


class _ResolvedProbe:
    """A _ProbeStep bound to this execution's index, readers and selection."""

    __slots__ = ("existing_table", "existing_reader", "new_table", "index",
                 "selection_set")

    def __init__(self, existing_table, existing_reader, new_table, index,
                 selection_set):
        self.existing_table = existing_table
        self.existing_reader = existing_reader
        self.new_table = new_table
        self.index = index
        self.selection_set = selection_set


class _ResolvedFilter:
    """A _FilterStep bound to this execution's cell readers."""

    __slots__ = ("child_table", "child_reader", "parent_table", "parent_reader")

    def __init__(self, child_table, child_reader, parent_table, parent_reader):
        self.child_table = child_table
        self.child_reader = child_reader
        self.parent_table = parent_table
        self.parent_reader = parent_reader


class Executor:
    """Evaluates Project-Join queries with cached, vectorized hash joins."""

    def __init__(self, database: Database):
        self._database = database
        self.stats = ExecutionStats()
        self._plan_cache: dict[tuple, _JoinPlan] = {}
        self._plan_schema_version: Optional[int] = None
        self._exists_memo: dict[Any, bool] = {}
        self._memo_data_version: Optional[tuple[int, int, int]] = None

    @property
    def database(self) -> Database:
        """The database this executor evaluates queries against."""
        return self._database

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(
        self,
        query: ProjectJoinQuery,
        cell_predicates: Optional[Mapping[int, CellPredicate]] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[Any, ...]]:
        """Execute ``query`` and return its projected result rows.

        Args:
            query: the PJ query to execute.
            cell_predicates: optional mapping from projection position to a
                predicate the projected cell must satisfy; rows failing any
                predicate are excluded (and pruned before joining).
            limit: stop after this many result rows (None = no limit).
        """
        prepared = self._prepare(query, cell_predicates)
        if prepared is None or (limit is not None and limit <= 0):
            return []
        selections, plan = prepared

        projectors = [
            (self._database.table(ref.table).cell_reader(ref.column), ref.table)
            for ref in query.projections
        ]

        results: list[tuple[Any, ...]] = []
        for assignment in self._assignments(query, selections, plan):
            results.append(
                tuple(reader(assignment[table]) for reader, table in projectors)
            )
            self.stats.rows_emitted += 1
            if limit is not None and len(results) >= limit:
                break
        return results

    def exists(
        self,
        query: ProjectJoinQuery,
        cell_predicates: Optional[Mapping[int, CellPredicate]] = None,
        cache_key: Optional[Any] = None,
    ) -> bool:
        """Whether at least one result row satisfies all cell predicates.

        Args:
            query: the PJ query to probe.
            cell_predicates: optional per-projection-position predicates.
            cache_key: optional hashable canonical signature of
                ``(query, cell_predicates)``.  When given, the outcome is
                memoized on this executor and returned directly on repeat
                probes; the memo is dropped whenever the database changes.
                Callers must guarantee the key fully determines the probe.
        """
        if cache_key is None:
            return bool(self.execute(query, cell_predicates=cell_predicates, limit=1))
        memo = self._current_memo()
        cached = memo.get(cache_key)
        if cached is not None:
            self.stats.exists_cache_hits += 1
            return cached
        self.stats.exists_cache_misses += 1
        outcome = bool(self.execute(query, cell_predicates=cell_predicates, limit=1))
        if len(memo) >= MAX_EXISTS_MEMO_ENTRIES:
            del memo[next(iter(memo))]
        memo[cache_key] = outcome
        return outcome

    def count(
        self,
        query: ProjectJoinQuery,
        cell_predicates: Optional[Mapping[int, CellPredicate]] = None,
    ) -> int:
        """Number of result rows of ``query`` (no row materialization)."""
        prepared = self._prepare(query, cell_predicates)
        if prepared is None:
            return 0
        selections, plan = prepared
        return sum(1 for _ in self._assignments(query, selections, plan))

    # ------------------------------------------------------------------
    # Preparation: validation, pushdown, planning
    # ------------------------------------------------------------------
    def _prepare(
        self,
        query: ProjectJoinQuery,
        cell_predicates: Optional[Mapping[int, CellPredicate]],
    ) -> Optional[tuple[dict[str, _Selection], _JoinPlan]]:
        """Validate, push predicates down and plan joins.

        Returns ``None`` when pushdown proves the result empty.  Counts
        the query and its scans in :attr:`stats` either way.
        """
        query.validate(self._database)
        self.stats.queries_executed += 1
        predicates = dict(cell_predicates or {})
        for position in predicates:
            if position < 0 or position >= query.width:
                raise QueryError(
                    f"cell predicate position {position} out of range "
                    f"for a query of width {query.width}"
                )
        selections = self._pushdown(query, predicates)
        if selections is None:
            return None
        return selections, self._plan(query)

    def _pushdown(
        self,
        query: ProjectJoinQuery,
        predicates: Mapping[int, CellPredicate],
    ) -> Optional[dict[str, _Selection]]:
        """Evaluate cell predicates against base-table columns.

        Returns per-table row-index selections (``None`` entry = all rows),
        or ``None`` overall when some table's selection is empty — the
        inner-join result is then necessarily empty.
        """
        per_table_predicates: dict[str, list[tuple[str, CellPredicate]]] = defaultdict(list)
        for position, predicate in predicates.items():
            ref = query.projections[position]
            per_table_predicates[ref.table].append((ref.column, predicate))

        selections: dict[str, _Selection] = {}
        for table_name in query.tables:
            table = self._database.table(table_name)
            self.stats.rows_scanned += table.num_rows
            checks = per_table_predicates.get(table_name)
            if not checks:
                selections[table_name] = None
                if table.num_rows == 0:
                    return None
                continue
            column_name, predicate = checks[0]
            selected = table.select_rows(column_name, predicate)
            # Further predicates probe only the surviving rows rather than
            # re-scanning the whole column.
            for column_name, predicate in checks[1:]:
                if not selected:
                    break
                read = table.cell_reader(column_name)
                selected = [
                    index
                    for index in selected
                    if (value := read(index)) is not None and predicate(value)
                ]
            if not selected:
                return None
            selections[table_name] = selected
        return selections

    def _plan(self, query: ProjectJoinQuery) -> _JoinPlan:
        """Resolve the join order into concrete probe/filter steps.

        Plans depend only on query structure and the schema's column
        layout, so they are cached by the query's canonical signature and
        discarded whenever the database schema changes (a table dropped
        and recreated under the same name may place columns differently).
        """
        schema_version = self._database.schema_version
        if schema_version != self._plan_schema_version:
            self._plan_cache.clear()
            self._plan_schema_version = schema_version
        signature = query.signature()
        plan = self._plan_cache.get(signature)
        if plan is not None:
            return plan

        join_order = self._join_order(query)
        if not join_order:
            plan = _JoinPlan(next(iter(query.tables)), ())
        else:
            start_table = join_order[0].tables()[0]
            joined = {start_table}
            steps: list[Any] = []
            for edge in join_order:
                left, right = edge.tables()
                if left in joined and right in joined:
                    # Both sides already joined (cannot happen for trees,
                    # but be defensive): apply the edge as a post-filter.
                    steps.append(
                        _FilterStep(
                            edge.child_table,
                            self._column_position(edge.child_table, edge.child_column),
                            edge.parent_table,
                            self._column_position(edge.parent_table, edge.parent_column),
                        )
                    )
                    continue
                if left in joined:
                    existing_table, new_table = left, right
                elif right in joined:
                    existing_table, new_table = right, left
                else:
                    # Neither endpoint joined yet — cannot happen when
                    # _join_order succeeded; guard anyway.
                    raise QueryError("disconnected join order")
                existing_column, new_column = self._edge_columns(
                    edge, existing_table, new_table
                )
                steps.append(
                    _ProbeStep(
                        existing_table,
                        self._column_position(existing_table, existing_column),
                        new_table,
                        self._column_position(new_table, new_column),
                    )
                )
                joined.add(new_table)
            plan = _JoinPlan(start_table, tuple(steps))
        if len(self._plan_cache) >= MAX_PLAN_CACHE_ENTRIES:
            del self._plan_cache[next(iter(self._plan_cache))]
        self._plan_cache[signature] = plan
        return plan

    def _column_position(self, table: str, column: str) -> int:
        return self._database.table(table).column_position(column)

    def _join_order(self, query: ProjectJoinQuery) -> list[ForeignKey]:
        """Order join edges so each edge touches an already-joined table."""
        if not query.joins:
            return []
        remaining = list(query.joins)
        ordered: list[ForeignKey] = []
        joined_tables = {query.projections[0].table}
        # The projection table might not be an endpoint of the first edge in
        # pathological orders; seed from any edge if necessary.
        if not any(table in joined_tables for edge in remaining for table in edge.tables()):
            joined_tables = {remaining[0].tables()[0]}
        while remaining:
            progressed = False
            for edge in list(remaining):
                left, right = edge.tables()
                if left in joined_tables or right in joined_tables:
                    ordered.append(edge)
                    joined_tables.update((left, right))
                    remaining.remove(edge)
                    progressed = True
            if not progressed:
                raise QueryError("join edges do not form a connected tree")
        return ordered

    def _edge_columns(
        self, edge: ForeignKey, existing_table: str, new_table: str
    ) -> tuple[str, str]:
        if edge.child_table == existing_table and edge.parent_table == new_table:
            return edge.child_column, edge.parent_column
        if edge.parent_table == existing_table and edge.child_table == new_table:
            return edge.parent_column, edge.child_column
        raise QueryError(
            f"join edge {edge} does not connect {existing_table} and {new_table}"
        )

    # ------------------------------------------------------------------
    # Lazy join evaluation
    # ------------------------------------------------------------------
    def _join_index(self, table: str, position: int) -> Mapping[Any, Sequence[int]]:
        """The backend's cached join index, with hit/build accounting."""
        backend = self._database.table(table).backend
        if backend.has_cached_join_index(table, position):
            self.stats.join_index_hits += 1
        else:
            self.stats.join_index_builds += 1
        return backend.join_index(table, position)

    def _assignments(
        self,
        query: ProjectJoinQuery,
        selections: dict[str, _Selection],
        plan: _JoinPlan,
    ) -> Iterator[dict[str, int]]:
        """Stream per-table row-index assignments satisfying all joins.

        The stream is lazy end to end: a consumer that stops early (e.g. an
        existence probe) leaves the remaining join work undone.  For speed
        a single assignment dict is reused and mutated in place — consumers
        must extract what they need before advancing the iterator.
        """
        start = plan.start_table
        start_selection = selections[start]
        if start_selection is None:
            start_rows: Sequence[int] = range(
                self._database.table(start).num_rows
            )
        else:
            start_rows = start_selection

        assignment: dict[str, int] = {}
        if not plan.steps:
            for row_index in start_rows:
                assignment[start] = row_index
                yield assignment
            return

        # Resolve each step's runtime machinery once per execution.
        resolved: list[Any] = []
        for step in plan.steps:
            if isinstance(step, _ProbeStep):
                selection = selections[step.new_table]
                resolved.append(
                    _ResolvedProbe(
                        step.existing_table,
                        self._database.table(step.existing_table).backend.cell_reader(
                            step.existing_table, step.existing_position
                        ),
                        step.new_table,
                        self._join_index(step.new_table, step.new_position),
                        None if selection is None else set(selection),
                    )
                )
                self.stats.joins_performed += 1
            else:
                resolved.append(
                    _ResolvedFilter(
                        step.child_table,
                        self._database.table(step.child_table).backend.cell_reader(
                            step.child_table, step.child_position
                        ),
                        step.parent_table,
                        self._database.table(step.parent_table).backend.cell_reader(
                            step.parent_table, step.parent_position
                        ),
                    )
                )
        last_depth = len(resolved) - 1

        def extend(depth: int) -> Iterator[dict[str, int]]:
            step = resolved[depth]
            if isinstance(step, _ResolvedProbe):
                key = step.existing_reader(assignment[step.existing_table])
                if key is None:
                    return
                rows = step.index.get(key)
                if not rows:
                    return
                new_table = step.new_table
                selection_set = step.selection_set
                if depth == last_depth:
                    for row_index in rows:
                        if selection_set is not None and row_index not in selection_set:
                            continue
                        assignment[new_table] = row_index
                        yield assignment
                else:
                    for row_index in rows:
                        if selection_set is not None and row_index not in selection_set:
                            continue
                        assignment[new_table] = row_index
                        yield from extend(depth + 1)
            else:
                child_value = step.child_reader(assignment[step.child_table])
                parent_value = step.parent_reader(assignment[step.parent_table])
                if (
                    child_value is not None
                    and parent_value is not None
                    and child_value == parent_value
                ):
                    if depth == last_depth:
                        yield assignment
                    else:
                        yield from extend(depth + 1)

        for row_index in start_rows:
            assignment.clear()
            assignment[start] = row_index
            yield from extend(0)

    # ------------------------------------------------------------------
    # Existence-memo cache
    # ------------------------------------------------------------------
    def _current_memo(self) -> dict[Any, bool]:
        """The memo dict, cleared whenever the database has changed."""
        version = self._database.data_version
        if version != self._memo_data_version:
            self._exists_memo.clear()
            self._memo_data_version = version
        return self._exists_memo

    @property
    def exists_memo_size(self) -> int:
        """Number of memoized existence outcomes currently held."""
        return len(self._exists_memo)
