"""Physical execution of logical plans with cached, vectorized hash joins.

The executor is the third stage of the query pipeline

    ``ProjectJoinQuery`` → logical plan IR → cost-based planner → executor

and evaluates plans against an in-memory :class:`Database` whose tables
live in a columnar storage backend.  The execution model is column- and
index-oriented:

* **predicate pushdown over column arrays** — per-projection cell
  predicates (derived from the user's value constraints) are evaluated
  directly against base-table columns, producing row-index selections;
  dictionary-encoded text columns evaluate each predicate once per
  distinct value instead of once per row;
* **cost-based physical plans shared across candidates** — the join
  order comes from the :class:`~repro.query.planner.Planner` (catalog
  cardinalities when available) and the lowered probe/filter steps are
  cached under the structure's *canonical plan hash*
  (:func:`~repro.query.plan.join_prefix_key`), so every candidate —
  and every filter of every candidate — joining the same tables over
  the same edges reuses one physical plan regardless of what it
  projects;
* **reusable join indexes** — the value → row-indexes hash index for a
  join key column is built once per (table, column) and cached on the
  storage backend, so the thousands of existence probes issued during
  filter validation reuse it instead of rebuilding hash tables per query
  (hits and builds are counted in :class:`ExecutionStats`);
* **lazy join evaluation with early termination** — join results are
  produced as a stream of per-table row-index assignments, so an optional
  ``limit`` (and in particular ``exists()``'s ``limit=1``) stops work at
  the first match instead of materializing the full join;
* **batched existence probes** — :meth:`Executor.exists_batch` decides
  many (query, predicates) probes sharing one join structure in a single
  pass over the shared join: per-probe pushdown runs exactly as in the
  per-candidate path, then one assignment stream (over the union of the
  surviving probes' selections) is tested against every still-undecided
  probe, terminating as soon as all are decided;
* **an existence-memo cache** — ``exists()`` outcomes can be memoized
  under a caller-supplied canonical (query, predicate) signature and are
  invalidated automatically when the database changes;
* **array semijoin kernels on NumPy-backed tables** — when every table
  of a probe lives in a backend exposing column array snapshots
  (:class:`~repro.storage.numpy_store.NumpyColumnStore`), existence
  probes — single and batched — are decided by a vectorized bottom-up
  semijoin sweep (:mod:`repro.query.kernels`) instead of streaming
  per-row assignments; outcomes and every :class:`ExecutionStats`
  counter stay bit-for-bit identical to the generic path.

Inner-join semantics follow SQL: NULL join keys never match.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

from repro.dataset.database import Database
from repro.dataset.schema import ColumnRef as _ColumnRef
from repro.errors import QueryError
from repro.query.pj_query import ProjectJoinQuery
from repro.query.plan import (
    PlanNode,
    PredicateSpec,
    _connected_edge_order,
    attach_predicates,
    join_prefix_key,
)
from repro.query.planner import Planner

try:
    from repro.query import kernels as _kernels
except ImportError:  # numpy unavailable — array fast paths stay off
    _kernels = None

__all__ = ["Executor", "ExecutionStats", "BatchProbe"]

CellPredicate = Callable[[Any], bool]

# Selections are row-index lists; None means "every row" (no predicate).
_Selection = Optional[list[int]]

# Caps on the per-executor caches so a long-lived session over a static
# database cannot grow without bound; oldest entries are evicted first.
MAX_EXISTS_MEMO_ENTRIES = 100_000
MAX_PLAN_CACHE_ENTRIES = 10_000

# Array semijoin kernels only pay off once tables have enough rows to
# amortize the per-call array overhead; below this many rows in every
# joined table the generic streaming path is used instead.  The two
# routes produce identical outcomes and identical ExecutionStats, so the
# crossover is purely a performance knob (tests pin it to 0 to force the
# kernels onto arbitrarily small databases).
KERNEL_MIN_ROWS = 256

# Bloom pre-filtering only probes selections at most this large: the
# pushed-down selections it can kill cheaply are small by construction,
# and a fixed row-count cap keeps the decision identical across backends
# and independent of wall-clock.
BLOOM_PROBE_MAX_ROWS = 2048


@dataclass
class ExecutionStats:
    """Counters accumulated by an :class:`Executor` across calls."""

    queries_executed: int = 0
    rows_scanned: int = 0
    rows_emitted: int = 0
    joins_performed: int = 0
    join_index_hits: int = 0
    join_index_builds: int = 0
    exists_cache_hits: int = 0
    exists_cache_misses: int = 0
    plan_cache_hits: int = 0
    plan_cache_builds: int = 0
    batch_executions: int = 0
    batched_probes: int = 0
    #: Probe rows discarded because a join-key Bloom filter proved their
    #: key absent from the opposite side of an edge (see _bloom_prune).
    bloom_rejections: int = 0
    #: Planner estimates that came from statistics sketches (HLL join
    #: overlap, histogram selectivity) rather than raw catalog counts.
    sketch_estimates_used: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another stats object into this one."""
        self.queries_executed += other.queries_executed
        self.rows_scanned += other.rows_scanned
        self.rows_emitted += other.rows_emitted
        self.joins_performed += other.joins_performed
        self.join_index_hits += other.join_index_hits
        self.join_index_builds += other.join_index_builds
        self.exists_cache_hits += other.exists_cache_hits
        self.exists_cache_misses += other.exists_cache_misses
        self.plan_cache_hits += other.plan_cache_hits
        self.plan_cache_builds += other.plan_cache_builds
        self.batch_executions += other.batch_executions
        self.batched_probes += other.batched_probes
        self.bloom_rejections += other.bloom_rejections
        self.sketch_estimates_used += other.sketch_estimates_used


@dataclass(frozen=True)
class BatchProbe:
    """One existence probe inside an :meth:`Executor.exists_batch` call.

    All probes of a batch must share one join structure (same tables,
    same edges — :func:`~repro.query.plan.join_prefix_key`); projections
    and predicates are free to differ.

    ``predicate_tags`` optionally names each predicate's *content* with a
    hashable token (the validation layer passes the constraint object
    itself).  Probes of one batch that tag a column's predicate
    identically share a single pushdown scan of that column — the common
    case when filters derived from the same sample constraint are
    batched across candidates.
    """

    query: ProjectJoinQuery
    cell_predicates: Optional[Mapping[int, CellPredicate]] = None
    cache_key: Optional[Any] = None
    predicate_tags: Optional[Mapping[int, Any]] = None


@dataclass(frozen=True)
class _ProbeStep:
    """One hash-join step: probe ``new_table``'s join index from the
    already-joined ``existing_table`` side."""

    existing_table: str
    existing_position: int
    new_table: str
    new_position: int


@dataclass(frozen=True)
class _FilterStep:
    """Both endpoints already joined: apply the edge as a post-filter."""

    child_table: str
    child_position: int
    parent_table: str
    parent_position: int


@dataclass(frozen=True)
class _JoinPlan:
    """A structure's physical join strategy (no per-request state)."""

    start_table: str
    steps: tuple[Any, ...]  # _ProbeStep | _FilterStep


class _ResolvedProbe:
    """A _ProbeStep bound to this execution's index, readers and selection."""

    __slots__ = ("existing_table", "existing_reader", "new_table", "index",
                 "selection_set")

    def __init__(self, existing_table, existing_reader, new_table, index,
                 selection_set):
        self.existing_table = existing_table
        self.existing_reader = existing_reader
        self.new_table = new_table
        self.index = index
        self.selection_set = selection_set


class _ResolvedFilter:
    """A _FilterStep bound to this execution's cell readers."""

    __slots__ = ("child_table", "child_reader", "parent_table", "parent_reader")

    def __init__(self, child_table, child_reader, parent_table, parent_reader):
        self.child_table = child_table
        self.child_reader = child_reader
        self.parent_table = parent_table
        self.parent_reader = parent_reader


class Executor:
    """Evaluates Project-Join queries by lowering optimized logical plans."""

    def __init__(
        self,
        database: Database,
        catalog: Optional[object] = None,
        *,
        use_sketches: bool = True,
    ):
        """Create an executor.

        Args:
            database: the database to evaluate queries against.
            catalog: optional :class:`~repro.dataset.catalog.MetadataCatalog`
                handed to the planner for cardinality-based join
                ordering; without one the planner uses live row counts.
            use_sketches: consult the catalog's statistics sketches —
                HLL-informed join estimates in the planner and Bloom
                pre-filtering of existence probes.  Outcomes are
                identical either way; only plan choices and probe work
                change.
        """
        self._database = database
        self._catalog = catalog
        self._use_sketches = use_sketches
        self.stats = ExecutionStats()
        self.planner = Planner(
            database, catalog, use_sketches=use_sketches, stats=self.stats
        )
        # Bloom pre-filtering is only sound while the catalog describes
        # the database exactly (appends after build could introduce keys
        # the filters have never seen); cache the staleness check per
        # artifact key.
        self._bloom_key: Optional[tuple] = None
        self._bloom_fresh = False
        # Physical plans keyed by canonical join-structure hash, so
        # every query over the same structure — across candidates and
        # across differing projections — shares one lowered plan.
        self._plan_cache: dict[tuple, _JoinPlan] = {}
        self._plan_schema_version: Optional[int] = None
        self._exists_memo: dict[Any, bool] = {}
        self._memo_data_version: Optional[tuple[int, int, int]] = None
        # Aligned edge kernels keyed by the probe step's column endpoints,
        # revalidated by column-kernel identity (backends publish a fresh
        # kernel after every append, so a stale edge can never be reused).
        self._edge_kernels: dict[tuple, Any] = {}

    @property
    def database(self) -> Database:
        """The database this executor evaluates queries against."""
        return self._database

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(
        self,
        query: ProjectJoinQuery,
        cell_predicates: Optional[Mapping[int, CellPredicate]] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[Any, ...]]:
        """Execute ``query`` and return its projected result rows.

        Args:
            query: the PJ query to execute.
            cell_predicates: optional mapping from projection position to a
                predicate the projected cell must satisfy; rows failing any
                predicate are excluded (and pruned before joining).
            limit: stop after this many result rows (None = no limit).
        """
        prepared = self._prepare(query, cell_predicates)
        if prepared is None or (limit is not None and limit <= 0):
            return []
        selections, plan = prepared

        projectors = [
            (self._database.table(ref.table).cell_reader(ref.column), ref.table)
            for ref in query.projections
        ]

        results: list[tuple[Any, ...]] = []
        for assignment in self._assignments(selections, plan):
            results.append(
                tuple(reader(assignment[table]) for reader, table in projectors)
            )
            self.stats.rows_emitted += 1
            if limit is not None and len(results) >= limit:
                break
        return results

    def exists(
        self,
        query: ProjectJoinQuery,
        cell_predicates: Optional[Mapping[int, CellPredicate]] = None,
        cache_key: Optional[Any] = None,
    ) -> bool:
        """Whether at least one result row satisfies all cell predicates.

        Args:
            query: the PJ query to probe.
            cell_predicates: optional per-projection-position predicates.
            cache_key: optional hashable canonical signature of
                ``(query, cell_predicates)``.  When given, the outcome is
                memoized on this executor and returned directly on repeat
                probes; the memo is dropped whenever the database changes.
                Callers must guarantee the key fully determines the probe.
        """
        if cache_key is None:
            return self._exists_once(query, cell_predicates)
        memo = self._current_memo()
        cached = memo.get(cache_key)
        if cached is not None:
            self.stats.exists_cache_hits += 1
            return cached
        self.stats.exists_cache_misses += 1
        outcome = self._exists_once(query, cell_predicates)
        self._memoize(memo, cache_key, outcome)
        return outcome

    def _exists_once(
        self,
        query: ProjectJoinQuery,
        cell_predicates: Optional[Mapping[int, CellPredicate]],
    ) -> bool:
        """Decide one existence probe (no memo).

        Prefers the array semijoin kernel when every plan step's endpoint
        columns expose array kernels; otherwise streams assignments and
        stops at the first hit, exactly like ``execute(limit=1)``.  Both
        routes account identically: the query and its pushdown scans via
        :meth:`_prepare`, then per probe step one join-index hit/build
        and one ``joins_performed``, then one ``rows_emitted`` iff the
        probe holds.
        """
        prepared = self._prepare(query, cell_predicates)
        if prepared is None:
            return False
        selections, plan = prepared
        selections = self._bloom_prune(selections, plan)
        if selections is None:
            return False
        edges = self._kernel_edges(plan)
        if edges is not None:
            for step in plan.steps:
                self._join_index(step.new_table, step.new_position)
                self.stats.joins_performed += 1
            masks = {
                table: self._selection_mask(table, selection)
                for table, selection in selections.items()
            }
            if _kernels.semijoin_exists(plan.start_table, plan.steps, edges, masks):
                self.stats.rows_emitted += 1
                return True
            return False
        for __ in self._assignments(selections, plan):
            self.stats.rows_emitted += 1
            return True
        return False

    def exists_batch(self, probes: Sequence[BatchProbe]) -> list[bool]:
        """Decide many existence probes over one shared join structure.

        Per-probe predicate pushdown runs exactly as in :meth:`exists`
        (so probes emptied by pushdown never touch the join), then one
        recursive pass over the shared join decides every surviving
        probe at once: the walk carries a bitmask of the probes whose
        pushed-down selections are consistent with the partial
        assignment, prunes branches no undecided probe selects, and
        satisfies a probe the moment a full assignment consistent with
        it appears.  Because all cell predicates bind to base-table
        columns, selection-mask consistency is exactly predicate
        satisfaction.  The pass stops as soon as every probe is decided.

        Outcomes equal per-probe :meth:`exists` calls bit for bit, but
        the join work (index lookups, probe steps, streaming) is paid
        once per batch instead of once per probe.  Memoization under each
        probe's ``cache_key`` behaves exactly as in :meth:`exists`.

        Raises:
            QueryError: the probes do not share one join structure.
        """
        if not probes:
            return []
        structure = join_prefix_key(probes[0].query)
        for probe in probes[1:]:
            if join_prefix_key(probe.query) != structure:
                raise QueryError(
                    "exists_batch requires probes sharing one join structure"
                )
        memo = self._current_memo()
        outcomes: list[Optional[bool]] = [None] * len(probes)
        pending: list[int] = []
        for index, probe in enumerate(probes):
            if probe.cache_key is not None:
                cached = memo.get(probe.cache_key)
                if cached is not None:
                    self.stats.exists_cache_hits += 1
                    outcomes[index] = cached
                    continue
                self.stats.exists_cache_misses += 1
            pending.append(index)

        plan: Optional[_JoinPlan] = None
        pushdown_cache: dict[tuple, frozenset[int]] = {}
        bloom_keep_cache: dict = {}
        survivors: list[tuple[int, dict[str, frozenset[int]]]] = []
        for index in pending:
            probe = probes[index]
            query = probe.query
            query.validate(self._database)
            self.stats.queries_executed += 1
            predicates = dict(probe.cell_predicates or {})
            for position in predicates:
                if position < 0 or position >= query.width:
                    raise QueryError(
                        f"cell predicate position {position} out of range "
                        f"for a query of width {query.width}"
                    )
            constrained = self._pushdown_shared(
                query, predicates, probe.predicate_tags, pushdown_cache
            )
            if constrained is None:
                outcomes[index] = False
                continue
            if plan is None:
                plan = self._plan(query)
            pruned = self._bloom_prune_sets(constrained, plan, bloom_keep_cache)
            if pruned is None:
                outcomes[index] = False
                continue
            survivors.append((index, pruned))

        if survivors:
            assert plan is not None
            self.stats.batch_executions += 1
            self.stats.batched_probes += len(survivors)
            satisfied = self._run_batch_any(plan, [sets for __, sets in survivors])
            for bit, (index, __) in enumerate(survivors):
                outcomes[index] = bool(satisfied & (1 << bit))

        for index in pending:
            key = probes[index].cache_key
            if key is not None:
                self._memoize(memo, key, bool(outcomes[index]))
        return [bool(outcome) for outcome in outcomes]

    def count(
        self,
        query: ProjectJoinQuery,
        cell_predicates: Optional[Mapping[int, CellPredicate]] = None,
    ) -> int:
        """Number of result rows of ``query`` (no row materialization)."""
        prepared = self._prepare(query, cell_predicates)
        if prepared is None:
            return 0
        selections, plan = prepared
        return sum(1 for _ in self._assignments(selections, plan))

    def logical_plan(
        self,
        query: ProjectJoinQuery,
        predicates: Optional[Sequence[PredicateSpec]] = None,
        exists: bool = False,
    ) -> PlanNode:
        """The optimized logical plan this executor runs for ``query``.

        The join order matches the lowered physical plan exactly:
        physical plans are cached per join structure, so ordering never
        depends on a request's predicates.  The given predicate specs
        are overlaid onto their scans afterwards
        (:func:`~repro.query.plan.attach_predicates`) purely for
        display and cardinality annotation — used by the explain
        tooling (``prism explain --plan``).
        """
        plan = self.planner.plan_query(query, exists=exists)
        if predicates:
            plan = attach_predicates(plan, tuple(predicates))
        return plan

    # ------------------------------------------------------------------
    # Preparation: validation, pushdown, planning
    # ------------------------------------------------------------------
    def _prepare(
        self,
        query: ProjectJoinQuery,
        cell_predicates: Optional[Mapping[int, CellPredicate]],
    ) -> Optional[tuple[dict[str, _Selection], _JoinPlan]]:
        """Validate, push predicates down and plan joins.

        Returns ``None`` when pushdown proves the result empty.  Counts
        the query and its scans in :attr:`stats` either way.
        """
        query.validate(self._database)
        self.stats.queries_executed += 1
        predicates = dict(cell_predicates or {})
        for position in predicates:
            if position < 0 or position >= query.width:
                raise QueryError(
                    f"cell predicate position {position} out of range "
                    f"for a query of width {query.width}"
                )
        selections = self._pushdown(query, predicates)
        if selections is None:
            return None
        return selections, self._plan(query)

    def _pushdown(
        self,
        query: ProjectJoinQuery,
        predicates: Mapping[int, CellPredicate],
    ) -> Optional[dict[str, _Selection]]:
        """Evaluate cell predicates against base-table columns.

        Returns per-table row-index selections (``None`` entry = all rows),
        or ``None`` overall when some table's selection is empty — the
        inner-join result is then necessarily empty.
        """
        per_table_predicates: dict[str, list[tuple[str, CellPredicate]]] = defaultdict(list)
        for position, predicate in predicates.items():
            ref = query.projections[position]
            per_table_predicates[ref.table].append((ref.column, predicate))

        selections: dict[str, _Selection] = {}
        for table_name in query.tables:
            table = self._database.table(table_name)
            self.stats.rows_scanned += table.num_rows
            checks = per_table_predicates.get(table_name)
            if not checks:
                selections[table_name] = None
                if table.num_rows == 0:
                    return None
                continue
            column_name, predicate = checks[0]
            selected = table.select_rows(column_name, predicate)
            # Further predicates probe only the surviving rows rather than
            # re-scanning the whole column.
            for column_name, predicate in checks[1:]:
                if not selected:
                    break
                read = table.cell_reader(column_name)
                selected = [
                    index
                    for index in selected
                    if (value := read(index)) is not None and predicate(value)
                ]
            if not selected:
                return None
            selections[table_name] = selected
        return selections

    def _pushdown_shared(
        self,
        query: ProjectJoinQuery,
        predicates: Mapping[int, CellPredicate],
        tags: Optional[Mapping[int, Any]],
        cache: dict[tuple, frozenset[int]],
    ) -> Optional[dict[str, frozenset[int]]]:
        """Pushdown for one batch probe, sharing column scans via ``cache``.

        Semantics match :meth:`_pushdown` exactly (NULL cells never
        match; a table with several predicates keeps only rows passing
        all of them; an empty selection — or an empty unconstrained
        table — proves the probe false).  The difference is the shape
        (per-table row *sets*, constrained tables only) and the cache:
        a column scan tagged with the same predicate content by several
        probes of the batch runs once.
        """
        tags = tags or {}
        per_table: dict[str, list[tuple[str, CellPredicate, Any]]] = defaultdict(list)
        for position, predicate in predicates.items():
            ref = query.projections[position]
            per_table[ref.table].append(
                (ref.column, predicate, tags.get(position))
            )
        constrained: dict[str, frozenset[int]] = {}
        for table_name in query.tables:
            table = self._database.table(table_name)
            self.stats.rows_scanned += table.num_rows
            checks = per_table.get(table_name)
            if not checks:
                if table.num_rows == 0:
                    return None
                continue
            combined: Optional[frozenset[int]] = None
            for column_name, predicate, tag in checks:
                key = (
                    (table_name, column_name, tag) if tag is not None else None
                )
                selection = cache.get(key) if key is not None else None
                if selection is None:
                    selection = frozenset(
                        table.select_rows(column_name, predicate)
                    )
                    if key is not None:
                        cache[key] = selection
                combined = (
                    selection if combined is None else combined & selection
                )
                if not combined:
                    return None
            constrained[table_name] = combined
        return constrained

    # ------------------------------------------------------------------
    # Bloom pre-filtering of existence probes
    # ------------------------------------------------------------------
    def _bloom_ready(self) -> bool:
        """Whether join-key Bloom filters may prune probe rows.

        True only when sketches are enabled, the catalog carries them,
        and — the soundness guard — the catalog was built from (or
        delta-folded up to) exactly the database's current artifact key:
        a filter that has not seen every row of a column could otherwise
        report a genuinely present key as absent.
        """
        if not self._use_sketches or self._catalog is None:
            return False
        if getattr(self._catalog, "sketches", None) is None:
            return False
        key = self._database.artifact_key()
        if key != self._bloom_key:
            self._bloom_key = key
            self._bloom_fresh = (
                getattr(self._catalog, "built_from", None) == key
            )
        return self._bloom_fresh

    def _bloom_for(self, table: str, position: int):
        """The catalog's Bloom filter over one join-key column, if any."""
        column = self._database.table(table).columns[position].name
        sketches = self._catalog.sketches(_ColumnRef(table, column))
        return sketches.bloom if sketches is not None else None

    def _bloom_prune(
        self, selections: dict[str, Any], plan: _JoinPlan
    ) -> Optional[dict[str, Any]]:
        """Drop pushed-down rows whose join key a Bloom filter proves
        absent from the opposite endpoint of an edge.

        For every probe step, each side with a small selection checks its
        key values against the *other* side's filter; rows with NULL keys
        or provably absent keys cannot take part in any full assignment,
        so removing them (``bloom_rejections``) never changes an
        existence outcome — and an emptied selection decides the probe
        ``False`` (returns ``None``) before any join structure is built.
        The filter has no false negatives, so surviving rows are a
        superset of the joinable ones.
        """
        if not self._bloom_ready():
            return selections
        for step in plan.steps:
            if not isinstance(step, _ProbeStep):
                continue
            sides = (
                (step.existing_table, step.existing_position,
                 step.new_table, step.new_position),
                (step.new_table, step.new_position,
                 step.existing_table, step.existing_position),
            )
            for table, position, other_table, other_position in sides:
                selection = selections.get(table)
                if selection is None or len(selection) > BLOOM_PROBE_MAX_ROWS:
                    continue
                bloom = self._bloom_for(other_table, other_position)
                if bloom is None:
                    continue
                kept = self._bloom_keep(table, position, selection, bloom)
                rejected = len(selection) - len(kept)
                if rejected:
                    self.stats.bloom_rejections += rejected
                    if not kept:
                        return None
                    selections[table] = kept
        return selections

    def _bloom_prune_sets(
        self,
        constrained: dict[str, frozenset[int]],
        plan: _JoinPlan,
        keep_cache: Optional[dict] = None,
    ) -> Optional[dict[str, frozenset[int]]]:
        """Set-shaped :meth:`_bloom_prune` for the batched probe path.

        Probes of one batch share pushed-down selections (the pushdown
        cache returns one frozenset per distinct constraint tag), so the
        per-(step-side, selection) filter checks are memoized in
        ``keep_cache`` across the whole batch; ``bloom_rejections`` is
        still counted per probe, exactly as the uncached path would.
        """
        if not self._bloom_ready():
            return constrained
        selections = dict(constrained)
        for step in plan.steps:
            if not isinstance(step, _ProbeStep):
                continue
            sides = (
                (step.existing_table, step.existing_position,
                 step.new_table, step.new_position),
                (step.new_table, step.new_position,
                 step.existing_table, step.existing_position),
            )
            for table, position, other_table, other_position in sides:
                selection = selections.get(table)
                if selection is None or len(selection) > BLOOM_PROBE_MAX_ROWS:
                    continue
                cache_key = (
                    table, position, other_table, other_position, selection
                )
                kept = (
                    keep_cache.get(cache_key)
                    if keep_cache is not None
                    else None
                )
                if kept is None:
                    bloom = self._bloom_for(other_table, other_position)
                    if bloom is None:
                        continue
                    kept = frozenset(
                        self._bloom_keep(table, position, selection, bloom)
                    )
                    if keep_cache is not None:
                        keep_cache[cache_key] = kept
                rejected = len(selection) - len(kept)
                if rejected:
                    self.stats.bloom_rejections += rejected
                    if not kept:
                        return None
                    selections[table] = kept
        return selections

    def _bloom_keep(
        self, table: str, position: int, selection: Sequence[int], bloom
    ) -> list[int]:
        """The subset of ``selection`` whose key might be in ``bloom``.

        Vectorized over the column's array kernel when the backend
        provides one; the scalar fallback hashes the same canonical
        equality classes, so both routes keep exactly the same rows.
        """
        rows = selection if isinstance(selection, list) else sorted(selection)
        if _kernels is not None:
            kernel = self._column_kernel(table, position)
            if kernel is not None and getattr(kernel, "kind", None) == "array":
                return _kernels.bloom_keep(kernel, rows, bloom)
        backing = self._database.table(table)
        read = backing.cell_reader(backing.columns[position].name)
        return [
            row
            for row in rows
            if (value := read(row)) is not None and bloom.might_contain(value)
        ]

    def _plan(self, query: ProjectJoinQuery) -> _JoinPlan:
        """Lower the optimized join order into concrete probe/filter steps.

        Physical plans depend only on join structure (plus the schema's
        column layout), so they are cached under the structure's
        canonical plan hash — shared across every candidate and filter
        on that structure — and discarded whenever the database schema
        changes (a table dropped and recreated under the same name may
        place columns differently).
        """
        schema_version = self._database.schema_version
        if schema_version != self._plan_schema_version:
            self._plan_cache.clear()
            # Column positions may have moved with the schema; edge
            # kernels are keyed by position, so drop them too.
            self._edge_kernels.clear()
            self._plan_schema_version = schema_version
        structure = join_prefix_key(query)
        plan = self._plan_cache.get(structure)
        if plan is not None:
            self.stats.plan_cache_hits += 1
            return plan
        self.stats.plan_cache_builds += 1

        order = self.planner.join_order(query)
        joined = {order.start_table}
        steps: list[Any] = []
        for edge in order.edges:
            left, right = edge.tables()
            if left in joined and right in joined:
                # Both sides already joined (cannot happen for trees,
                # but be defensive): apply the edge as a post-filter.
                steps.append(
                    _FilterStep(
                        edge.child_table,
                        self._column_position(edge.child_table, edge.child_column),
                        edge.parent_table,
                        self._column_position(edge.parent_table, edge.parent_column),
                    )
                )
                continue
            if left in joined:
                existing_table, new_table = left, right
            elif right in joined:
                existing_table, new_table = right, left
            else:
                # Neither endpoint joined yet — cannot happen when the
                # planner produced a connected order; guard anyway.
                raise QueryError("disconnected join order")
            existing_column, new_column = self._edge_columns(
                edge, existing_table, new_table
            )
            steps.append(
                _ProbeStep(
                    existing_table,
                    self._column_position(existing_table, existing_column),
                    new_table,
                    self._column_position(new_table, new_column),
                )
            )
            joined.add(new_table)
        plan = _JoinPlan(order.start_table, tuple(steps))
        if len(self._plan_cache) >= MAX_PLAN_CACHE_ENTRIES:
            del self._plan_cache[next(iter(self._plan_cache))]
        self._plan_cache[structure] = plan
        return plan

    def _column_position(self, table: str, column: str) -> int:
        return self._database.table(table).column_position(column)

    def _join_order(self, query: ProjectJoinQuery):
        """Structural edge ordering (connectivity check, no statistics).

        Retained as the reference ordering: the cost-based planner may
        emit any permutation, but both must reject disconnected edges.
        """
        if not query.joins:
            return []
        return _connected_edge_order(query)

    def _edge_columns(
        self, edge, existing_table: str, new_table: str
    ) -> tuple[str, str]:
        if edge.child_table == existing_table and edge.parent_table == new_table:
            return edge.child_column, edge.parent_column
        if edge.parent_table == existing_table and edge.child_table == new_table:
            return edge.parent_column, edge.child_column
        raise QueryError(
            f"join edge {edge} does not connect {existing_table} and {new_table}"
        )

    # ------------------------------------------------------------------
    # Lazy join evaluation
    # ------------------------------------------------------------------
    def _join_index(self, table: str, position: int) -> Mapping[Any, Sequence[int]]:
        """The backend's cached join index, with hit/build accounting."""
        backend = self._database.table(table).backend
        if backend.has_cached_join_index(table, position):
            self.stats.join_index_hits += 1
        else:
            self.stats.join_index_builds += 1
        return backend.join_index(table, position)

    def _assignments(
        self,
        selections: dict[str, _Selection],
        plan: _JoinPlan,
    ) -> Iterator[dict[str, int]]:
        """Stream per-table row-index assignments satisfying all joins.

        The stream is lazy end to end: a consumer that stops early (e.g. an
        existence probe) leaves the remaining join work undone.  For speed
        a single assignment dict is reused and mutated in place — consumers
        must extract what they need before advancing the iterator.
        """
        start = plan.start_table
        start_selection = selections[start]
        if start_selection is None:
            start_rows: Sequence[int] = range(
                self._database.table(start).num_rows
            )
        else:
            start_rows = start_selection

        assignment: dict[str, int] = {}
        if not plan.steps:
            for row_index in start_rows:
                assignment[start] = row_index
                yield assignment
            return

        # Resolve each step's runtime machinery once per execution.
        resolved: list[Any] = []
        for step in plan.steps:
            if isinstance(step, _ProbeStep):
                selection = selections[step.new_table]
                resolved.append(
                    _ResolvedProbe(
                        step.existing_table,
                        self._database.table(step.existing_table).backend.cell_reader(
                            step.existing_table, step.existing_position
                        ),
                        step.new_table,
                        self._join_index(step.new_table, step.new_position),
                        None if selection is None else set(selection),
                    )
                )
                self.stats.joins_performed += 1
            else:
                resolved.append(
                    _ResolvedFilter(
                        step.child_table,
                        self._database.table(step.child_table).backend.cell_reader(
                            step.child_table, step.child_position
                        ),
                        step.parent_table,
                        self._database.table(step.parent_table).backend.cell_reader(
                            step.parent_table, step.parent_position
                        ),
                    )
                )
        last_depth = len(resolved) - 1

        def extend(depth: int) -> Iterator[dict[str, int]]:
            step = resolved[depth]
            if isinstance(step, _ResolvedProbe):
                key = step.existing_reader(assignment[step.existing_table])
                if key is None:
                    return
                rows = step.index.get(key)
                if not rows:
                    return
                new_table = step.new_table
                selection_set = step.selection_set
                if depth == last_depth:
                    for row_index in rows:
                        if selection_set is not None and row_index not in selection_set:
                            continue
                        assignment[new_table] = row_index
                        yield assignment
                else:
                    for row_index in rows:
                        if selection_set is not None and row_index not in selection_set:
                            continue
                        assignment[new_table] = row_index
                        yield from extend(depth + 1)
            else:
                child_value = step.child_reader(assignment[step.child_table])
                parent_value = step.parent_reader(assignment[step.parent_table])
                if (
                    child_value is not None
                    and parent_value is not None
                    and child_value == parent_value
                ):
                    if depth == last_depth:
                        yield assignment
                    else:
                        yield from extend(depth + 1)

        for row_index in start_rows:
            assignment.clear()
            assignment[start] = row_index
            yield from extend(0)

    # ------------------------------------------------------------------
    # Array semijoin kernels
    # ------------------------------------------------------------------
    def _column_kernel(self, table: str, position: int):
        """The backend's column array snapshot, or None if unsupported."""
        backend = self._database.table(table).backend
        kernel_of = getattr(backend, "column_kernel", None)
        if kernel_of is None:
            return None
        return kernel_of(table, position)

    def _edge_kernel(self, step: _ProbeStep):
        """A cached aligned :class:`~repro.query.kernels.EdgeKernel` for
        one probe step, or None when the step cannot run vectorized."""
        existing = self._column_kernel(step.existing_table, step.existing_position)
        if existing is None:
            return None
        new = self._column_kernel(step.new_table, step.new_position)
        if new is None:
            return None
        if existing.nan_unsafe or new.nan_unsafe:
            # NaN never equals itself: array membership and the generic
            # dict-probing path disagree on such keys, so don't vectorize.
            return None
        key = (step.existing_table, step.existing_position,
               step.new_table, step.new_position)
        cached = self._edge_kernels.get(key)
        if (
            cached is not None
            and cached.existing is existing
            and cached.new is new
        ):
            return cached
        edge = _kernels.EdgeKernel(existing, new)
        self._edge_kernels[key] = edge
        return edge

    def _kernel_edges(self, plan: _JoinPlan) -> Optional[list]:
        """Per-step edge kernels when the whole plan can run vectorized.

        Returns None — falling back to the generic streaming path — when
        numpy is unavailable, a step is not a plain probe step, a table's
        backend exposes no array kernels, or a join-key column is NaN
        unsafe.  An empty list (single-table plan) is valid: with no
        steps, a non-empty pushdown already proves existence.
        """
        if _kernels is None:
            return None
        if not any(
            self._database.table(table).num_rows >= KERNEL_MIN_ROWS
            for table in self._plan_tables(plan)
        ):
            return None
        edges = []
        for step in plan.steps:
            if not isinstance(step, _ProbeStep):
                return None
            edge = self._edge_kernel(step)
            if edge is None:
                return None
            edges.append(edge)
        return edges

    @staticmethod
    def _plan_tables(plan: _JoinPlan):
        yield plan.start_table
        for step in plan.steps:
            if isinstance(step, _ProbeStep):
                yield step.new_table

    def _selection_mask(self, table: str, selection):
        """A pushed-down selection as a row bitmask (None = every row)."""
        if selection is None:
            return None
        return _kernels.selection_mask(
            self._database.table(table).num_rows, selection
        )

    # ------------------------------------------------------------------
    # Batched join evaluation
    # ------------------------------------------------------------------
    def _run_batch_any(
        self, plan: _JoinPlan, probe_selections: Sequence[dict[str, set[int]]]
    ) -> int:
        """Decide a batch via semijoin kernels, else the generic walk.

        The kernel route decides each probe with its own vectorized
        semijoin sweep (cached edge kernels make the unconstrained folds
        free across probes).  Accounting matches :meth:`_run_batch`
        exactly: per probe step one join-index hit/build plus one
        ``joins_performed`` for the whole batch, nothing per probe.
        """
        edges = self._kernel_edges(plan)
        if edges is None:
            return self._run_batch(plan, probe_selections)
        for step in plan.steps:
            self._join_index(step.new_table, step.new_position)
            self.stats.joins_performed += 1
        satisfied = 0
        for bit, sets in enumerate(probe_selections):
            masks = {
                table: self._selection_mask(table, selection)
                for table, selection in sets.items()
            }
            if _kernels.semijoin_exists(plan.start_table, plan.steps, edges, masks):
                satisfied |= 1 << bit
        return satisfied

    def _run_batch(
        self, plan: _JoinPlan, probe_selections: Sequence[dict[str, set[int]]]
    ) -> int:
        """Decide many probes in one recursive pass over a shared join.

        ``probe_selections[i]`` maps each table probe ``i`` constrains to
        its pushed-down row set.  The pass walks the physical plan once,
        carrying a bitmask of the probes consistent with the partial
        assignment so far: assigning table ``T`` row ``r`` ANDs in the
        mask of probes that selected ``r`` (or don't constrain ``T``).
        Branches no *undecided* probe is consistent with are pruned —
        the per-probe selection pruning of the single-probe path, paid
        once for the whole batch — and probes reaching a full assignment
        are satisfied.  Returns the bitmask of satisfied probes.
        """
        full_mask = (1 << len(probe_selections)) - 1
        # Per constrained table: a lazily filled row → mask cache, the
        # (bit, row set) list of probes constraining it, and the mask of
        # probes that don't.  Masks are computed only for rows the join
        # actually reaches, so sparse streams never pay for the full
        # selections.
        masks: dict[str, tuple[dict[int, int], list[tuple[int, frozenset[int]]], int]] = {}
        tables = {plan.start_table}
        for step in plan.steps:
            if isinstance(step, _ProbeStep):
                tables.add(step.new_table)
        for table in tables:
            members: list[tuple[int, frozenset[int]]] = []
            constrained_bits = 0
            for bit, sets in enumerate(probe_selections):
                selection = sets.get(table)
                if selection is None:
                    continue
                constrained_bits |= 1 << bit
                members.append((1 << bit, selection))
            if constrained_bits:
                masks[table] = ({}, members, full_mask & ~constrained_bits)

        def mask_of(table: str, row_index: int, current: int) -> int:
            entry = masks.get(table)
            if entry is None:
                return current
            row_cache, members, unconstrained = entry
            mask = row_cache.get(row_index)
            if mask is None:
                mask = unconstrained
                for bit, rows in members:
                    if row_index in rows:
                        mask |= bit
                row_cache[row_index] = mask
            return current & mask

        start = plan.start_table
        start_entry = masks.get(start)
        if start_entry is not None and not start_entry[2]:
            # Every probe constrains the start table: only union rows
            # can matter, so iterate exactly those.
            union: set[int] = set()
            for __, rows in start_entry[1]:
                union.update(rows)
            start_rows: Sequence[int] = sorted(union)
        else:
            start_rows = range(self._database.table(start).num_rows)

        resolved: list[Any] = []
        for step in plan.steps:
            if isinstance(step, _ProbeStep):
                resolved.append(
                    _ResolvedProbe(
                        step.existing_table,
                        self._database.table(step.existing_table).backend.cell_reader(
                            step.existing_table, step.existing_position
                        ),
                        step.new_table,
                        self._join_index(step.new_table, step.new_position),
                        None,
                    )
                )
                self.stats.joins_performed += 1
            else:
                resolved.append(
                    _ResolvedFilter(
                        step.child_table,
                        self._database.table(step.child_table).backend.cell_reader(
                            step.child_table, step.child_position
                        ),
                        step.parent_table,
                        self._database.table(step.parent_table).backend.cell_reader(
                            step.parent_table, step.parent_position
                        ),
                    )
                )

        state = {"satisfied": 0, "undecided": full_mask}
        assignment: dict[str, int] = {}
        last_depth = len(resolved) - 1

        def settle(mask: int) -> None:
            newly = mask & state["undecided"]
            state["satisfied"] |= newly
            state["undecided"] &= ~newly

        def extend(depth: int, mask: int) -> None:
            step = resolved[depth]
            if isinstance(step, _ResolvedProbe):
                key = step.existing_reader(assignment[step.existing_table])
                if key is None:
                    return
                rows = step.index.get(key)
                if not rows:
                    return
                new_table = step.new_table
                undecided = state["undecided"]
                if depth == last_depth:
                    for row_index in rows:
                        narrowed = mask_of(new_table, row_index, mask)
                        if not narrowed & undecided:
                            continue
                        settle(narrowed)
                        undecided = state["undecided"]
                        if not undecided:
                            return
                else:
                    for row_index in rows:
                        narrowed = mask_of(new_table, row_index, mask)
                        if not narrowed & state["undecided"]:
                            continue
                        assignment[new_table] = row_index
                        extend(depth + 1, narrowed)
                        if not state["undecided"]:
                            return
            else:
                child_value = step.child_reader(assignment[step.child_table])
                parent_value = step.parent_reader(assignment[step.parent_table])
                if (
                    child_value is not None
                    and parent_value is not None
                    and child_value == parent_value
                ):
                    if depth == last_depth:
                        settle(mask)
                    else:
                        extend(depth + 1, mask)

        for row_index in start_rows:
            mask = mask_of(start, row_index, full_mask)
            if not mask & state["undecided"]:
                continue
            if not resolved:
                settle(mask)
            else:
                assignment.clear()
                assignment[start] = row_index
                extend(0, mask)
            if not state["undecided"]:
                break
        return state["satisfied"]

    # ------------------------------------------------------------------
    # Existence-memo cache
    # ------------------------------------------------------------------
    def _current_memo(self) -> dict[Any, bool]:
        """The memo dict, cleared whenever the database has changed."""
        version = self._database.data_version
        if version != self._memo_data_version:
            self._exists_memo.clear()
            self._memo_data_version = version
        return self._exists_memo

    def _memoize(self, memo: dict[Any, bool], key: Any, outcome: bool) -> None:
        if len(memo) >= MAX_EXISTS_MEMO_ENTRIES:
            del memo[next(iter(memo))]
        memo[key] = outcome

    @property
    def exists_memo_size(self) -> int:
        """Number of memoized existence outcomes currently held."""
        return len(self._exists_memo)

    @property
    def plan_cache_size(self) -> int:
        """Number of lowered physical plans currently cached."""
        return len(self._plan_cache)
