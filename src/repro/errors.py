"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch a single base class.  More specific subclasses exist for
the major subsystems (dataset engine, constraint language, discovery
pipeline) so that tests and applications can make fine-grained decisions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SchemaError(ReproError):
    """A table, column or foreign key definition is invalid or unknown."""


class DataError(ReproError):
    """A row or value does not conform to its declared column type."""


class QueryError(ReproError):
    """A Project-Join query is malformed or references unknown objects."""


class ConstraintError(ReproError):
    """A multiresolution constraint is malformed."""


class ConstraintParseError(ConstraintError):
    """The textual constraint syntax could not be parsed."""


class SpecError(ReproError):
    """A mapping specification is inconsistent (wrong arity, bad indices)."""


class DiscoveryError(ReproError):
    """The discovery engine was configured or invoked incorrectly."""


class DiscoveryTimeout(DiscoveryError):
    """Raised when query discovery exceeds its time budget.

    Mirrors the paper's behaviour of reporting a failure when the 60 second
    interactive time limit is exceeded.  The partially discovered results are
    attached so callers may still inspect them.
    """

    def __init__(self, message: str, partial_result=None):
        super().__init__(message)
        self.partial_result = partial_result


class TrainingError(ReproError):
    """A Bayesian model could not be trained from the supplied database."""


class WorkloadError(ReproError):
    """A synthetic workload case could not be generated."""


class SessionError(ReproError):
    """The workbench session was driven through an invalid state transition."""


class ArtifactError(ReproError):
    """A preprocessing-artifact bundle could not be built, loaded or saved."""


class ServiceError(ReproError):
    """The discovery service was configured or driven incorrectly."""


class ServiceOverloaded(ServiceError):
    """The service's bounded request queue is full (backpressure signal).

    Callers should retry later or shed load; the request was never queued.
    """
