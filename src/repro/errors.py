"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch a single base class.  More specific subclasses exist for
the major subsystems (dataset engine, constraint language, discovery
pipeline, serving layer) so that tests and applications can make
fine-grained decisions.

Each exception documents *when* it is raised and *how to recover*; the
same information is tabulated in ``docs/service.md``'s troubleshooting
section.  Two outcomes are deliberately **not** opaque errors at the
service boundary: a discovery round that exceeds its budget surfaces as a
structured ``status="timeout"`` response (or CLI exit code 3 with
``--fail-on-timeout``), and a full request queue surfaces as
:class:`ServiceOverloaded` backpressure that callers should retry.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library.

    When raised: never directly — always through a subclass below.

    How to recover: catch this class at integration boundaries (the CLI
    and :class:`~repro.service.DiscoveryService` already do) to translate
    any library failure into one error path; catch the specific
    subclasses when different failures need different handling.
    """


class SchemaError(ReproError):
    """A table, column or foreign key definition is invalid or unknown.

    When raised: creating a table with duplicate/empty column names,
    referencing a table or column that does not exist (including through
    :class:`~repro.dataset.schema.ColumnRef` lookups in the catalog), or
    registering a foreign key whose endpoints are missing.

    How to recover: this is a programming error in the schema wiring, not
    a data problem — fix the definition or the reference; nothing in the
    library's state was modified by the failed call.
    """


class DataError(ReproError):
    """A row or value does not conform to its declared column type.

    When raised: :meth:`~repro.dataset.table.Table.insert` with a row of
    the wrong width, a NULL in a non-nullable column, or a cell whose
    detected type differs from the declared one.  Bulk loads via
    ``insert_many`` prefix the message with the 0-based row index.

    How to recover: fix the offending record, or pass ``coerce=True`` to
    let the table convert compatible values.  The failing row was not
    stored; previously inserted rows of the batch were (inserts are not
    transactional).
    """


class QueryError(ReproError):
    """A Project-Join query is malformed or references unknown objects.

    When raised: constructing or executing a
    :class:`~repro.query.ProjectJoinQuery` whose projections, join edges
    or predicates reference tables/columns that are not part of the
    database, or whose join graph is not a connected tree.

    How to recover: queries produced by discovery are always well-formed;
    this fires for hand-built queries — correct the query structure.
    """


class ConstraintError(ReproError):
    """A multiresolution constraint is malformed.

    When raised: building a value/metadata constraint from inconsistent
    parts (e.g. an empty disjunction, a range with no bounds).

    How to recover: construct the constraint with valid arguments; see
    :mod:`repro.constraints.values` for the accepted shapes.
    """


class ConstraintParseError(ConstraintError):
    """The textual constraint syntax could not be parsed.

    When raised: :func:`~repro.constraints.parse_value_constraint` or
    :func:`~repro.constraints.parse_metadata_constraint` on input that
    does not match the constraint grammar (unbalanced quotes, unknown
    metadata attribute, bad operator).

    How to recover: fix the constraint text; the message points at the
    offending token.  In the workbench, re-enter the cell.
    """


class SpecError(ReproError):
    """A mapping specification is inconsistent (wrong arity, bad indices).

    When raised: adding a sample row whose width differs from the spec's
    column count, attaching metadata to an out-of-range column, or
    calling :meth:`~repro.constraints.MappingSpec.validate` on a spec
    with no constraints at all.

    How to recover: adjust the spec before starting the search — specs
    are plain builders and can be mutated until they validate.
    """


class DiscoveryError(ReproError):
    """The discovery engine was configured or invoked incorrectly.

    When raised: a non-positive time limit, an unknown scheduler name, or
    requesting the ``bayesian`` scheduler on an engine constructed with
    ``train_bayesian=False`` and no injected models.

    How to recover: fix the engine construction; this never fires
    mid-search for data-dependent reasons.
    """


class DiscoveryTimeout(DiscoveryError):
    """Raised when query discovery exceeds its time budget.

    Mirrors the paper's behaviour of reporting a failure when the 60 second
    interactive time limit is exceeded.  The partially discovered results are
    attached so callers may still inspect them.

    When raised: only if ``raise_on_timeout=True`` was passed to
    :meth:`~repro.discovery.engine.Prism.discover`; by default a timeout
    is a structured partial result (``result.timed_out``), and the
    service layer converts this exception back into a
    ``status="timeout"`` response.  The CLI's ``--fail-on-timeout`` flag
    maps a timed-out round to **exit code 3** after printing the partial
    queries.

    How to recover: inspect ``partial_result`` (the queries confirmed
    before the budget ran out), then retry with a larger ``time_limit``,
    tighter :class:`~repro.discovery.GenerationLimits`, or a more
    selective spec.
    """

    def __init__(self, message: str, partial_result=None):
        super().__init__(message)
        self.partial_result = partial_result


class TrainingError(ReproError):
    """A Bayesian model could not be trained from the supplied database.

    When raised: training over a database with no tables, asking a fitted
    model for an unknown column, or folding an append delta into a model
    that lacks its sufficient statistics (hand-built models, or models
    unpickled from bundles that predate incremental maintenance).

    How to recover: retrain via
    :func:`~repro.bayesian.training.train_models`; for the delta case the
    :class:`~repro.service.ArtifactStore` already does this automatically
    by falling back to a full rebuild.
    """


class WorkloadError(ReproError):
    """A synthetic workload case could not be generated.

    When raised: :mod:`repro.workloads` cannot synthesize a ground-truth
    case under the requested shape (e.g. more joined tables than the
    schema graph connects).

    How to recover: relax the case shape (fewer columns/tables) or use a
    database with a richer foreign-key graph.
    """


class SessionError(ReproError):
    """The workbench session was driven through an invalid state transition.

    When raised: calling :class:`~repro.workbench.PrismSession` steps out
    of order — e.g. setting sample cells before ``configure()``, or
    ``explain()`` before a query was selected.

    How to recover: follow the session order (configure → describe →
    search → inspect); the message names the step that is missing.
    """


class ArtifactError(ReproError):
    """A preprocessing-artifact bundle could not be built, loaded or saved.

    When raised: the source database was mutated *while* its bundle was
    being built (the store detects the torn state and refuses to cache
    it), or an artifact cannot fold an append delta because it lacks its
    incremental-maintenance state.

    How to recover: for build-time mutation, retry once writes have
    quiesced — the store's per-database build lock makes this safe.
    Delta failures inside :meth:`~repro.service.ArtifactStore.refresh`
    are handled internally via the counted rebuild fallback
    (``stats.rebuild_fallbacks``); corrupt or version-skewed persisted
    files never raise at all — they are treated as cache misses and
    rebuilt (counted in ``stats.disk_errors``).
    """


class ServiceError(ReproError):
    """The discovery service was configured or driven incorrectly.

    When raised: invalid construction parameters (non-positive workers,
    queue size or time limit), submitting to a shut-down service,
    requesting an unknown database, or a
    :meth:`~repro.service.DiscoveryTicket.result` wait that exceeds its
    ``timeout`` argument.

    How to recover: configuration errors are programming errors — fix the
    caller.  For unknown databases, consult
    :meth:`~repro.service.DiscoveryService.available_databases`.  A
    ticket-wait timeout does not cancel the request; call ``result()``
    again or ``cancel()`` the ticket.
    """


class WireFormatError(ServiceError):
    """A v1 wire message (JSON request/response) could not be decoded.

    When raised: :meth:`~repro.service.DiscoveryRequest.from_json` /
    :meth:`~repro.service.DiscoveryResponse.from_json` (and the
    :mod:`repro.service.wire` codec behind them) on a payload that is not
    a JSON object, misses a required field, carries an *unknown* field
    (v1 is strict: typos never pass silently), or declares an
    ``api_version`` this build does not speak.  The process-shard IPC
    layer raises it for malformed frames too.

    How to recover: the message names the offending field or version.
    Regenerate the payload with ``to_json()`` from a matching library
    version instead of hand-editing it; for version skew, upgrade the
    older side (v1 readers reject newer majors rather than guessing).
    """


class ServiceOverloaded(ServiceError):
    """The service's bounded request queue is full (backpressure signal).

    Callers should retry later or shed load; the request was never queued.

    When raised: :meth:`~repro.service.DiscoveryService.submit` with
    ``block=False`` (the default) while ``queue_size`` requests are
    already waiting, or with ``block=True`` when the wait exceeds its
    ``timeout``.  Every rejection is counted in the service metrics
    (``rejected``).

    How to recover: this is load shedding working as designed — back off
    and retry, submit with ``block=True`` to wait for queue space, or
    provision more workers / a larger queue.
    """
