"""Command line interface for the Prism workbench.

Subcommands mirror what a demo attendee would do in the web UI:

* ``prism databases`` — list the bundled source databases;
* ``prism schema <database>`` — show tables, columns and row counts;
* ``prism search ...`` — run one round of multiresolution discovery;
* ``prism explain ...`` — run a round and explain one discovered query,
  either as the paper's explanation graph or (``--plan``) as the
  optimized logical plan with estimated cardinalities and
  cross-candidate shared-prefix annotations;
* ``prism serve-batch ...`` — drive many (mixed-database) rounds through
  the concurrent :class:`~repro.service.DiscoveryService`;
* ``prism demo`` — replay the §3 Lake Tahoe walk-through end to end.

Sample rows are given with ``--sample`` (repeatable, one per row) using
``;`` between cells, e.g. ``--sample "California || Nevada;Lake Tahoe;"``.
Metadata constraints use ``--metadata COLUMN:TEXT``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.api import (
    ArtifactStore,
    DiscoveryService,
    demo_requests,
    request_from_dict,
)
from repro.datasets import available_databases, load_database_by_name
from repro.discovery.engine import DEFAULT_TIME_LIMIT_SECONDS
from repro.errors import ReproError
from repro.workbench.session import PrismSession

__all__ = ["main", "build_parser"]


def _add_deadline_arguments(sub_parser: argparse.ArgumentParser) -> None:
    """The canonical ``--deadline-s`` flag plus its deprecated spelling."""
    sub_parser.add_argument(
        "--deadline-s",
        dest="deadline_s",
        type=float,
        default=None,
        help="per-round budget in seconds (queue wait counts against it); "
             f"default {DEFAULT_TIME_LIMIT_SECONDS:g}",
    )
    sub_parser.add_argument(
        "--time-limit",
        dest="time_limit",
        type=float,
        default=None,
        help="deprecated alias for --deadline-s",
    )


def _resolve_deadline(args: argparse.Namespace) -> float:
    if args.time_limit is not None:
        print("warning: --time-limit is deprecated; use --deadline-s",
              file=sys.stderr)
        if args.deadline_s is None:
            return args.time_limit
    if args.deadline_s is None:
        return DEFAULT_TIME_LIMIT_SECONDS
    return args.deadline_s


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="prism",
        description="Multiresolution schema mapping (Prism, CIDR 2019 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("databases", help="list the bundled source databases")

    schema_parser = subparsers.add_parser(
        "schema", help="show the schema of a bundled database"
    )
    schema_parser.add_argument("database", choices=available_databases())

    def add_spec_arguments(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--database", required=True,
                                choices=available_databases())
        sub_parser.add_argument("--columns", type=int, required=True,
                                help="number of columns in the target schema")
        sub_parser.add_argument(
            "--sample",
            action="append",
            default=[],
            help="one sample row; cells separated by ';' (repeatable)",
        )
        sub_parser.add_argument(
            "--metadata",
            action="append",
            default=[],
            help="metadata constraint as COLUMN:TEXT (repeatable)",
        )
        sub_parser.add_argument("--scheduler", default="bayesian",
                                choices=["naive", "filter", "bayesian", "optimal"])
        _add_deadline_arguments(sub_parser)

    search_parser = subparsers.add_parser(
        "search", help="run one round of schema mapping discovery"
    )
    add_spec_arguments(search_parser)
    search_parser.add_argument("--max-queries", type=int, default=10,
                               help="maximum number of queries to print")
    search_parser.add_argument("--explain", type=int, default=None,
                               help="print the explanation graph of query #N (1-based)")
    search_parser.add_argument(
        "--fail-on-timeout",
        action="store_true",
        help="exit with status 3 when the round hits its time limit "
             "(partial queries and stats are still printed)",
    )

    explain_parser = subparsers.add_parser(
        "explain",
        help="run one discovery round and explain one of its queries",
    )
    add_spec_arguments(explain_parser)
    explain_parser.add_argument("--query", type=int, default=1,
                                help="which discovered query to explain (1-based)")
    explain_parser.add_argument(
        "--plan",
        action="store_true",
        help="print the optimized logical plan (estimated cardinalities "
             "and cross-candidate shared-prefix annotations) instead of "
             "the explanation graph",
    )

    serve_parser = subparsers.add_parser(
        "serve-batch",
        help="run a batch of discovery requests through the concurrent service",
    )
    serve_parser.add_argument("--workers", type=int, default=4,
                              help="executor width: worker threads, or worker "
                                   "processes with --shard-mode process")
    serve_parser.add_argument(
        "--shard-mode",
        dest="shard_mode",
        choices=["thread", "process"],
        default="thread",
        help="'thread' shares one in-process store (GIL-bound); 'process' "
             "shards the databases across long-lived worker processes "
             "that exchange versioned JSON messages",
    )
    serve_parser.add_argument(
        "--start-method",
        dest="start_method",
        choices=["fork", "spawn", "forkserver"],
        default=None,
        help="multiprocessing start method for --shard-mode process "
             "(platform default when omitted)",
    )
    serve_parser.add_argument(
        "--replication",
        type=int,
        default=None,
        help="with --shard-mode process: how many shards hold each "
             "database (default: all of them)",
    )
    serve_parser.add_argument("--queue-size", type=int, default=64,
                              help="bound on queued requests (backpressure)")
    serve_parser.add_argument(
        "--requests",
        default=None,
        help="JSON file with a list of request objects "
             "({database, columns, samples, metadata, ...}); "
             "omit to run the built-in mixed demo workload",
    )
    serve_parser.add_argument("--rounds", type=int, default=1,
                              help="repetitions of the built-in demo workload")
    serve_parser.add_argument("--scheduler", default="bayesian",
                              choices=["naive", "filter", "bayesian", "optimal"])
    _add_deadline_arguments(serve_parser)
    serve_parser.add_argument(
        "--artifact-dir",
        default=None,
        help="persist preprocessing artifacts under this directory so "
             "later runs warm-start",
    )
    serve_parser.add_argument(
        "--refresh",
        action="store_true",
        help="maintain cached artifacts incrementally: databases that "
             "grew by appends between requests are caught up by folding "
             "the delta into the cached bundle instead of rebuilding it",
    )

    demo_parser = subparsers.add_parser(
        "demo", help="replay the paper's Lake Tahoe walk-through"
    )
    demo_parser.add_argument("--scheduler", default="bayesian",
                             choices=["naive", "filter", "bayesian", "optimal"])
    return parser


def _command_databases() -> int:
    for name in available_databases():
        print(name)
    return 0


def _command_schema(database_name: str) -> int:
    database = load_database_by_name(database_name)
    print(f"database: {database.name} ({database.total_rows} rows)")
    for table in database:
        column_list = ", ".join(
            f"{column.name}:{column.data_type.value}" for column in table.columns
        )
        print(f"  {table.name} ({table.num_rows} rows): {column_list}")
    if database.foreign_keys:
        print("foreign keys:")
        for foreign_key in database.foreign_keys:
            print(f"  {foreign_key}")
    return 0


def _describe_session(args: argparse.Namespace) -> Optional[PrismSession]:
    """Build a session from the shared spec arguments (None on bad input)."""
    session = PrismSession()
    num_samples = len(args.sample)
    session.configure(
        database=args.database,
        num_columns=args.columns,
        num_samples=num_samples,
        use_metadata=True,
        scheduler=args.scheduler,
        time_limit=_resolve_deadline(args),
    )
    for row, sample_text in enumerate(args.sample):
        cells = sample_text.split(";")
        if len(cells) > args.columns:
            print(
                f"error: sample {row + 1} has {len(cells)} cells but the target "
                f"schema has {args.columns} columns",
                file=sys.stderr,
            )
            return None
        for column, cell_text in enumerate(cells):
            session.set_sample_cell(row, column, cell_text)
    for metadata_text in args.metadata:
        column_text, __, constraint_text = metadata_text.partition(":")
        try:
            column = int(column_text)
        except ValueError:
            print(
                f"error: --metadata expects COLUMN:TEXT, got {metadata_text!r}",
                file=sys.stderr,
            )
            return None
        session.set_metadata_constraint(column, constraint_text)
    return session


def _command_search(args: argparse.Namespace) -> int:
    session = _describe_session(args)
    if session is None:
        return 2
    result = session.search()
    stats = result.stats
    print(
        f"{result.num_queries} satisfying queries "
        f"({stats.num_candidates} candidates, {stats.num_filters} filters, "
        f"{stats.validations} validations, {stats.elapsed_seconds:.2f}s, "
        f"scheduler={stats.scheduler_name})"
    )
    if result.timed_out:
        # Timeouts are a structured outcome: the partial queries and the
        # per-stage stats above are still printed, never a bare error.
        print("warning: discovery hit the time limit; results are partial")
    for index, sql in enumerate(result.sql()[: args.max_queries], start=1):
        print(f"  [{index}] {sql}")
    if result.num_queries > args.max_queries:
        print(f"  ... and {result.num_queries - args.max_queries} more")
    if args.explain is not None and result.num_queries:
        index = min(max(args.explain, 1), result.num_queries) - 1
        session.select_query(index)
        print()
        print(session.explain(fmt="ascii"))
    if result.timed_out and args.fail_on_timeout:
        return 3
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    session = _describe_session(args)
    if session is None:
        return 2
    result = session.search()
    if not result.num_queries:
        print("no satisfying queries to explain", file=sys.stderr)
        return 1
    index = min(max(args.query, 1), result.num_queries) - 1
    session.select_query(index)
    print(f"query [{index + 1}]: {session.sql()}")
    if args.plan:
        print(session.explain_plan())
    else:
        print(session.explain(fmt="ascii"))
    return 0


def _command_serve_batch(args: argparse.Namespace) -> int:
    if args.requests is not None:
        try:
            with open(args.requests, "r", encoding="utf-8") as handle:
                entries = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: could not read {args.requests!r}: {exc}",
                  file=sys.stderr)
            return 2
        if not isinstance(entries, list):
            print("error: the requests file must hold a JSON list",
                  file=sys.stderr)
            return 2
        try:
            requests = [request_from_dict(entry) for entry in entries]
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            requests = demo_requests(rounds=args.rounds, scheduler=args.scheduler)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    store = ArtifactStore(persist_dir=args.artifact_dir)
    try:
        service = DiscoveryService(
            store=store,
            workers=args.workers,
            queue_size=args.queue_size,
            default_scheduler=args.scheduler,
            default_deadline_s=_resolve_deadline(args),
            refresh_artifacts=args.refresh,
            shard_mode=args.shard_mode,
            start_method=args.start_method,
            replication=args.replication,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with service:
        responses = service.run_batch(requests)
        metrics = service.metrics()
    failures = 0
    for response in responses:
        line = (
            f"[{response.request_id}] {response.database}: {response.status}"
            f" — {response.num_queries} queries"
        )
        if response.result is not None:
            line += (
                f" ({response.result.stats.validations} validations, "
                f"exec {response.execution_seconds:.2f}s, "
                f"queued {response.queued_seconds:.2f}s)"
            )
        if response.status == "error":
            line += f" ({response.error})"
            failures += 1
        print(line)
    artifacts = metrics.artifacts
    worker_noun = "shard" if args.shard_mode == "process" else "worker"
    print(
        f"served {metrics.completed} requests with {args.workers} "
        f"{worker_noun}s ({args.shard_mode} mode): "
        f"{metrics.ok} ok, {metrics.timeouts} timeout, {metrics.errors} error"
    )
    if metrics.shards:
        per_shard = ", ".join(
            f"shard {shard_id}: {info['served']} served"
            for shard_id, info in sorted(metrics.shards.items())
        )
        print(f"shard breakdown: {per_shard}")
    print(
        f"artifact store: {artifacts['builds']} builds, "
        f"{artifacts['hits']} cache hits, {artifacts['disk_loads']} disk loads"
    )
    if args.refresh:
        print(
            f"incremental refresh: {artifacts['refreshes']} refreshes "
            f"({artifacts['delta_rows_applied']} delta rows applied), "
            f"{artifacts['rebuild_fallbacks']} rebuild fallbacks"
        )
    print(
        f"latency: mean {metrics.latency_mean_seconds:.2f}s, "
        f"p95 {metrics.latency_p95_seconds:.2f}s, "
        f"max {metrics.latency_max_seconds:.2f}s"
    )
    return 1 if failures else 0


def _command_demo(scheduler: str) -> int:
    """The §3 walk-through: Lake Tahoe on Mondial."""
    session = PrismSession()
    print("1. Configuration: Mondial, 3 target columns, 1 sample, metadata on")
    session.configure("mondial", num_columns=3, num_samples=1,
                      use_metadata=True, scheduler=scheduler)
    print("2. Description:")
    print("   2.1 sample cell 1 <- 'California || Nevada'")
    session.set_sample_cell(0, 0, "California || Nevada")
    print("   2.2 sample cell 2 <- 'Lake Tahoe'")
    session.set_sample_cell(0, 1, "Lake Tahoe")
    print("   2.3 metadata cell 3 <- \"DataType=='decimal' AND MinValue>=0\"")
    session.set_metadata_constraint(2, "DataType=='decimal' AND MinValue>=0")
    print("3. Start Searching!")
    result = session.search()
    print(f"4. Result: {result.num_queries} satisfying queries "
          f"({result.stats.validations} filter validations, "
          f"{result.stats.elapsed_seconds:.2f}s)")
    for index, sql in enumerate(result.sql()[:5], start=1):
        print(f"   [{index}] {sql}")
    if result.num_queries:
        session.select_query(0)
        print("4.2 explanation of the first query:")
        print(session.explain(fmt="ascii"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "databases":
        return _command_databases()
    if args.command == "schema":
        return _command_schema(args.database)
    if args.command == "search":
        return _command_search(args)
    if args.command == "explain":
        return _command_explain(args)
    if args.command == "serve-batch":
        return _command_serve_batch(args)
    if args.command == "demo":
        return _command_demo(args.scheduler)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
