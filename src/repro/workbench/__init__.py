"""Workbench: the demo's Configuration → Description → Result workflow.

Importing :class:`PrismSession` from this package still works but is
deprecated — the stable import point is :mod:`repro.api` (or the
top-level :mod:`repro` package).  ``repro.workbench.session`` and
``repro.workbench.cli`` remain importable without warnings.
"""

from importlib import import_module as _import_module
from warnings import warn as _warn

_EXPORTS = {
    "PrismSession": "repro.workbench.session",
    "SessionStage": "repro.workbench.session",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.workbench' has no attribute {name!r}"
        )
    _warn(
        f"importing {name} from 'repro.workbench' is deprecated; "
        "import it from 'repro.api' (or the top-level 'repro' package)",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(_import_module(module_name), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))
