"""Workbench: the demo's Configuration → Description → Result workflow."""

from repro.workbench.session import PrismSession, SessionStage

__all__ = ["PrismSession", "SessionStage"]
