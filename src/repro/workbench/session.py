"""The demo workflow as a programmatic session.

The demo's web UI has three sections (§2.2): **Configuration** (source
database, number of target columns, number of sample constraints, whether
metadata constraints are given), **Description** (the constraint grid) and
**Result** (the discovered queries plus their explanation graphs).
:class:`PrismSession` exposes exactly that workflow so it can be driven
from scripts, tests and the CLI; the walk-through of §3 maps 1:1 onto its
method calls.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.constraints.parser import parse_metadata_constraint, parse_value_constraint
from repro.constraints.sample import SampleConstraint
from repro.constraints.spec import MappingSpec
from repro.constraints.values import ValueConstraint
from repro.dataset.database import Database
from repro.datasets import available_databases, load_database_by_name
from repro.discovery.engine import DEFAULT_TIME_LIMIT_SECONDS, Prism
from repro.discovery.result import DiscoveryResult, DiscoveryStats
from repro.errors import DiscoveryTimeout, SessionError
from repro.service.artifacts import ArtifactStore
from repro.explain.graph import QueryGraph
from repro.explain.render import (
    plan_to_ascii,
    shared_structure_counts,
    to_ascii,
    to_dict,
    to_dot,
)
from repro.query.plan import PredicateSpec
from repro.query.pj_query import ProjectJoinQuery
from repro.query.sql import to_sql

__all__ = ["PrismSession", "SessionStage"]


class SessionStage(enum.Enum):
    """Which section of the workflow the session is currently in."""

    CONFIGURATION = "configuration"
    DESCRIPTION = "description"
    RESULT = "result"


class PrismSession:
    """Drives the Configuration → Description → Result workflow."""

    def __init__(
        self,
        databases: Optional[dict[str, Database]] = None,
        artifact_store: Optional[ArtifactStore] = None,
    ):
        """Create a session.

        Args:
            databases: optional mapping of database name → loaded database.
                When omitted, the bundled demo databases (mondial, imdb,
                nba) are loaded lazily on first use.
            artifact_store: optional shared
                :class:`~repro.service.ArtifactStore`.  When given, the
                session's engines are built from (and warm-start on) the
                store's cached preprocessing bundles, so many sessions —
                or a session and a :class:`~repro.service.DiscoveryService`
                — share one preprocessing pass per database state.
        """
        self._databases = dict(databases) if databases is not None else None
        self._artifact_store = artifact_store
        self._loaded_databases: dict[str, Database] = {}
        self._engines: dict[str, tuple[object, Prism]] = {}
        self._stage = SessionStage.CONFIGURATION
        self._database_name: Optional[str] = None
        self._num_columns = 0
        self._num_samples = 0
        self._use_metadata = True
        self._scheduler = "bayesian"
        self._time_limit = DEFAULT_TIME_LIMIT_SECONDS
        self._sample_cells: list[list[Optional[ValueConstraint]]] = []
        self._metadata_texts: dict[int, str] = {}
        self._result: Optional[DiscoveryResult] = None
        self._selected: Optional[int] = None

    # ------------------------------------------------------------------
    # Configuration section
    # ------------------------------------------------------------------
    @property
    def stage(self) -> SessionStage:
        """The current workflow stage."""
        return self._stage

    def available_databases(self) -> list[str]:
        """Names of the databases the user can pick from."""
        if self._databases is not None:
            return sorted(self._databases)
        return available_databases()

    def configure(
        self,
        database: str,
        num_columns: int,
        num_samples: int = 1,
        use_metadata: bool = True,
        scheduler: str = "bayesian",
        time_limit: float = DEFAULT_TIME_LIMIT_SECONDS,
    ) -> "PrismSession":
        """Fill in the Configuration section and move to Description."""
        if num_columns < 1:
            raise SessionError("the target schema needs at least one column")
        if num_samples < 0:
            raise SessionError("the number of sample constraints cannot be negative")
        if database not in self.available_databases():
            raise SessionError(
                f"unknown database {database!r}; available: "
                f"{self.available_databases()}"
            )
        self._database_name = database
        self._num_columns = num_columns
        self._num_samples = num_samples
        self._use_metadata = use_metadata
        self._scheduler = scheduler
        self._time_limit = time_limit
        self._sample_cells = [
            [None] * num_columns for __ in range(num_samples)
        ]
        self._metadata_texts = {}
        self._result = None
        self._selected = None
        self._stage = SessionStage.DESCRIPTION
        return self

    # ------------------------------------------------------------------
    # Description section
    # ------------------------------------------------------------------
    def _require_description_stage(self) -> None:
        if self._stage is SessionStage.CONFIGURATION:
            raise SessionError("configure() must be called before describing constraints")

    def set_sample_cell(self, row: int, column: int, text: str) -> "PrismSession":
        """Type ``text`` into cell (row, column) of the sample-constraint grid."""
        self._require_description_stage()
        if not 0 <= row < self._num_samples:
            raise SessionError(
                f"sample row {row} out of range (configured {self._num_samples})"
            )
        if not 0 <= column < self._num_columns:
            raise SessionError(
                f"column {column} out of range (configured {self._num_columns})"
            )
        self._sample_cells[row][column] = parse_value_constraint(text)
        self._stage = SessionStage.DESCRIPTION
        return self

    def set_metadata_constraint(self, column: int, text: str) -> "PrismSession":
        """Type ``text`` into the metadata-constraint cell of ``column``."""
        self._require_description_stage()
        if not self._use_metadata:
            raise SessionError(
                "metadata constraints were disabled in the Configuration section"
            )
        if not 0 <= column < self._num_columns:
            raise SessionError(
                f"column {column} out of range (configured {self._num_columns})"
            )
        if text and text.strip():
            self._metadata_texts[column] = text
        else:
            self._metadata_texts.pop(column, None)
        return self

    def build_spec(self) -> MappingSpec:
        """Assemble the current Description section into a :class:`MappingSpec`."""
        self._require_description_stage()
        spec = MappingSpec(self._num_columns)
        for cells in self._sample_cells:
            if all(cell is None for cell in cells):
                continue
            spec.add_sample(SampleConstraint(list(cells)))
        for column, text in self._metadata_texts.items():
            constraint = parse_metadata_constraint(text)
            if constraint is not None:
                spec.set_metadata(column, constraint)
        return spec

    # ------------------------------------------------------------------
    # Result section
    # ------------------------------------------------------------------
    def _load_database(self) -> Database:
        if self._database_name is None:
            raise SessionError("no database configured")
        if self._databases is not None:
            return self._databases[self._database_name]
        database = self._loaded_databases.get(self._database_name)
        if database is None:
            database = load_database_by_name(self._database_name)
            self._loaded_databases[self._database_name] = database
        return database

    def _engine(self) -> Prism:
        if self._database_name is None:
            raise SessionError("no database configured")
        if self._artifact_store is not None:
            database = self._load_database()
            bundle = self._artifact_store.get(database)
            cached = self._engines.get(self._database_name)
            if cached is not None and cached[0] == bundle.key:
                return cached[1]
            engine = Prism.from_artifacts(bundle)
            self._engines[self._database_name] = (bundle.key, engine)
            return engine
        cached = self._engines.get(self._database_name)
        if cached is None:
            cached = (None, Prism(self._load_database()))
            self._engines[self._database_name] = cached
        return cached[1]

    def search(self) -> DiscoveryResult:
        """Hit the "Start Searching!" button.

        A round that exceeds its time budget is never an error path at
        this layer: an engine-raised :class:`DiscoveryTimeout` is folded
        into a structured, partial :class:`DiscoveryResult` whose
        ``timed_out`` flag is set, preserving whatever queries and stats
        were produced before the deadline.
        """
        spec = self.build_spec()
        spec.validate()
        engine = self._engine()
        try:
            result = engine.discover(
                spec,
                scheduler=self._scheduler,
                time_limit=self._time_limit,
                raise_on_timeout=True,
            )
        except DiscoveryTimeout as exc:
            result = exc.partial_result
            if result is None:
                stats = DiscoveryStats(scheduler_name=self._scheduler)
                stats.timed_out = True
                result = DiscoveryResult(stats=stats)
            result.stats.timed_out = True
        self._result = result
        self._stage = SessionStage.RESULT
        self._selected = None
        return self._result

    def _require_result(self) -> DiscoveryResult:
        if self._result is None:
            raise SessionError("search() has not been run yet")
        return self._result

    @property
    def result(self) -> Optional[DiscoveryResult]:
        """The most recent discovery result (None before the first search)."""
        return self._result

    def queries(self) -> list[ProjectJoinQuery]:
        """The satisfying schema mapping queries of the last search."""
        return list(self._require_result().queries)

    def select_query(self, index: int) -> ProjectJoinQuery:
        """Point at one of the returned queries (0-based index)."""
        result = self._require_result()
        if not 0 <= index < len(result.queries):
            raise SessionError(
                f"query index {index} out of range; {len(result.queries)} "
                "queries were discovered"
            )
        self._selected = index
        return result.queries[index]

    @property
    def selected_query(self) -> Optional[ProjectJoinQuery]:
        """The currently selected query, if any."""
        if self._selected is None:
            return None
        return self._require_result().queries[self._selected]

    def sql(self, index: Optional[int] = None) -> str:
        """SQL text of the selected (or given) query."""
        query = self._query_for(index)
        return to_sql(query)

    def explain(
        self,
        index: Optional[int] = None,
        constraint_positions: Optional[list[int]] = None,
        fmt: str = "ascii",
    ):
        """Explanation graph of the selected (or given) query.

        Args:
            index: query index; defaults to the currently selected query.
            constraint_positions: which constraints to overlay (all when None).
            fmt: ``ascii``, ``dot``, ``dict`` or ``graph`` (the raw
                :class:`QueryGraph`).
        """
        query = self._query_for(index)
        graph = QueryGraph.from_query(
            query, spec=self.build_spec(), constraint_positions=constraint_positions
        )
        if fmt == "ascii":
            return to_ascii(graph)
        if fmt == "dot":
            return to_dot(graph)
        if fmt == "dict":
            return to_dict(graph)
        if fmt == "graph":
            return graph
        raise SessionError(f"unknown explanation format: {fmt!r}")

    def explain_plan(
        self, index: Optional[int] = None, sample: Optional[int] = None
    ) -> str:
        """The optimized logical plan of the selected (or given) query.

        The join order is exactly what the engine's executor runs for
        the query (physical plans are keyed by join structure, so it
        never depends on the constraints).  One sample row's
        constraints are overlaid onto the scans they push down to —
        sample rows are alternatives, validated by separate probes, so
        showing several at once would misstate the cardinalities.  The
        rendering is annotated with the planner's estimated
        cardinalities and with which sub-structures are shared by other
        queries of this discovery round (those are the prefixes
        validated in one batched pass and served by one cached physical
        plan).

        Args:
            index: query index; defaults to the currently selected query.
            sample: which sample row's constraints to overlay
                (0-based); defaults to the first row carrying any.
        """
        query = self._query_for(index)
        engine = self._engine()
        executor = engine.executor
        spec = self.build_spec()
        samples = spec.samples
        if sample is not None and not 0 <= sample < len(samples):
            raise SessionError(
                f"sample row {sample} out of range; the spec has "
                f"{len(samples)} sample rows"
            )
        specs: list[PredicateSpec] = []
        chosen = [samples[sample]] if sample is not None else samples
        for row in chosen:
            for position in row.constrained_positions():
                if position >= query.width:
                    continue
                ref = query.projections[position]
                constraint = row.cell(position)
                # Tag with the constraint object itself (rendered via its
                # describe()): the planner's histogram selectivity path
                # inspects Range bounds, so the explain annotations show
                # the same sketch-vs-raw estimates validation planned with.
                specs.append(
                    PredicateSpec(ref.table, ref.column, tag=constraint)
                )
            if specs:
                break
        plan = executor.logical_plan(query, specs)
        shared = shared_structure_counts(
            executor.logical_plan(other) for other in self._require_result().queries
        )
        return plan_to_ascii(plan, planner=executor.planner, shared=shared)

    def _query_for(self, index: Optional[int]) -> ProjectJoinQuery:
        result = self._require_result()
        if index is None:
            if self._selected is None:
                raise SessionError("no query selected; call select_query() first")
            index = self._selected
        if not 0 <= index < len(result.queries):
            raise SessionError(f"query index {index} out of range")
        return result.queries[index]

    def reset(self) -> "PrismSession":
        """Return to the Configuration section for a fresh round."""
        self._stage = SessionStage.CONFIGURATION
        self._result = None
        self._selected = None
        self._sample_cells = []
        self._metadata_texts = {}
        return self
