"""The v1 public API: one import point for everything supported.

``repro.api`` is the stable, versioned surface of the reproduction —
import from here (or from the top-level :mod:`repro` package, which
re-exports the same names) rather than from implementation modules like
``repro.service.service``; those deep paths still work for one release
behind :class:`DeprecationWarning` shims, but only this module carries a
compatibility promise.

The surface, by lifecycle:

* **Serving** — :class:`DiscoveryService` (thread- or process-sharded
  executor), :class:`DiscoveryRequest` / :class:`DiscoveryResponse` (the
  wire-serializable round-trip: ``to_json()``/``from_json()`` with an
  ``api_version`` stamp, strict decoding via :class:`WireFormatError`),
  :class:`DiscoveryTicket` (cancellable future) and
  :class:`ServiceMetrics`.
* **Preprocessing** — :class:`ArtifactStore`: build-once, optionally
  disk-persisted bundles that both thread workers and shard processes
  warm-start from.
* **Embedding** — :class:`Prism`, the in-process engine, for callers
  that do not need a serving front door; :class:`MappingSpec` and the
  constraint parsers to express what to discover.
* **Interactive** — :class:`PrismSession`, the workbench's
  Configuration → Description → Result workflow.

``API_VERSION`` is the wire-format major version this build speaks; it
only changes when a message shape changes incompatibly.
"""

from repro.constraints.parser import (
    parse_metadata_constraint,
    parse_value_constraint,
)
from repro.constraints.spec import MappingSpec
from repro.discovery.engine import Prism
from repro.discovery.result import DiscoveryResult, DiscoveryStats
from repro.errors import (
    ReproError,
    ServiceError,
    ServiceOverloaded,
    WireFormatError,
)
from repro.service.artifacts import ArtifactStore
from repro.service.service import (
    DiscoveryRequest,
    DiscoveryResponse,
    DiscoveryService,
    DiscoveryTicket,
    ServiceMetrics,
)
from repro.service.shards import ShardAssignment
from repro.service.wire import API_VERSION
from repro.service.workload import demo_requests, request_from_dict
from repro.workbench.session import PrismSession

__all__ = [
    "API_VERSION",
    "ArtifactStore",
    "DiscoveryRequest",
    "DiscoveryResponse",
    "DiscoveryResult",
    "DiscoveryService",
    "DiscoveryStats",
    "DiscoveryTicket",
    "MappingSpec",
    "Prism",
    "PrismSession",
    "ReproError",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloaded",
    "ShardAssignment",
    "WireFormatError",
    "demo_requests",
    "parse_metadata_constraint",
    "parse_value_constraint",
    "request_from_dict",
]
