"""The "Filter" baseline scheduler wrapped as a standalone engine.

The paper's §2.4 compares "Prism with Filter": the same multiresolution
pipeline, but with the filter-scheduling heuristic of Shen et al.
(SIGMOD 2014), where a filter's failure probability is assumed
proportional to its join-path length.  This module exposes that
configuration as a first-class baseline so experiments can call it
symmetrically with Prism.
"""

from __future__ import annotations

from typing import Optional

from repro.constraints.spec import MappingSpec
from repro.dataset.database import Database
from repro.discovery.candidates import GenerationLimits
from repro.discovery.engine import Prism
from repro.discovery.result import DiscoveryResult

__all__ = ["FilterBaseline"]


class FilterBaseline:
    """Multiresolution discovery with path-length filter scheduling."""

    def __init__(
        self,
        database: Database,
        time_limit: float = 60.0,
        limits: Optional[GenerationLimits] = None,
    ):
        self._engine = Prism(
            database,
            scheduler="filter",
            time_limit=time_limit,
            limits=limits,
            train_bayesian=False,
        )

    @property
    def database(self) -> Database:
        """The source database."""
        return self._engine.database

    def discover(
        self, spec: MappingSpec, time_limit: Optional[float] = None
    ) -> DiscoveryResult:
        """Discover mappings using the path-length scheduling heuristic."""
        return self._engine.discover(spec, scheduler="filter", time_limit=time_limit)
