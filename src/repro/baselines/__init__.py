"""Baseline systems the paper compares against or builds upon."""

from repro.baselines.filter_baseline import FilterBaseline
from repro.baselines.mweaver import MWeaverBaseline, UnsupportedSpecError

__all__ = ["FilterBaseline", "MWeaverBaseline", "UnsupportedSpecError"]
