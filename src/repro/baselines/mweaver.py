"""MWeaver-style sample-driven schema mapping baseline.

MWeaver (Qian, Cafarella & Jagadish, SIGMOD 2012) is the sample-driven
system the introduction contrasts Prism with: it "takes complete target
schema data samples from the user and synthesizes schema mapping queries in
the form of Project-Join (PJ) SQL queries" (§1).  It therefore supports
only the *high-resolution* corner of Prism's language:

* every sample row must be complete (no blank cells), and
* every cell must be an exact value (no disjunctions, ranges or
  predicates), and
* no metadata constraints.

This baseline is used by experiment E6 to reproduce the paper's
"high-resolution issue": when the user cannot supply exact values the
sample-driven approach simply cannot run, while Prism still succeeds with
medium/low-resolution constraints.
"""

from __future__ import annotations

from typing import Optional

from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue
from repro.dataset.database import Database
from repro.discovery.candidates import GenerationLimits
from repro.discovery.engine import Prism
from repro.discovery.result import DiscoveryResult
from repro.errors import SpecError

__all__ = ["MWeaverBaseline", "UnsupportedSpecError"]


class UnsupportedSpecError(SpecError):
    """The spec uses constraints the sample-driven baseline cannot ingest."""


class MWeaverBaseline:
    """Exact-complete-sample schema mapping discovery."""

    def __init__(
        self,
        database: Database,
        time_limit: float = 60.0,
        limits: Optional[GenerationLimits] = None,
    ):
        # The baseline reuses Prism's candidate machinery with the naive
        # scheduler (validate full candidates one by one) and no Bayesian
        # models, mirroring the original system's architecture.
        self._engine = Prism(
            database,
            scheduler="naive",
            time_limit=time_limit,
            limits=limits,
            train_bayesian=False,
        )

    @property
    def database(self) -> Database:
        """The source database."""
        return self._engine.database

    @staticmethod
    def check_supported(spec: MappingSpec) -> None:
        """Raise :class:`UnsupportedSpecError` unless the spec is exact/complete."""
        if spec.metadata:
            raise UnsupportedSpecError(
                "sample-driven mapping cannot use column metadata constraints"
            )
        if not spec.samples:
            raise UnsupportedSpecError(
                "sample-driven mapping requires at least one sample row"
            )
        for index, sample in enumerate(spec.samples):
            if not sample.is_complete:
                raise UnsupportedSpecError(
                    f"sample {index + 1} is incomplete; sample-driven mapping "
                    "requires a value in every cell"
                )
            for cell in sample.cells:
                if not isinstance(cell, ExactValue):
                    raise UnsupportedSpecError(
                        f"sample {index + 1} contains a non-exact constraint "
                        f"({cell.describe()!r}); sample-driven mapping requires "
                        "exact values"
                    )

    def supports(self, spec: MappingSpec) -> bool:
        """Whether the baseline can ingest ``spec`` at all."""
        try:
            self.check_supported(spec)
        except UnsupportedSpecError:
            return False
        return True

    def discover(
        self, spec: MappingSpec, time_limit: Optional[float] = None
    ) -> DiscoveryResult:
        """Discover mappings for an exact, complete-sample spec."""
        self.check_supported(spec)
        return self._engine.discover(spec, scheduler="naive", time_limit=time_limit)
