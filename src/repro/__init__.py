"""repro — a reproduction of Prism, the multiresolution schema mapping system.

Prism (Jin, Baik, Cafarella, Jagadish, Lou — CIDR 2019) discovers
Project-Join schema mapping queries from user constraints of varying
resolution: exact sample rows, disjunctions of possible values, value
ranges, and column-level metadata such as data types or min/max values.

Typical usage::

    from repro import Prism, MappingSpec, load_mondial
    from repro.constraints import parse_value_constraint, parse_metadata_constraint

    database = load_mondial()
    prism = Prism(database)

    spec = MappingSpec(num_columns=3)
    spec.add_sample_cells([
        parse_value_constraint("California || Nevada"),
        parse_value_constraint("Lake Tahoe"),
        None,
    ])
    spec.set_metadata(2, parse_metadata_constraint("DataType=='decimal' AND MinValue>=0"))

    result = prism.discover(spec)
    for sql in result.sql():
        print(sql)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.storage` — pluggable columnar storage backends (dictionary
  encoding, NULL masks, cached join-key hash indexes).
* :mod:`repro.dataset` — in-memory relational engine, inverted index,
  metadata catalog, schema graph.
* :mod:`repro.datasets` — synthetic Mondial / IMDB / NBA databases.
* :mod:`repro.query` — Project-Join queries, SQL rendering, hash-join executor.
* :mod:`repro.constraints` — the multiresolution constraint language.
* :mod:`repro.discovery` — related columns, candidates, filters, scheduling.
* :mod:`repro.bayesian` — selectivity models driving the Prism scheduler.
* :mod:`repro.baselines` — MWeaver-style and Filter baselines.
* :mod:`repro.explain` — query explanation graphs.
* :mod:`repro.service` — shared preprocessing-artifact store + concurrent
  discovery service (thread- or process-sharded executor, bounded queue,
  deadlines, metrics, versioned v1 wire format).
* :mod:`repro.api` — the stable v1 public surface; the single import
  point with a compatibility promise.
* :mod:`repro.workbench` — the demo workflow (session + CLI).
* :mod:`repro.workloads` / :mod:`repro.evaluation` — §2.4 evaluation harness.
"""

from repro.baselines import FilterBaseline, MWeaverBaseline
from repro.constraints import (
    MappingSpec,
    MetadataPredicate,
    Resolution,
    SampleConstraint,
    parse_metadata_constraint,
    parse_value_constraint,
)
from repro.dataset import (
    Column,
    ColumnRef,
    Database,
    DataType,
    ForeignKey,
    InvertedIndex,
    MetadataCatalog,
    SchemaGraph,
    Table,
)
from repro.datasets import (
    available_databases,
    generate_synthetic_database,
    load_database_by_name,
    load_imdb,
    load_mondial,
    load_nba,
)
from repro.discovery import (
    DiscoveryResult,
    DiscoveryStats,
    GenerationLimits,
    Prism,
)
from repro.explain import QueryGraph, to_ascii, to_dot
from repro.query import Executor, ProjectJoinQuery, to_sql
from repro.service.artifacts import ArtifactBundle, ArtifactKey, ArtifactStore
from repro.service.service import (
    DiscoveryRequest,
    DiscoveryResponse,
    DiscoveryService,
    DiscoveryTicket,
    ServiceMetrics,
)
from repro.storage import ColumnStore, StorageBackend, TableDelta, TableMark
from repro.workbench.session import PrismSession

__version__ = "0.1.0"

__all__ = [
    "ArtifactBundle",
    "ArtifactKey",
    "ArtifactStore",
    "Column",
    "ColumnRef",
    "ColumnStore",
    "Database",
    "DataType",
    "DiscoveryRequest",
    "DiscoveryResponse",
    "DiscoveryResult",
    "DiscoveryService",
    "DiscoveryStats",
    "DiscoveryTicket",
    "ServiceMetrics",
    "Executor",
    "FilterBaseline",
    "ForeignKey",
    "GenerationLimits",
    "InvertedIndex",
    "MappingSpec",
    "MetadataCatalog",
    "MetadataPredicate",
    "MWeaverBaseline",
    "Prism",
    "PrismSession",
    "ProjectJoinQuery",
    "QueryGraph",
    "Resolution",
    "SampleConstraint",
    "SchemaGraph",
    "StorageBackend",
    "Table",
    "TableDelta",
    "TableMark",
    "available_databases",
    "generate_synthetic_database",
    "load_database_by_name",
    "load_imdb",
    "load_mondial",
    "load_nba",
    "parse_metadata_constraint",
    "parse_value_constraint",
    "to_ascii",
    "to_dot",
    "to_sql",
    "__version__",
]
