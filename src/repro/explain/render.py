"""Renderers for query-explanation graphs and optimized logical plans.

The demo draws the graph in a browser canvas; here we provide equivalent
artefacts that work in a terminal and in downstream tooling:

* :func:`to_dot` — Graphviz DOT text (orange boxes for relations, green
  ellipses for attributes, blue boxes for constraints, exactly as the
  paper describes Figure 4c);
* :func:`to_ascii` — a plain-text rendering for CLIs and logs;
* :func:`to_dict` — a JSON-serialisable structure for web frontends;
* :func:`plan_to_ascii` — the optimized logical plan of a query
  (``prism explain --plan``), annotated with the planner's estimated
  cardinalities and with which sub-structures are shared by other
  candidates of the same discovery round.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping, Optional

from repro.explain.graph import (
    NODE_ATTRIBUTE,
    NODE_CONSTRAINT,
    NODE_RELATION,
    QueryGraph,
)
from repro.query.plan import (
    Filter as PlanFilter,
    Join as PlanJoin,
    PlanNode,
    Scan as PlanScan,
    edge_key,
)
from repro.query.sql import to_sql

__all__ = [
    "to_dot",
    "to_ascii",
    "to_dict",
    "to_json",
    "plan_to_ascii",
    "structure_key",
    "shared_structure_counts",
]

_DOT_STYLES = {
    NODE_RELATION: 'shape=box, style=filled, fillcolor="orange"',
    NODE_ATTRIBUTE: 'shape=ellipse, style=filled, fillcolor="palegreen"',
    NODE_CONSTRAINT: 'shape=box, style="filled,dashed", fillcolor="lightblue"',
}


def _dot_escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(query_graph: QueryGraph, name: str = "schema_mapping") -> str:
    """Render the explanation graph as Graphviz DOT text."""
    lines = [f"graph {name} {{", "  rankdir=LR;"]
    for node, data in query_graph.graph.nodes(data=True):
        style = _DOT_STYLES.get(data.get("kind"), "shape=box")
        label = _dot_escape(str(data.get("label", node)))
        lines.append(f'  "{_dot_escape(node)}" [label="{label}", {style}];')
    for left, right, data in query_graph.graph.edges(data=True):
        attributes = ""
        if data.get("label"):
            attributes = f' [label="{_dot_escape(str(data["label"]))}"]'
        lines.append(
            f'  "{_dot_escape(left)}" -- "{_dot_escape(right)}"{attributes};'
        )
    lines.append("}")
    return "\n".join(lines)


def to_ascii(query_graph: QueryGraph) -> str:
    """Render the explanation graph as indented plain text."""
    graph = query_graph.graph
    lines = [f"query: {to_sql(query_graph.query)}", "relations:"]
    for node in sorted(query_graph.relation_nodes):
        data = graph.nodes[node]
        lines.append(f"  [{data['label']}]")
        for neighbor in sorted(graph.neighbors(node)):
            neighbor_data = graph.nodes[neighbor]
            if neighbor_data.get("kind") == NODE_ATTRIBUTE:
                lines.append(f"    project -> ({neighbor_data['label']})")
    join_edges = query_graph.join_edges()
    if join_edges:
        lines.append("joins:")
        for left, right in sorted(join_edges):
            label = graph.edges[left, right].get("label", "")
            lines.append(f"  {graph.nodes[left]['label']} == {graph.nodes[right]['label']}"
                         f"  ({label})")
    constraints = query_graph.constraint_nodes
    if constraints:
        lines.append("constraints:")
        for node in sorted(constraints):
            data = graph.nodes[node]
            targets = [
                graph.nodes[neighbor]["label"]
                for neighbor in graph.neighbors(node)
            ]
            lines.append(
                f"  <{data['label']}> ({data.get('source', 'constraint')}) "
                f"satisfied at {', '.join(sorted(targets))}"
            )
    return "\n".join(lines)


def to_dict(query_graph: QueryGraph) -> dict:
    """Render the explanation graph as a JSON-serialisable dictionary."""
    graph = query_graph.graph
    return {
        "sql": to_sql(query_graph.query),
        "nodes": [
            {
                "id": node,
                "kind": data.get("kind"),
                "label": data.get("label"),
                "color": data.get("color"),
                "shape": data.get("shape"),
            }
            for node, data in graph.nodes(data=True)
        ],
        "edges": [
            {
                "source": left,
                "target": right,
                "kind": data.get("kind"),
                "label": data.get("label"),
            }
            for left, right, data in graph.edges(data=True)
        ],
    }


def to_json(query_graph: QueryGraph, indent: int = 2) -> str:
    """Render the explanation graph as a JSON string."""
    return json.dumps(to_dict(query_graph), indent=indent)


# ----------------------------------------------------------------------
# Logical-plan rendering (``prism explain --plan``)
# ----------------------------------------------------------------------
def structure_key(node: PlanNode) -> Optional[tuple]:
    """Join-structure identity of a plan node, ignoring predicates.

    ``Scan`` and ``Filter``-over-scan nodes key on their table; ``Join``
    subtrees key on their edge set over their table set (the same
    identity batched validation groups by).  Wrapper nodes
    (Project/Exists) return ``None`` — they are never shared.
    """
    if isinstance(node, PlanScan):
        return ("scan", node.table)
    if isinstance(node, PlanFilter):
        return structure_key(node.child)
    if isinstance(node, PlanJoin):
        return (
            "join",
            tuple(sorted(edge_key(edge) for edge in node.edges())),
            tuple(sorted(node.tables)),
        )
    return None


def shared_structure_counts(plans: Iterable[PlanNode]) -> dict[tuple, int]:
    """How many of ``plans`` contain each join sub-structure.

    Feed every candidate's optimized plan in.  A count above one means
    the sub-structure occurs in several candidates' plans.  Physical
    plans are cached — and validation batched — at *whole-query*
    join-structure granularity, so for a candidate's top-level join
    node the count is exactly the number of candidates sharing its
    cached plan and batch passes; for strict sub-structures it reports
    structural overlap only (the seam a future sub-plan memo would
    exploit).
    """
    counts: dict[tuple, int] = {}
    for plan in plans:
        seen: set[tuple] = set()
        for node in plan.walk():
            key = structure_key(node)
            if key is not None and key not in seen:
                seen.add(key)
                counts[key] = counts.get(key, 0) + 1
    return counts


def plan_to_ascii(
    plan: PlanNode,
    planner=None,
    shared: Optional[Mapping[tuple, int]] = None,
) -> str:
    """Pretty-print an optimized logical plan as an indented tree.

    Args:
        plan: the optimized plan (from
            :meth:`~repro.query.executor.Executor.logical_plan`).
        planner: when given, each node is annotated with the planner's
            estimated output cardinality (``~N rows``).  Planners with
            statistics sketches additionally report which estimator
            answered: sketch-informed nodes render as
            ``~N rows [sketch] (raw ~M)`` with the raw-count estimate
            alongside, so a user can see exactly where the HLL overlap
            or histogram selectivity changed the plan's numbers.
        shared: counts from :func:`shared_structure_counts`; nodes whose
            join structure occurs in more than one candidate are
            annotated ``structure in K candidates`` (for the plan's
            top-level join this is exactly the plan-cache / batched-
            validation sharing; for sub-structures it is structural
            overlap).
    """
    lines: list[str] = []

    def render(node: PlanNode, depth: int) -> None:
        annotations: list[str] = []
        if planner is not None:
            estimate = getattr(planner, "node_estimate", None)
            if estimate is not None:
                rows, raw_rows, source = estimate(node)
                if source == "sketch":
                    annotations.append(
                        f"~{rows:.3g} rows [sketch] (raw ~{raw_rows:.3g})"
                    )
                else:
                    annotations.append(f"~{rows:.3g} rows")
            else:
                annotations.append(f"~{planner.estimated_rows(node):.3g} rows")
        if shared is not None:
            key = structure_key(node)
            count = shared.get(key, 0) if key is not None else 0
            if count > 1:
                annotations.append(f"structure in {count} candidates")
        suffix = f"  ({'; '.join(annotations)})" if annotations else ""
        lines.append("  " * depth + str(node) + suffix)
        for child in node.children():
            render(child, depth + 1)

    render(plan, 0)
    return "\n".join(lines)
