"""Renderers for query-explanation graphs.

The demo draws the graph in a browser canvas; here we provide equivalent
artefacts that work in a terminal and in downstream tooling:

* :func:`to_dot` — Graphviz DOT text (orange boxes for relations, green
  ellipses for attributes, blue boxes for constraints, exactly as the
  paper describes Figure 4c);
* :func:`to_ascii` — a plain-text rendering for CLIs and logs;
* :func:`to_dict` — a JSON-serialisable structure for web frontends.
"""

from __future__ import annotations

import json

from repro.explain.graph import (
    NODE_ATTRIBUTE,
    NODE_CONSTRAINT,
    NODE_RELATION,
    QueryGraph,
)
from repro.query.sql import to_sql

__all__ = ["to_dot", "to_ascii", "to_dict", "to_json"]

_DOT_STYLES = {
    NODE_RELATION: 'shape=box, style=filled, fillcolor="orange"',
    NODE_ATTRIBUTE: 'shape=ellipse, style=filled, fillcolor="palegreen"',
    NODE_CONSTRAINT: 'shape=box, style="filled,dashed", fillcolor="lightblue"',
}


def _dot_escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(query_graph: QueryGraph, name: str = "schema_mapping") -> str:
    """Render the explanation graph as Graphviz DOT text."""
    lines = [f"graph {name} {{", "  rankdir=LR;"]
    for node, data in query_graph.graph.nodes(data=True):
        style = _DOT_STYLES.get(data.get("kind"), "shape=box")
        label = _dot_escape(str(data.get("label", node)))
        lines.append(f'  "{_dot_escape(node)}" [label="{label}", {style}];')
    for left, right, data in query_graph.graph.edges(data=True):
        attributes = ""
        if data.get("label"):
            attributes = f' [label="{_dot_escape(str(data["label"]))}"]'
        lines.append(
            f'  "{_dot_escape(left)}" -- "{_dot_escape(right)}"{attributes};'
        )
    lines.append("}")
    return "\n".join(lines)


def to_ascii(query_graph: QueryGraph) -> str:
    """Render the explanation graph as indented plain text."""
    graph = query_graph.graph
    lines = [f"query: {to_sql(query_graph.query)}", "relations:"]
    for node in sorted(query_graph.relation_nodes):
        data = graph.nodes[node]
        lines.append(f"  [{data['label']}]")
        for neighbor in sorted(graph.neighbors(node)):
            neighbor_data = graph.nodes[neighbor]
            if neighbor_data.get("kind") == NODE_ATTRIBUTE:
                lines.append(f"    project -> ({neighbor_data['label']})")
    join_edges = query_graph.join_edges()
    if join_edges:
        lines.append("joins:")
        for left, right in sorted(join_edges):
            label = graph.edges[left, right].get("label", "")
            lines.append(f"  {graph.nodes[left]['label']} == {graph.nodes[right]['label']}"
                         f"  ({label})")
    constraints = query_graph.constraint_nodes
    if constraints:
        lines.append("constraints:")
        for node in sorted(constraints):
            data = graph.nodes[node]
            targets = [
                graph.nodes[neighbor]["label"]
                for neighbor in graph.neighbors(node)
            ]
            lines.append(
                f"  <{data['label']}> ({data.get('source', 'constraint')}) "
                f"satisfied at {', '.join(sorted(targets))}"
            )
    return "\n".join(lines)


def to_dict(query_graph: QueryGraph) -> dict:
    """Render the explanation graph as a JSON-serialisable dictionary."""
    graph = query_graph.graph
    return {
        "sql": to_sql(query_graph.query),
        "nodes": [
            {
                "id": node,
                "kind": data.get("kind"),
                "label": data.get("label"),
                "color": data.get("color"),
                "shape": data.get("shape"),
            }
            for node, data in graph.nodes(data=True)
        ],
        "edges": [
            {
                "source": left,
                "target": right,
                "kind": data.get("kind"),
                "label": data.get("label"),
            }
            for left, right, data in graph.edges(data=True)
        ],
    }


def to_json(query_graph: QueryGraph, indent: int = 2) -> str:
    """Render the explanation graph as a JSON string."""
    return json.dumps(to_dict(query_graph), indent=indent)
