"""Query explanation: graphs and renderers for discovered mappings."""

from repro.explain.graph import (
    NODE_ATTRIBUTE,
    NODE_CONSTRAINT,
    NODE_RELATION,
    QueryGraph,
)
from repro.explain.render import to_ascii, to_dict, to_dot, to_json

__all__ = [
    "NODE_ATTRIBUTE",
    "NODE_CONSTRAINT",
    "NODE_RELATION",
    "QueryGraph",
    "to_ascii",
    "to_dict",
    "to_dot",
    "to_json",
]
