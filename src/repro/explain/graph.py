"""Query graphs: the paper's visual explanation of a schema mapping query.

"Orange squares represent relations, green ellipses are the attributes to
project, and edges represent join conditions.  ...  the user could pick one
or more constraints, and Prism draws these constraints (as blue boxes) in
the previous graph to show the locations in the database where these
constraints are satisfied." (§2.3, Figure 4c)

:class:`QueryGraph` builds that structure as a networkx graph with typed
nodes (``relation``, ``attribute``, ``constraint``) so it can be rendered
as DOT, ASCII or a plain dictionary by :mod:`repro.explain.render`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import networkx as nx

from repro.constraints.spec import MappingSpec
from repro.query.pj_query import ProjectJoinQuery

__all__ = ["QueryGraph", "NODE_RELATION", "NODE_ATTRIBUTE", "NODE_CONSTRAINT"]

NODE_RELATION = "relation"
NODE_ATTRIBUTE = "attribute"
NODE_CONSTRAINT = "constraint"

EDGE_JOIN = "join"
EDGE_PROJECTION = "projection"
EDGE_SATISFIES = "satisfies"


class QueryGraph:
    """A typed graph describing one schema mapping query."""

    def __init__(self, graph: nx.Graph, query: ProjectJoinQuery):
        self.graph = graph
        self.query = query

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_query(
        cls,
        query: ProjectJoinQuery,
        spec: Optional[MappingSpec] = None,
        constraint_positions: Optional[Sequence[int]] = None,
    ) -> "QueryGraph":
        """Build the explanation graph for ``query``.

        Args:
            query: the schema mapping query to explain.
            spec: when given, the user's constraints are attached to the
                attributes where they are satisfied.
            constraint_positions: restrict the drawn constraints to these
                target positions (the demo lets the user pick which
                constraints to overlay); ``None`` draws them all.
        """
        graph = nx.Graph()
        for table in sorted(query.tables):
            graph.add_node(
                f"rel:{table}",
                kind=NODE_RELATION,
                label=table,
                shape="box",
                color="orange",
            )
        for position, ref in enumerate(query.projections):
            attribute_id = f"attr:{position}:{ref.table}.{ref.column}"
            graph.add_node(
                attribute_id,
                kind=NODE_ATTRIBUTE,
                label=f"{ref.column}",
                table=ref.table,
                position=position,
                shape="ellipse",
                color="green",
            )
            graph.add_edge(attribute_id, f"rel:{ref.table}", kind=EDGE_PROJECTION)
        for edge in query.joins:
            graph.add_edge(
                f"rel:{edge.child_table}",
                f"rel:{edge.parent_table}",
                kind=EDGE_JOIN,
                label=(
                    f"{edge.child_table}.{edge.child_column} = "
                    f"{edge.parent_table}.{edge.parent_column}"
                ),
            )
        instance = cls(graph, query)
        if spec is not None:
            instance._attach_constraints(spec, constraint_positions)
        return instance

    def _attach_constraints(
        self, spec: MappingSpec, positions: Optional[Sequence[int]]
    ) -> None:
        wanted = set(range(spec.num_columns)) if positions is None else set(positions)
        counter = 0
        for sample_index, sample in enumerate(spec.samples):
            for position in sample.constrained_positions():
                if position not in wanted or position >= self.query.width:
                    continue
                constraint = sample.cell(position)
                ref = self.query.projections[position]
                node_id = f"constraint:sample{sample_index}:{position}:{counter}"
                counter += 1
                self.graph.add_node(
                    node_id,
                    kind=NODE_CONSTRAINT,
                    label=constraint.describe(),
                    source=f"sample {sample_index + 1}",
                    position=position,
                    shape="box",
                    color="blue",
                )
                self.graph.add_edge(
                    node_id,
                    f"attr:{position}:{ref.table}.{ref.column}",
                    kind=EDGE_SATISFIES,
                )
        for position, constraint in spec.metadata.items():
            if position not in wanted or position >= self.query.width:
                continue
            ref = self.query.projections[position]
            node_id = f"constraint:metadata:{position}"
            self.graph.add_node(
                node_id,
                kind=NODE_CONSTRAINT,
                label=constraint.describe(),
                source="metadata",
                position=position,
                shape="box",
                color="blue",
            )
            self.graph.add_edge(
                node_id,
                f"attr:{position}:{ref.table}.{ref.column}",
                kind=EDGE_SATISFIES,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def nodes_of_kind(self, kind: str) -> list[str]:
        """Node ids of the requested kind."""
        return [
            node
            for node, data in self.graph.nodes(data=True)
            if data.get("kind") == kind
        ]

    @property
    def relation_nodes(self) -> list[str]:
        """Relation (orange square) nodes."""
        return self.nodes_of_kind(NODE_RELATION)

    @property
    def attribute_nodes(self) -> list[str]:
        """Projected attribute (green ellipse) nodes."""
        return self.nodes_of_kind(NODE_ATTRIBUTE)

    @property
    def constraint_nodes(self) -> list[str]:
        """Constraint (blue box) nodes."""
        return self.nodes_of_kind(NODE_CONSTRAINT)

    def join_edges(self) -> list[tuple[str, str]]:
        """Edges representing join conditions between relations."""
        return [
            (left, right)
            for left, right, data in self.graph.edges(data=True)
            if data.get("kind") == EDGE_JOIN
        ]
