"""Parser for the demo's textual constraint syntax.

The Description section of the demo UI takes free text in each cell
(Figure 3, §3): ``"California || Nevada"`` for a disjunction,
``"Lake Tahoe"`` for an exact keyword, and
``"DataType=='decimal' AND MinValue>='0'"`` for a metadata constraint.
This module turns those strings into constraint objects:

* :func:`parse_value_constraint` — cell text → :class:`ValueConstraint`
  (or ``None`` for a blank / ``*`` cell).  Supported forms::

      Lake Tahoe                  exact keyword
      California || Nevada        disjunction of keywords
      [400, 600]                  inclusive numeric range
      (0, 100]                    half-open numeric range
      400 .. 600                  inclusive numeric range (alt syntax)
      >= 0                        comparison predicate
      >= 0 && < 1000              conjunction of predicates

* :func:`parse_metadata_constraint` — column metadata text →
  :class:`MetadataConstraint`.  Supported form (flat AND/OR, AND binds
  tighter)::

      DataType == 'decimal' AND MinValue >= 0
      ColumnName == 'Name' OR MaxLength <= 40
"""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.constraints.metadata import (
    MetadataConjunction,
    MetadataConstraint,
    MetadataDisjunction,
    MetadataField,
    MetadataPredicate,
)
from repro.constraints.values import (
    Conjunction,
    Disjunction,
    ExactValue,
    OneOf,
    Predicate,
    Range,
    ValueConstraint,
)
from repro.errors import ConstraintParseError

__all__ = ["parse_value_constraint", "parse_metadata_constraint", "parse_literal"]

_RANGE_PATTERN = re.compile(
    r"^(?P<left>[\[\(])\s*(?P<low>[^,]*?)\s*,\s*(?P<high>[^\]\)]*?)\s*(?P<right>[\]\)])$"
)
_DOTDOT_PATTERN = re.compile(r"^(?P<low>[^.]+?)\s*\.\.\s*(?P<high>.+)$")
_PREDICATE_PATTERN = re.compile(r"^(?P<op>>=|<=|!=|==|=|>|<)\s*(?P<const>.+)$")
_METADATA_PREDICATE_PATTERN = re.compile(
    r"^(?P<field>[A-Za-z_][A-Za-z0-9_]*)\s*(?P<op>>=|<=|!=|==|=|>|<)\s*(?P<const>.+)$"
)
_NUMBER_PATTERN = re.compile(r"^[+-]?\d+(\.\d+)?$")


def parse_literal(text: str) -> Any:
    """Parse a literal: strips quotes, converts numeric strings to numbers."""
    stripped = text.strip()
    if len(stripped) >= 2 and stripped[0] == stripped[-1] and stripped[0] in "'\"":
        return stripped[1:-1]
    if _NUMBER_PATTERN.match(stripped):
        if "." in stripped:
            return float(stripped)
        return int(stripped)
    return stripped


def _parse_bound(text: str) -> Optional[Any]:
    stripped = text.strip()
    if not stripped or stripped in ("*", "-inf", "+inf", "inf"):
        return None
    return parse_literal(stripped)


def _parse_atomic_value(text: str) -> ValueConstraint:
    stripped = text.strip()
    if not stripped:
        raise ConstraintParseError("empty value constraint term")

    range_match = _RANGE_PATTERN.match(stripped)
    if range_match:
        low = _parse_bound(range_match.group("low"))
        high = _parse_bound(range_match.group("high"))
        if low is None and high is None:
            raise ConstraintParseError(f"range has no bounds: {text!r}")
        return Range(
            low=low,
            high=high,
            low_inclusive=range_match.group("left") == "[",
            high_inclusive=range_match.group("right") == "]",
        )

    dotdot_match = _DOTDOT_PATTERN.match(stripped)
    if dotdot_match:
        low = _parse_bound(dotdot_match.group("low"))
        high = _parse_bound(dotdot_match.group("high"))
        if isinstance(low, (int, float)) and isinstance(high, (int, float)):
            return Range(low=low, high=high)

    predicate_match = _PREDICATE_PATTERN.match(stripped)
    if predicate_match:
        constant = parse_literal(predicate_match.group("const"))
        return Predicate(predicate_match.group("op"), constant)

    return ExactValue(parse_literal(stripped))


def parse_value_constraint(text: Optional[str]) -> Optional[ValueConstraint]:
    """Parse one Description-section cell into a value constraint.

    Returns ``None`` for blank cells and the wildcards ``*`` / ``?``,
    meaning the user provided no information for that cell.
    """
    if text is None:
        return None
    stripped = text.strip()
    if not stripped or stripped in ("*", "?"):
        return None

    # Disjunction first (lowest precedence), then conjunction.
    or_parts = [part for part in re.split(r"\|\|", stripped) if part.strip()]
    if len(or_parts) > 1:
        parsed_parts = [_parse_or_conjunction(part) for part in or_parts]
        if all(isinstance(part, ExactValue) for part in parsed_parts):
            return OneOf([part.value for part in parsed_parts])
        return Disjunction(parsed_parts)
    return _parse_or_conjunction(stripped)


def _parse_or_conjunction(text: str) -> ValueConstraint:
    and_parts = [part for part in re.split(r"&&", text) if part.strip()]
    if not and_parts:
        raise ConstraintParseError(f"cannot parse value constraint: {text!r}")
    if len(and_parts) == 1:
        return _parse_atomic_value(and_parts[0])
    return Conjunction([_parse_atomic_value(part) for part in and_parts])


def _split_logical(text: str, keyword: str) -> list[str]:
    """Split on a logical keyword (case-insensitive, word-bounded)."""
    pattern = re.compile(rf"\s+{keyword}\s+", flags=re.IGNORECASE)
    return [part for part in pattern.split(text) if part.strip()]


def _parse_metadata_predicate(text: str) -> MetadataPredicate:
    stripped = text.strip()
    match = _METADATA_PREDICATE_PATTERN.match(stripped)
    if not match:
        raise ConstraintParseError(
            f"cannot parse metadata predicate: {text!r} "
            "(expected e.g. DataType == 'decimal')"
        )
    constant = parse_literal(match.group("const"))
    try:
        field = MetadataField.from_name(match.group("field"))
        return MetadataPredicate(field, match.group("op"), constant)
    except ConstraintParseError:
        raise
    except Exception as exc:  # ConstraintError, DataError (bad type names), ...
        raise ConstraintParseError(
            f"cannot parse metadata predicate: {text!r} ({exc})"
        ) from exc


def parse_metadata_constraint(text: Optional[str]) -> Optional[MetadataConstraint]:
    """Parse a Metadata-Constraints cell into a metadata constraint.

    Returns ``None`` for blank cells.  ``AND`` binds tighter than ``OR``;
    ``&&`` / ``||`` are accepted as synonyms.
    """
    if text is None:
        return None
    stripped = text.strip()
    if not stripped or stripped in ("*", "?"):
        return None
    normalized = stripped.replace("&&", " AND ").replace("||", " OR ")

    or_parts = _split_logical(normalized, "OR")
    or_constraints: list[MetadataConstraint] = []
    for or_part in or_parts:
        and_parts = _split_logical(or_part, "AND")
        and_constraints = [_parse_metadata_predicate(part) for part in and_parts]
        if len(and_constraints) == 1:
            or_constraints.append(and_constraints[0])
        else:
            or_constraints.append(MetadataConjunction(and_constraints))
    if not or_constraints:
        raise ConstraintParseError(f"cannot parse metadata constraint: {text!r}")
    if len(or_constraints) == 1:
        return or_constraints[0]
    return MetadataDisjunction(or_constraints)
