"""Sample constraints: rows of value constraints.

"Multiple value constraints listed in the same row together form a sample
constraint.  A schema mapping query satisfies a sample constraint if the
result set of the query contains this sample." (§2.1)

A cell may be ``None`` to indicate the user left it blank (an incomplete
sample — the medium-resolution case).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.constraints.resolution import Resolution
from repro.constraints.values import AnyValue, ExactValue, ValueConstraint
from repro.errors import ConstraintError

__all__ = ["SampleConstraint"]


class SampleConstraint:
    """One row of the user's Description section."""

    def __init__(self, cells: Sequence[Optional[ValueConstraint]]):
        if not cells:
            raise ConstraintError("a sample constraint needs at least one cell")
        prepared: list[Optional[ValueConstraint]] = []
        for cell in cells:
            if cell is None or isinstance(cell, ValueConstraint):
                prepared.append(cell)
            else:
                raise ConstraintError(
                    "sample cells must be ValueConstraint instances or None, "
                    f"got {type(cell).__name__}"
                )
        if all(cell is None or isinstance(cell, AnyValue) for cell in prepared):
            raise ConstraintError(
                "a sample constraint must constrain at least one cell"
            )
        self.cells: tuple[Optional[ValueConstraint], ...] = tuple(prepared)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Sequence[Any]) -> "SampleConstraint":
        """Build a high-resolution sample from exact values.

        ``None`` entries become unconstrained cells, matching a user who
        left that field blank.
        """
        cells = [None if value is None else ExactValue(value) for value in values]
        return cls(cells)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of target-schema columns this sample spans."""
        return len(self.cells)

    def cell(self, position: int) -> Optional[ValueConstraint]:
        """The constraint at ``position`` (``None`` when unconstrained)."""
        return self.cells[position]

    def constrained_positions(self) -> list[int]:
        """Positions whose cells carry an actual constraint."""
        return [
            position
            for position, cell in enumerate(self.cells)
            if cell is not None and not isinstance(cell, AnyValue)
        ]

    @property
    def resolution(self) -> Resolution:
        """The loosest resolution across constrained cells."""
        resolutions = [
            cell.resolution
            for cell in self.cells
            if cell is not None and not isinstance(cell, AnyValue)
        ]
        if not resolutions:
            return Resolution.LOW
        if len(resolutions) < self.width:
            # An incomplete sample is at best medium resolution.
            return Resolution(min(min(resolutions), Resolution.MEDIUM))
        return Resolution(min(resolutions))

    @property
    def is_complete(self) -> bool:
        """Whether every cell carries a constraint."""
        return len(self.constrained_positions()) == self.width

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def satisfied_by_row(self, row: Sequence[Any]) -> bool:
        """Whether a single result row satisfies every constrained cell."""
        if len(row) != self.width:
            raise ConstraintError(
                f"row width {len(row)} does not match sample width {self.width}"
            )
        for cell, value in zip(self.cells, row):
            if cell is None:
                continue
            if not cell.matches(value):
                return False
        return True

    def satisfied_by_result(self, rows: Iterable[Sequence[Any]]) -> bool:
        """Whether *some* result row satisfies the sample (paper semantics)."""
        return any(self.satisfied_by_row(row) for row in rows)

    def restrict(self, positions: Sequence[int]) -> "SampleConstraint":
        """A partial sample over a subset of positions (used by filters)."""
        cells = [self.cells[position] for position in positions]
        if all(cell is None or isinstance(cell, AnyValue) for cell in cells):
            raise ConstraintError(
                "restriction would produce an unconstrained sample"
            )
        return SampleConstraint(cells)

    def describe(self) -> str:
        """Render the sample as the row the user typed."""
        return " | ".join(
            "" if cell is None else cell.describe() for cell in self.cells
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SampleConstraint):
            return NotImplemented
        return self.cells == other.cells

    def __hash__(self) -> int:
        return hash(self.cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SampleConstraint({self.describe()!r})"
