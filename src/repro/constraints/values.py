"""Value constraints: the row-level half of the multiresolution language.

A *value constraint* restricts a single cell of the target schema
(Figure 1: ``ck := pv | pv logicalop pv``).  The concrete forms supported
mirror the paper's examples:

* :class:`ExactValue` — the classic keyword of sample-driven mapping
  ("Lake Tahoe").  High resolution.
* :class:`OneOf` — a disjunction of possible values
  ("California || Nevada").  Medium resolution.
* :class:`Range` — a numeric value range ("[400, 600]").  Medium resolution.
* :class:`Predicate` — a single comparison against a constant (">= 0").
  Medium resolution.
* :class:`Conjunction` / :class:`Disjunction` — logical combinations of the
  above, per the grammar's ``logicalop``.
* :class:`AnyValue` — an explicitly unconstrained cell.

String matching uses keyword semantics: a cell matches an exact value when
it equals it case-insensitively or contains it as a whole word, matching
how sample-driven systems probe a DBMS inverted index.
"""

from __future__ import annotations

import operator
import re
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Sequence

from repro.constraints.resolution import Resolution
from repro.errors import ConstraintError

__all__ = [
    "ValueConstraint",
    "ExactValue",
    "OneOf",
    "Range",
    "Predicate",
    "Conjunction",
    "Disjunction",
    "AnyValue",
    "COMPARISON_OPERATORS",
]

COMPARISON_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "=": operator.eq,
    "!=": operator.ne,
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}

_WORD_PATTERN_CACHE: dict[str, re.Pattern] = {}


def _typed(value: Any) -> tuple:
    """A value tagged with its type for constraint identity.

    Python hashes/compares ``True == 1`` and ``1 == 1.0``, but matching
    semantics differ by type (booleans match by identity; numeric text
    renders differently), so constraint keys must not let such values
    collide — they feed equality, hashing and executor memo keys.
    """
    return (type(value).__name__, value)


def _normalize_text(value: Any) -> str:
    return str(value).strip().casefold()


def _values_equal(cell: Any, target: Any) -> bool:
    """Equality with keyword semantics for strings and numeric tolerance."""
    if cell is None or target is None:
        return False
    if isinstance(cell, str) or isinstance(target, str):
        cell_text = _normalize_text(cell)
        target_text = _normalize_text(target)
        if cell_text == target_text:
            return True
        if target_text not in _WORD_PATTERN_CACHE:
            _WORD_PATTERN_CACHE[target_text] = re.compile(
                r"(?<![A-Za-z0-9])" + re.escape(target_text) + r"(?![A-Za-z0-9])"
            )
        return bool(_WORD_PATTERN_CACHE[target_text].search(cell_text))
    if isinstance(cell, bool) or isinstance(target, bool):
        return cell is target
    if isinstance(cell, (int, float)) and isinstance(target, (int, float)):
        return float(cell) == float(target)
    return cell == target


def _compare(cell: Any, op: str, constant: Any) -> bool:
    """Apply a comparison operator, returning False on type mismatch."""
    if cell is None:
        return False
    func = COMPARISON_OPERATORS.get(op)
    if func is None:
        raise ConstraintError(f"unknown comparison operator: {op!r}")
    if op in ("==", "="):
        return _values_equal(cell, constant)
    if op == "!=":
        return not _values_equal(cell, constant)
    cell_is_text = isinstance(cell, str)
    constant_is_text = isinstance(constant, str)
    try:
        if cell_is_text and constant_is_text:
            return func(_normalize_text(cell), _normalize_text(constant))
        if cell_is_text != constant_is_text:
            # Ordering a string against a number is a type mismatch, not an
            # error: the cell simply does not satisfy the predicate.
            return False
        return func(cell, constant)
    except TypeError:
        return False


class ValueConstraint(ABC):
    """Base class for every row-level (cell) constraint."""

    @abstractmethod
    def matches(self, value: Any) -> bool:
        """Whether a cell value satisfies this constraint."""

    @property
    @abstractmethod
    def resolution(self) -> Resolution:
        """The constraint's resolution level."""

    def seed_values(self) -> list[Any]:
        """Literal values usable as inverted-index probes (may be empty)."""
        return []

    @abstractmethod
    def describe(self) -> str:
        """Render the constraint in the demo's textual syntax."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.describe()!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueConstraint):
            return NotImplemented
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return (self.describe(),)


class ExactValue(ValueConstraint):
    """A high-resolution constraint: the cell must contain this value."""

    def __init__(self, value: Any):
        if value is None:
            raise ConstraintError("ExactValue cannot be NULL; use AnyValue")
        self.value = value

    def matches(self, value: Any) -> bool:
        return _values_equal(value, self.value)

    @property
    def resolution(self) -> Resolution:
        return Resolution.HIGH

    def seed_values(self) -> list[Any]:
        return [self.value]

    def describe(self) -> str:
        return str(self.value)

    def _key(self) -> tuple:
        return (_typed(self.value),)


class OneOf(ValueConstraint):
    """A disjunction of possible exact values ("California || Nevada")."""

    def __init__(self, values: Sequence[Any]):
        values = [value for value in values if value is not None]
        if not values:
            raise ConstraintError("OneOf requires at least one non-NULL value")
        self.values = tuple(values)

    def matches(self, value: Any) -> bool:
        return any(_values_equal(value, candidate) for candidate in self.values)

    @property
    def resolution(self) -> Resolution:
        return Resolution.MEDIUM if len(self.values) > 1 else Resolution.HIGH

    def seed_values(self) -> list[Any]:
        return list(self.values)

    def describe(self) -> str:
        return " || ".join(str(value) for value in self.values)

    def _key(self) -> tuple:
        return tuple(_typed(value) for value in self.values)


class Range(ValueConstraint):
    """A numeric value range, optionally open on either side."""

    def __init__(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ):
        if low is None and high is None:
            raise ConstraintError("Range requires at least one bound")
        if (
            low is not None
            and high is not None
            and not isinstance(low, str)
            and not isinstance(high, str)
            and low > high
        ):
            raise ConstraintError(f"Range lower bound {low!r} exceeds upper bound {high!r}")
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    def matches(self, value: Any) -> bool:
        if value is None:
            return False
        if self.low is not None:
            op = ">=" if self.low_inclusive else ">"
            if not _compare(value, op, self.low):
                return False
        if self.high is not None:
            op = "<=" if self.high_inclusive else "<"
            if not _compare(value, op, self.high):
                return False
        return True

    @property
    def resolution(self) -> Resolution:
        return Resolution.MEDIUM

    def describe(self) -> str:
        low = "" if self.low is None else str(self.low)
        high = "" if self.high is None else str(self.high)
        left = "[" if self.low_inclusive else "("
        right = "]" if self.high_inclusive else ")"
        return f"{left}{low}, {high}{right}"

    def _key(self) -> tuple:
        return (
            _typed(self.low),
            _typed(self.high),
            self.low_inclusive,
            self.high_inclusive,
        )


class Predicate(ValueConstraint):
    """A single comparison against a constant, e.g. ``>= 0``."""

    def __init__(self, op: str, constant: Any):
        if op not in COMPARISON_OPERATORS:
            raise ConstraintError(f"unknown comparison operator: {op!r}")
        self.op = "==" if op == "=" else op
        self.constant = constant

    def matches(self, value: Any) -> bool:
        return _compare(value, self.op, self.constant)

    @property
    def resolution(self) -> Resolution:
        return Resolution.HIGH if self.op == "==" else Resolution.MEDIUM

    def seed_values(self) -> list[Any]:
        return [self.constant] if self.op == "==" else []

    def describe(self) -> str:
        return f"{self.op} {self.constant}"

    def _key(self) -> tuple:
        return (self.op, _typed(self.constant))


class Conjunction(ValueConstraint):
    """Logical AND of value constraints."""

    def __init__(self, parts: Sequence[ValueConstraint]):
        parts = list(parts)
        if len(parts) < 2:
            raise ConstraintError("Conjunction requires at least two parts")
        self.parts = tuple(parts)

    def matches(self, value: Any) -> bool:
        return all(part.matches(value) for part in self.parts)

    @property
    def resolution(self) -> Resolution:
        return Resolution(max(part.resolution for part in self.parts))

    def seed_values(self) -> list[Any]:
        seeds: list[Any] = []
        for part in self.parts:
            seeds.extend(part.seed_values())
        return seeds

    def describe(self) -> str:
        return " && ".join(part.describe() for part in self.parts)

    def _key(self) -> tuple:
        return (self.parts,)


class Disjunction(ValueConstraint):
    """Logical OR of value constraints."""

    def __init__(self, parts: Sequence[ValueConstraint]):
        parts = list(parts)
        if len(parts) < 2:
            raise ConstraintError("Disjunction requires at least two parts")
        self.parts = tuple(parts)

    def matches(self, value: Any) -> bool:
        return any(part.matches(value) for part in self.parts)

    @property
    def resolution(self) -> Resolution:
        return Resolution(min(part.resolution for part in self.parts))

    def seed_values(self) -> list[Any]:
        seeds: list[Any] = []
        for part in self.parts:
            seeds.extend(part.seed_values())
        return seeds

    def describe(self) -> str:
        return " || ".join(part.describe() for part in self.parts)

    def _key(self) -> tuple:
        return (self.parts,)


class AnyValue(ValueConstraint):
    """An explicitly unconstrained (but non-NULL) cell."""

    def matches(self, value: Any) -> bool:
        return value is not None

    @property
    def resolution(self) -> Resolution:
        return Resolution.LOW

    def describe(self) -> str:
        return "*"

    def _key(self) -> tuple:
        return ()
