"""Resolution levels of multiresolution constraints.

The paper distinguishes three resolutions (§1): high (complete samples with
exact values), medium (incomplete samples, disjunctions, value ranges) and
low (column-level metadata such as data type or value range).  The
:class:`Resolution` enum captures that ordering; higher values mean more
precise user knowledge.
"""

from __future__ import annotations

import enum

__all__ = ["Resolution"]


class Resolution(enum.IntEnum):
    """Constraint resolution, ordered from loosest to most precise."""

    LOW = 1
    MEDIUM = 2
    HIGH = 3

    def describe(self) -> str:
        """Human-readable description used in reports."""
        descriptions = {
            Resolution.HIGH: "exact data values",
            Resolution.MEDIUM: "approximate values (disjunctions, ranges)",
            Resolution.LOW: "column-level metadata",
        }
        return descriptions[self]
