"""The multiresolution schema mapping language (paper Figure 1).

Value constraints restrict individual result cells, sample constraints are
rows of value constraints, and metadata constraints describe target-schema
columns.  A :class:`MappingSpec` bundles everything the user provides for
one discovery run, and the parser converts the demo UI's textual syntax
into constraint objects.
"""

from repro.constraints.metadata import (
    MetadataConjunction,
    MetadataConstraint,
    MetadataDisjunction,
    MetadataField,
    MetadataPredicate,
    UserDefinedConstraint,
)
from repro.constraints.parser import (
    parse_literal,
    parse_metadata_constraint,
    parse_value_constraint,
)
from repro.constraints.resolution import Resolution
from repro.constraints.sample import SampleConstraint
from repro.constraints.spec import MappingSpec
from repro.constraints.values import (
    AnyValue,
    Conjunction,
    Disjunction,
    ExactValue,
    OneOf,
    Predicate,
    Range,
    ValueConstraint,
)

__all__ = [
    "AnyValue",
    "Conjunction",
    "Disjunction",
    "ExactValue",
    "MappingSpec",
    "MetadataConjunction",
    "MetadataConstraint",
    "MetadataDisjunction",
    "MetadataField",
    "MetadataPredicate",
    "OneOf",
    "Predicate",
    "Range",
    "Resolution",
    "SampleConstraint",
    "UserDefinedConstraint",
    "ValueConstraint",
    "parse_literal",
    "parse_metadata_constraint",
    "parse_value_constraint",
]
