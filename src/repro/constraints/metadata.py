"""Metadata constraints: the column-level half of the language.

A *metadata constraint* encodes factual knowledge about a target-schema
column rather than about individual cells (Figure 1: ``cm := pm | pm
logicalop pm``; ``pm := type binop const``).  Supported metadata fields
follow §2.1: data type, column name, min/max value and maximum text
length.  Constraints are checked against the :class:`ColumnStats` recorded
in the metadata catalog during preprocessing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import enum

from repro.constraints.resolution import Resolution
from repro.constraints.values import COMPARISON_OPERATORS
from repro.dataset.catalog import ColumnStats
from repro.dataset.types import DataType
from repro.errors import ConstraintError

__all__ = [
    "MetadataField",
    "MetadataConstraint",
    "MetadataPredicate",
    "MetadataConjunction",
    "MetadataDisjunction",
    "UserDefinedConstraint",
]


class MetadataField(enum.Enum):
    """Column metadata fields a constraint may reference."""

    DATA_TYPE = "DataType"
    COLUMN_NAME = "ColumnName"
    MIN_VALUE = "MinValue"
    MAX_VALUE = "MaxValue"
    MAX_LENGTH = "MaxLength"

    @classmethod
    def from_name(cls, name: str) -> "MetadataField":
        """Resolve a field from its (case-insensitive) textual name."""
        normalized = name.strip().replace("_", "").casefold()
        aliases = {
            "datatype": cls.DATA_TYPE,
            "type": cls.DATA_TYPE,
            "columnname": cls.COLUMN_NAME,
            "name": cls.COLUMN_NAME,
            "minvalue": cls.MIN_VALUE,
            "min": cls.MIN_VALUE,
            "maxvalue": cls.MAX_VALUE,
            "max": cls.MAX_VALUE,
            "maxlength": cls.MAX_LENGTH,
            "maxtextlength": cls.MAX_LENGTH,
            "length": cls.MAX_LENGTH,
        }
        if normalized not in aliases:
            raise ConstraintError(f"unknown metadata field: {name!r}")
        return aliases[normalized]


class MetadataConstraint(ABC):
    """Base class for column-level constraints."""

    @abstractmethod
    def matches(self, stats: ColumnStats) -> bool:
        """Whether a column (via its statistics) satisfies this constraint."""

    @property
    def resolution(self) -> Resolution:
        """Metadata constraints are low-resolution by definition."""
        return Resolution.LOW

    @abstractmethod
    def describe(self) -> str:
        """Render the constraint in the demo's textual syntax."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.describe()!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetadataConstraint):
            return NotImplemented
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> tuple:
        return (self.describe(),)


def _numeric(value: Any) -> Any:
    """Best-effort numeric coercion used for min/max comparisons."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value
    try:
        return float(str(value).strip())
    except (TypeError, ValueError):
        return value


class MetadataPredicate(MetadataConstraint):
    """A single comparison between a metadata field and a constant."""

    def __init__(self, field: MetadataField, op: str, constant: Any):
        if not isinstance(field, MetadataField):
            field = MetadataField.from_name(str(field))
        if op not in COMPARISON_OPERATORS:
            raise ConstraintError(f"unknown comparison operator: {op!r}")
        self.field = field
        self.op = "==" if op == "=" else op
        self.constant = constant
        if field is MetadataField.DATA_TYPE:
            if self.op not in ("==", "!="):
                raise ConstraintError("DataType only supports == and !=")
            if not isinstance(constant, DataType):
                self.constant = DataType.from_name(str(constant))
        if field is MetadataField.COLUMN_NAME and self.op not in ("==", "!="):
            raise ConstraintError("ColumnName only supports == and !=")

    def matches(self, stats: ColumnStats) -> bool:
        compare = COMPARISON_OPERATORS[self.op]
        if self.field is MetadataField.DATA_TYPE:
            equal = stats.data_type is self.constant or (
                # Integer columns satisfy a 'decimal' requirement: every int
                # is representable as a decimal, which matches user intent
                # ("the values must be at least numeric").
                self.constant is DataType.DECIMAL
                and stats.data_type is DataType.INT
            )
            return equal if self.op == "==" else not equal
        if self.field is MetadataField.COLUMN_NAME:
            equal = stats.ref.column.casefold() == str(self.constant).casefold()
            return equal if self.op == "==" else not equal
        if self.field is MetadataField.MIN_VALUE:
            observed = stats.min_value
        elif self.field is MetadataField.MAX_VALUE:
            observed = stats.max_value
        else:
            observed = stats.max_text_length
        if observed is None:
            return False
        left = _numeric(observed)
        right = _numeric(self.constant)
        try:
            return compare(left, right)
        except TypeError:
            return compare(str(observed), str(self.constant))

    def describe(self) -> str:
        if self.field is MetadataField.DATA_TYPE:
            constant = f"'{self.constant.value}'"
        elif isinstance(self.constant, str):
            constant = f"'{self.constant}'"
        else:
            constant = str(self.constant)
        return f"{self.field.value} {self.op} {constant}"

    def _key(self) -> tuple:
        return (self.field, self.op, str(self.constant))


class UserDefinedConstraint(MetadataConstraint):
    """A user-defined function over column statistics.

    The paper lists user-defined functions as a planned extension of the
    metadata constraint language (§2.1: "In the future, we plan to support
    more metadata constraints, and even user-defined functions").  This
    class provides that extension point: the user supplies any predicate
    over :class:`ColumnStats` (e.g. "mostly unique", "low null rate",
    "looks like a year") and it composes with the built-in predicates via
    :class:`MetadataConjunction` / :class:`MetadataDisjunction`.
    """

    def __init__(self, predicate, name: str = "udf"):
        if not callable(predicate):
            raise ConstraintError("UserDefinedConstraint requires a callable")
        if not name or not str(name).strip():
            raise ConstraintError("UserDefinedConstraint requires a name")
        self.predicate = predicate
        self.name = str(name)

    def matches(self, stats: ColumnStats) -> bool:
        try:
            return bool(self.predicate(stats))
        except Exception as exc:
            raise ConstraintError(
                f"user-defined constraint {self.name!r} raised {exc!r}"
            ) from exc

    def describe(self) -> str:
        return f"UDF({self.name})"

    def _key(self) -> tuple:
        return (self.name, id(self.predicate))


class MetadataConjunction(MetadataConstraint):
    """Logical AND of metadata constraints."""

    def __init__(self, parts: Sequence[MetadataConstraint]):
        parts = list(parts)
        if len(parts) < 2:
            raise ConstraintError("MetadataConjunction requires at least two parts")
        self.parts = tuple(parts)

    def matches(self, stats: ColumnStats) -> bool:
        return all(part.matches(stats) for part in self.parts)

    def describe(self) -> str:
        return " AND ".join(part.describe() for part in self.parts)

    def _key(self) -> tuple:
        return (self.parts,)


class MetadataDisjunction(MetadataConstraint):
    """Logical OR of metadata constraints."""

    def __init__(self, parts: Sequence[MetadataConstraint]):
        parts = list(parts)
        if len(parts) < 2:
            raise ConstraintError("MetadataDisjunction requires at least two parts")
        self.parts = tuple(parts)

    def matches(self, stats: ColumnStats) -> bool:
        return any(part.matches(stats) for part in self.parts)

    def describe(self) -> str:
        return " OR ".join(part.describe() for part in self.parts)

    def _key(self) -> tuple:
        return (self.parts,)
