"""Mapping specifications: everything the user provides for one search.

A :class:`MappingSpec` bundles the Configuration and Description sections
of the demo UI: the number of target-schema columns, the result constraints
(sample rows) and the per-column metadata constraints.  The discovery
engine consumes a spec and produces the satisfying PJ queries.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.constraints.metadata import MetadataConstraint
from repro.constraints.resolution import Resolution
from repro.constraints.sample import SampleConstraint
from repro.constraints.values import ValueConstraint
from repro.errors import SpecError

__all__ = ["MappingSpec"]


class MappingSpec:
    """A complete multiresolution schema mapping request.

    Example:
        >>> from repro import MappingSpec, parse_value_constraint
        >>> spec = MappingSpec(num_columns=2)
        >>> _ = spec.add_sample_cells([
        ...     parse_value_constraint("California || Nevada"),
        ...     None,                         # this cell is unknown
        ... ])
        >>> spec.constrained_positions()
        [0]
        >>> spec.validate()                   # raises SpecError if unusable
        >>> spec
        MappingSpec(columns=2, samples=1, metadata=0)
    """

    def __init__(
        self,
        num_columns: int,
        samples: Optional[Sequence[SampleConstraint]] = None,
        metadata: Optional[Mapping[int, MetadataConstraint]] = None,
    ):
        if num_columns < 1:
            raise SpecError("the target schema needs at least one column")
        self.num_columns = num_columns
        self._samples: list[SampleConstraint] = []
        self._metadata: dict[int, MetadataConstraint] = {}
        for sample in samples or ():
            self.add_sample(sample)
        for position, constraint in (metadata or {}).items():
            self.set_metadata(position, constraint)

    # ------------------------------------------------------------------
    # Mutation (builder-style)
    # ------------------------------------------------------------------
    def add_sample(self, sample: SampleConstraint) -> "MappingSpec":
        """Add a result (sample) constraint row."""
        if not isinstance(sample, SampleConstraint):
            raise SpecError("add_sample expects a SampleConstraint")
        if sample.width != self.num_columns:
            raise SpecError(
                f"sample has {sample.width} cells but the target schema has "
                f"{self.num_columns} columns"
            )
        self._samples.append(sample)
        return self

    def add_sample_cells(
        self, cells: Sequence[Optional[ValueConstraint]]
    ) -> "MappingSpec":
        """Convenience wrapper building a :class:`SampleConstraint` first."""
        return self.add_sample(SampleConstraint(cells))

    def set_metadata(
        self, position: int, constraint: MetadataConstraint
    ) -> "MappingSpec":
        """Attach a metadata constraint to target column ``position``."""
        if position < 0 or position >= self.num_columns:
            raise SpecError(
                f"metadata position {position} out of range for "
                f"{self.num_columns} columns"
            )
        if not isinstance(constraint, MetadataConstraint):
            raise SpecError("set_metadata expects a MetadataConstraint")
        self._metadata[position] = constraint
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def samples(self) -> list[SampleConstraint]:
        """All sample constraints (treat as read-only)."""
        return list(self._samples)

    @property
    def metadata(self) -> dict[int, MetadataConstraint]:
        """Per-column metadata constraints (treat as read-only)."""
        return dict(self._metadata)

    def metadata_for(self, position: int) -> Optional[MetadataConstraint]:
        """The metadata constraint of column ``position`` (or ``None``)."""
        return self._metadata.get(position)

    def value_constraints_for(self, position: int) -> list[ValueConstraint]:
        """All value constraints any sample places on column ``position``."""
        constraints = []
        for sample in self._samples:
            cell = sample.cell(position)
            if cell is not None:
                constraints.append(cell)
        return constraints

    def has_constraints(self) -> bool:
        """Whether the spec constrains anything at all."""
        return bool(self._samples) or bool(self._metadata)

    @property
    def resolution(self) -> Resolution:
        """Loosest resolution present anywhere in the spec."""
        resolutions = [sample.resolution for sample in self._samples]
        if self._metadata:
            resolutions.append(Resolution.LOW)
        if not resolutions:
            return Resolution.LOW
        return Resolution(min(resolutions))

    def validate(self) -> None:
        """Raise :class:`SpecError` when the spec cannot drive a search."""
        if not self.has_constraints():
            raise SpecError(
                "the spec provides no constraints; the search space would be "
                "the entire database"
            )
        constrained = set(self._metadata)
        for sample in self._samples:
            constrained.update(sample.constrained_positions())
        if not constrained:
            raise SpecError("no target column carries any constraint")

    def constrained_positions(self) -> list[int]:
        """Target columns constrained by at least one sample cell or metadata."""
        constrained = set(self._metadata)
        for sample in self._samples:
            constrained.update(sample.constrained_positions())
        return sorted(constrained)

    def describe(self) -> str:
        """Multi-line human-readable description used by the CLI."""
        lines = [f"target columns: {self.num_columns}"]
        for index, sample in enumerate(self._samples):
            lines.append(f"sample {index + 1}: {sample.describe()}")
        for position in sorted(self._metadata):
            lines.append(
                f"metadata[col {position}]: {self._metadata[position].describe()}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"MappingSpec(columns={self.num_columns}, "
            f"samples={len(self._samples)}, metadata={len(self._metadata)})"
        )
