"""Unit tests for the schema graph and join-tree enumeration."""

from __future__ import annotations

import pytest

from repro.dataset.schema_graph import SchemaGraph
from repro.errors import SchemaError


@pytest.fixture()
def graph(company_db):
    return SchemaGraph(company_db)


class TestBasicQueries:
    def test_tables_are_nodes(self, graph, company_db):
        assert set(graph.tables) == set(company_db.table_names)

    def test_neighbors(self, graph):
        assert graph.neighbors("Employee") == {"Department", "Assignment"}
        assert graph.neighbors("Project") == {"Assignment"}

    def test_neighbors_unknown_table(self, graph):
        with pytest.raises(SchemaError):
            graph.neighbors("Ghost")

    def test_join_edges_between(self, graph):
        edges = graph.join_edges("Assignment", "Employee")
        assert len(edges) == 1
        assert edges[0].child_column == "EmployeeId"
        assert graph.join_edges("Department", "Project") == []
        assert graph.join_edges("Department", "Ghost") == []

    def test_incident_foreign_keys(self, graph):
        assert len(graph.incident_foreign_keys("Assignment")) == 2
        assert len(graph.incident_foreign_keys("Department")) == 1

    def test_is_connected(self, graph):
        assert graph.is_connected(["Department", "Project"])
        assert graph.is_connected([])

    def test_distance(self, graph):
        assert graph.distance("Department", "Department") == 0
        assert graph.distance("Department", "Employee") == 1
        assert graph.distance("Department", "Project") == 3


class TestJoinTrees:
    def test_single_table_yields_empty_tree(self, graph):
        trees = graph.join_trees(["Employee"])
        assert () in trees

    def test_two_adjacent_tables(self, graph):
        trees = graph.join_trees(["Employee", "Department"], max_tables=2)
        assert len(trees) == 1
        assert len(trees[0]) == 1
        assert set(trees[0][0].tables()) == {"Employee", "Department"}

    def test_distant_tables_route_through_intermediates(self, graph):
        trees = graph.join_trees(["Department", "Project"])
        assert trees, "expected at least one connecting tree"
        smallest = trees[0]
        tables = SchemaGraph.tree_tables(smallest)
        assert {"Department", "Employee", "Assignment", "Project"} == tables
        assert len(smallest) == 3

    def test_max_tables_bound_excludes_long_paths(self, graph):
        trees = graph.join_trees(["Department", "Project"], max_tables=3)
        assert trees == []

    def test_max_trees_limits_output(self, graph):
        unlimited = graph.join_trees(["Employee", "Assignment"], max_tables=4)
        limited = graph.join_trees(["Employee", "Assignment"], max_tables=4, max_trees=1)
        assert len(limited) == 1
        assert len(unlimited) >= len(limited)

    def test_trees_are_sorted_smallest_first(self, graph):
        trees = graph.join_trees(["Employee", "Assignment"], max_tables=4)
        sizes = [len(tree) for tree in trees]
        assert sizes == sorted(sizes)

    def test_unknown_required_table_raises(self, graph):
        with pytest.raises(SchemaError):
            graph.join_trees(["Ghost"])

    def test_empty_requirement_returns_empty_tree(self, graph):
        assert graph.join_trees([]) == [()]

    def test_every_tree_is_acyclic_and_spans_required(self, graph):
        required = {"Department", "Assignment"}
        for tree in graph.join_trees(required, max_tables=4):
            tables = SchemaGraph.tree_tables(tree)
            assert required <= tables
            # A tree over n tables has n - 1 edges.
            assert len(tree) == len(tables) - 1

    def test_disconnected_tables_give_no_tree(self, company_db):
        from repro.dataset.schema import Column
        from repro.dataset.types import DataType

        company_db.create_table("Island", [Column("x", DataType.INT)])
        graph = SchemaGraph(company_db)
        assert graph.join_trees(["Island", "Employee"]) == []
        assert not graph.is_connected(["Island", "Employee"])
        assert graph.distance("Island", "Employee") is None
