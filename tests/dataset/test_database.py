"""Unit tests for the Database container."""

from __future__ import annotations

import pytest

from repro.dataset.database import Database
from repro.dataset.schema import Column, ColumnRef, ForeignKey
from repro.dataset.types import DataType
from repro.errors import SchemaError


class TestTables:
    def test_create_and_lookup(self, company_db):
        assert company_db.has_table("Employee")
        assert company_db.table("Employee").num_rows == 6
        assert "Department" in company_db

    def test_table_names_in_registration_order(self, company_db):
        assert company_db.table_names == [
            "Department", "Employee", "Project", "Assignment",
        ]

    def test_duplicate_table_rejected(self, company_db):
        with pytest.raises(SchemaError):
            company_db.create_table("Employee", [Column("x", DataType.INT)])

    def test_unknown_table_raises(self, company_db):
        with pytest.raises(SchemaError):
            company_db.table("Nothing")

    def test_drop_table_removes_incident_foreign_keys(self, company_db):
        before = len(company_db.foreign_keys)
        company_db.drop_table("Assignment")
        assert not company_db.has_table("Assignment")
        assert len(company_db.foreign_keys) == before - 2

    def test_drop_unknown_table_raises(self, company_db):
        with pytest.raises(SchemaError):
            company_db.drop_table("Ghost")

    def test_iteration_yields_tables(self, company_db):
        assert {table.name for table in company_db} == set(company_db.table_names)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Database("  ")


class TestForeignKeys:
    def test_link_parses_dotted_names(self, company_db):
        fk = ForeignKey("Employee", "Department", "Department", "Name")
        assert fk in company_db.foreign_keys

    def test_link_rejects_malformed_strings(self, company_db):
        with pytest.raises(SchemaError):
            company_db.link("Employee", "Department.Name")

    def test_foreign_key_to_unknown_column_rejected(self, company_db):
        with pytest.raises(SchemaError):
            company_db.add_foreign_key(
                ForeignKey("Employee", "Nope", "Department", "Name")
            )

    def test_foreign_key_to_unknown_table_rejected(self, company_db):
        with pytest.raises(SchemaError):
            company_db.add_foreign_key(
                ForeignKey("Ghost", "x", "Department", "Name")
            )

    def test_duplicate_foreign_key_is_idempotent(self, company_db):
        before = len(company_db.foreign_keys)
        company_db.link("Employee.Department", "Department.Name")
        assert len(company_db.foreign_keys) == before

    def test_foreign_keys_between(self, company_db):
        edges = company_db.foreign_keys_between("Assignment", "Project")
        assert len(edges) == 1
        assert edges[0].parent_table == "Project"
        assert company_db.foreign_keys_between("Project", "Assignment") == edges

    def test_foreign_keys_between_unrelated_tables(self, company_db):
        assert company_db.foreign_keys_between("Department", "Project") == []


class TestColumnHelpers:
    def test_all_column_refs(self, company_db):
        refs = company_db.all_column_refs()
        assert ColumnRef("Employee", "Salary") in refs
        assert len(refs) == 3 + 5 + 3 + 3

    def test_column_resolution(self, company_db):
        column = company_db.column(ColumnRef("Project", "Budget"))
        assert column.data_type is DataType.DECIMAL

    def test_column_values(self, company_db):
        values = company_db.column_values(ColumnRef("Department", "City"))
        assert values.count("Ann Arbor") == 2

    def test_total_rows_and_summary(self, company_db):
        assert company_db.total_rows == 4 + 6 + 4 + 7
        summary = company_db.summary()
        assert summary["Employee"] == {"columns": 5, "rows": 6}


class TestDropAndRecreate:
    def test_stale_table_handle_stays_isolated(self, company_db):
        from repro.dataset.schema import Column
        from repro.dataset.types import DataType

        stale = company_db.table("Project")
        old_rows = list(stale.rows)
        company_db.drop_table("Project")
        fresh = company_db.create_table(
            "Project", [Column("Number", DataType.INT)]
        )
        fresh.insert((42,))
        # The stale handle keeps its own data and schema...
        assert stale.rows == old_rows
        assert stale.column_values("Title")[0] == "Query Optimizer"
        # ...and writes to it never leak into the successor table.
        stale.insert(("P9", "Side Project", 1_000.0))
        assert fresh.rows == [(42,)]
        assert company_db.table("Project") is fresh
