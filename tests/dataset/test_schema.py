"""Unit tests for schema value objects."""

from __future__ import annotations

import pytest

from repro.dataset.schema import Column, ColumnRef, ForeignKey
from repro.dataset.types import DataType
from repro.errors import SchemaError


class TestColumn:
    def test_basic_construction(self):
        column = Column("Name", DataType.TEXT)
        assert column.name == "Name"
        assert column.nullable is True
        assert column.primary_key is False

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", DataType.TEXT)
        with pytest.raises(SchemaError):
            Column("   ", DataType.TEXT)

    def test_data_type_must_be_enum(self):
        with pytest.raises(SchemaError):
            Column("Name", "text")  # type: ignore[arg-type]

    def test_columns_are_hashable_and_equal_by_value(self):
        assert Column("a", DataType.INT) == Column("a", DataType.INT)
        assert hash(Column("a", DataType.INT)) == hash(Column("a", DataType.INT))


class TestColumnRef:
    def test_str_rendering(self):
        assert str(ColumnRef("Lake", "Area")) == "Lake.Area"

    def test_empty_parts_rejected(self):
        with pytest.raises(SchemaError):
            ColumnRef("", "Area")
        with pytest.raises(SchemaError):
            ColumnRef("Lake", "")

    def test_ordering_is_lexicographic(self):
        refs = sorted([ColumnRef("B", "x"), ColumnRef("A", "z"), ColumnRef("A", "a")])
        assert refs == [ColumnRef("A", "a"), ColumnRef("A", "z"), ColumnRef("B", "x")]

    def test_hashable(self):
        assert len({ColumnRef("T", "c"), ColumnRef("T", "c")}) == 1


class TestForeignKey:
    def test_refs_and_tables(self):
        fk = ForeignKey("Employee", "Department", "Department", "Name")
        assert fk.child_ref == ColumnRef("Employee", "Department")
        assert fk.parent_ref == ColumnRef("Department", "Name")
        assert fk.tables() == ("Employee", "Department")

    def test_self_reference_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("T", "c", "T", "c")

    def test_same_table_different_columns_allowed(self):
        fk = ForeignKey("Employee", "ManagerId", "Employee", "Id")
        assert fk.child_table == fk.parent_table

    def test_empty_component_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("", "c", "P", "k")
        with pytest.raises(SchemaError):
            ForeignKey("C", "", "P", "k")

    def test_name_does_not_affect_equality(self):
        first = ForeignKey("A", "x", "B", "y", name="fk1")
        second = ForeignKey("A", "x", "B", "y", name="fk2")
        assert first == second

    def test_str_is_readable(self):
        fk = ForeignKey("geo_lake", "Lake", "Lake", "Name")
        assert str(fk) == "geo_lake.Lake -> Lake.Name"
