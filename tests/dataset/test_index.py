"""Unit tests for the inverted index."""

from __future__ import annotations

import pytest

from repro.dataset.index import InvertedIndex, Posting, normalize_term
from repro.dataset.schema import ColumnRef


@pytest.fixture()
def index(company_db):
    return InvertedIndex.build(company_db)


class TestNormalizeTerm:
    def test_case_folding_and_stripping(self):
        assert normalize_term("  Lake Tahoe ") == "lake tahoe"

    def test_integral_float_matches_int(self):
        assert normalize_term(497.0) == normalize_term(497)

    def test_non_integral_float_keeps_fraction(self):
        assert normalize_term(53.2) == "53.2"


class TestBuild:
    def test_counts(self, index, company_db):
        non_null_cells = sum(
            1
            for table in company_db
            for row in table.rows
            for cell in row
            if cell is not None
        )
        assert index.indexed_cells == non_null_cells
        assert index.num_terms > 0


class TestLookup:
    def test_exact_value_lookup(self, index):
        postings = index.lookup("Engineering")
        assert Posting("Department", "Name", 0) in postings
        # Also appears as Employee.Department values.
        assert any(p.table == "Employee" for p in postings)

    def test_lookup_is_case_insensitive(self, index):
        assert index.columns_containing("engineering") == index.columns_containing(
            "ENGINEERING"
        )

    def test_token_lookup_finds_word_inside_text(self, index):
        columns = index.columns_containing("Alice")
        assert ColumnRef("Employee", "Name") in columns

    def test_token_lookup_can_be_disabled(self, index):
        assert ColumnRef("Employee", "Name") not in index.columns_containing(
            "Alice", include_tokens=False
        )

    def test_numeric_lookup(self, index):
        columns = index.columns_containing(120000.0)
        assert ColumnRef("Employee", "Salary") in columns

    def test_missing_value_returns_empty(self, index):
        assert index.lookup("no such value") == []
        assert index.columns_containing("no such value") == set()

    def test_columns_containing_any(self, index):
        columns = index.columns_containing_any(["Engineering", "P3"])
        assert ColumnRef("Project", "Code") in columns
        assert ColumnRef("Department", "Name") in columns

    def test_row_indexes(self, index):
        rows = index.row_indexes(ColumnRef("Employee", "Department"), "Research")
        assert rows == {3, 4}

    def test_term_frequency(self, index):
        # 'Engineering' appears once in Department.Name and twice in
        # Employee.Department.
        assert index.term_frequency("Engineering") == 3

    def test_column_term_frequency(self, index):
        assert index.column_term_frequency(
            ColumnRef("Employee", "Department"), "Engineering"
        ) == 2


class TestPosting:
    def test_equality_and_hash(self):
        assert Posting("T", "c", 1) == Posting("T", "c", 1)
        assert len({Posting("T", "c", 1), Posting("T", "c", 1)}) == 1
        assert Posting("T", "c", 1) != Posting("T", "c", 2)

    def test_column_ref(self):
        assert Posting("T", "c", 0).column_ref == ColumnRef("T", "c")
