"""Unit tests for in-memory table storage."""

from __future__ import annotations

import pytest

from repro.dataset.schema import Column
from repro.dataset.table import Table
from repro.dataset.types import DataType
from repro.errors import DataError, SchemaError


@pytest.fixture()
def lakes_table() -> Table:
    table = Table(
        "Lake",
        [
            Column("Name", DataType.TEXT, nullable=False),
            Column("Area", DataType.DECIMAL),
            Column("Depth", DataType.DECIMAL),
        ],
    )
    table.insert_many(
        [
            ("Lake Tahoe", 497.0, 501.0),
            ("Crater Lake", 53.2, 594.0),
            ("Mono Lake", 183.0, None),
        ]
    )
    return table


class TestTableConstruction:
    def test_requires_name_and_columns(self):
        with pytest.raises(SchemaError):
            Table("", [Column("a", DataType.INT)])
        with pytest.raises(SchemaError):
            Table("T", [])

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            Table("T", [Column("a", DataType.INT), Column("a", DataType.TEXT)])

    def test_column_lookup(self, lakes_table):
        assert lakes_table.column("Area").data_type is DataType.DECIMAL
        assert lakes_table.column_position("Depth") == 2
        assert lakes_table.has_column("Name")
        assert not lakes_table.has_column("Altitude")

    def test_unknown_column_raises(self, lakes_table):
        with pytest.raises(SchemaError):
            lakes_table.column("Missing")
        with pytest.raises(SchemaError):
            lakes_table.column_position("Missing")

    def test_column_names_preserve_order(self, lakes_table):
        assert lakes_table.column_names == ("Name", "Area", "Depth")


class TestInsert:
    def test_row_count_and_iteration(self, lakes_table):
        assert lakes_table.num_rows == 3
        assert len(lakes_table) == 3
        assert list(lakes_table)[0] == ("Lake Tahoe", 497.0, 501.0)

    def test_wrong_arity_rejected(self, lakes_table):
        with pytest.raises(DataError):
            lakes_table.insert(("Extra", 1.0))

    def test_type_mismatch_rejected(self, lakes_table):
        with pytest.raises(DataError):
            lakes_table.insert(("Lake X", "not a number", 10.0))

    def test_int_accepted_in_decimal_column(self, lakes_table):
        lakes_table.insert(("Lake Y", 100, 5.0))
        assert lakes_table.cell(3, "Area") == 100.0
        assert isinstance(lakes_table.cell(3, "Area"), float)

    def test_null_in_non_nullable_column_rejected(self, lakes_table):
        with pytest.raises(DataError):
            lakes_table.insert((None, 10.0, 5.0))

    def test_null_in_nullable_column_accepted(self, lakes_table):
        lakes_table.insert(("Lake Z", None, None))
        assert lakes_table.cell(3, "Area") is None

    def test_coerce_mode_converts_strings(self):
        table = Table("T", [Column("n", DataType.INT)])
        table.insert(("17",), coerce=True)
        assert table.rows[0] == (17,)

    def test_insert_many_returns_count(self, lakes_table):
        added = lakes_table.insert_many([("A Lake", 1.0, 1.0), ("B Lake", 2.0, 2.0)])
        assert added == 2
        assert lakes_table.num_rows == 5


class TestAccess:
    def test_cell_access(self, lakes_table):
        assert lakes_table.cell(0, "Name") == "Lake Tahoe"
        assert lakes_table.cell(2, "Depth") is None

    def test_column_values_include_nulls(self, lakes_table):
        assert lakes_table.column_values("Depth") == [501.0, 594.0, None]

    def test_distinct_values_exclude_nulls(self, lakes_table):
        assert lakes_table.distinct_values("Depth") == {501.0, 594.0}

    def test_select_projection(self, lakes_table):
        rows = lakes_table.select(columns=["Name"])
        assert ("Crater Lake",) in rows
        assert all(len(row) == 1 for row in rows)

    def test_select_with_where(self, lakes_table):
        rows = lakes_table.select(columns=["Area"], where={"Name": "Lake Tahoe"})
        assert rows == [(497.0,)]

    def test_select_all_columns_by_default(self, lakes_table):
        rows = lakes_table.select(where={"Name": "Mono Lake"})
        assert rows == [("Mono Lake", 183.0, None)]


class TestInsertManyDiagnostics:
    def test_failure_reports_row_index(self, lakes_table):
        with pytest.raises(DataError, match=r"row 2:"):
            lakes_table.insert_many(
                [
                    ("Good Lake", 1.0, 1.0),
                    ("Also Fine", 2.0, 2.0),
                    ("Bad Lake", "not a number", 3.0),
                ]
            )
        # Rows before the failure were inserted (partial bulk load).
        assert lakes_table.num_rows == 5

    def test_failure_reports_row_index_for_arity_errors(self, lakes_table):
        with pytest.raises(DataError, match=r"row 0:"):
            lakes_table.insert_many([("Too", 1.0)])
