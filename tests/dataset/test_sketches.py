"""Property tests for the statistics-sketch layer (ISSUE 10 satellite).

The guarantees the planner and executor lean on are *properties*, not
point values, so they are tested as such over seeded random inputs:

* :func:`hash_value` respects Python equality classes and matches its
  vectorized counterpart bit for bit;
* :class:`HyperLogLog` estimates land within the sketch's error bound,
  merge is exactly the union, and folding appended values reproduces a
  cold rebuild's registers regardless of order or batching;
* :class:`BloomFilter` never reports a present value absent — including
  values folded in after construction — and keeps the false-positive
  rate under its sizing target;
* :class:`EquiDepthHistogram` CDFs are monotone and bounded before and
  after fixed-boundary folds;
* a :class:`MetadataCatalog` built on the python and numpy storage
  backends carries byte-identical sketches, ``apply_delta`` folds reach
  the cold-rebuild state, and everything survives pickling (the
  fork/spawn round trip process shards rely on).
"""

from __future__ import annotations

import math
import pickle
import random
import struct

import pytest

from repro.dataset.catalog import MetadataCatalog
from repro.dataset.schema import ColumnRef
from repro.dataset.sketches import (
    BloomFilter,
    EquiDepthHistogram,
    HyperLogLog,
    hash_value,
    hash_values,
)
from repro.datasets.synthetic import generate_synthetic_database
from repro.storage import make_backend

np = pytest.importorskip("numpy")

BACKENDS = ("python", "numpy")


def _random_values(rng: random.Random, count: int) -> list:
    """A deterministic mixed bag of the cell types columns hold."""
    values = []
    for _ in range(count):
        kind = rng.randrange(4)
        if kind == 0:
            values.append(rng.randrange(-(10 ** 9), 10 ** 9))
        elif kind == 1:
            values.append(rng.random() * 1e6 - 5e5)
        elif kind == 2:
            values.append(f"label-{rng.randrange(10 ** 6)}")
        else:
            values.append(bool(rng.randrange(2)))
    return values


class TestHashValue:
    def test_python_equality_classes_hash_equal(self):
        assert hash_value(True) == hash_value(1) == hash_value(1.0)
        assert hash_value(False) == hash_value(0) == hash_value(-0.0)
        assert hash_value(7) == hash_value(7.0)
        # Out-of-int64-range ints match their exact float twin.
        assert hash_value(2 ** 80) == hash_value(float(2 ** 80))

    def test_unequal_values_hash_differently(self):
        rng = random.Random(1)
        values = _random_values(rng, 2000)
        buckets = {}
        for value in values:
            buckets.setdefault(hash_value(value), set()).add(
                value if not isinstance(value, bool) else int(value)
            )
        # 64-bit hashes over 2k values: a collision would be a bug.
        for seen in buckets.values():
            assert len({v == w for v in seen for w in seen}) == 1

    def test_all_nan_payloads_collapse(self):
        quiet = float("nan")
        weird_payload = struct.unpack(
            "<d", struct.pack("<Q", 0x7FF8_0000_0000_00AB)
        )[0]
        assert math.isnan(weird_payload)
        assert hash_value(quiet) == hash_value(weird_payload)

    @pytest.mark.parametrize("dtype", ["int64", "float64", "bool"])
    def test_vectorized_hash_matches_scalar(self, dtype):
        rng = np.random.default_rng(7)
        if dtype == "int64":
            array = rng.integers(-(2 ** 62), 2 ** 62, size=500)
        elif dtype == "float64":
            array = np.concatenate([
                rng.normal(0.0, 1e9, size=400),
                np.array([0.0, -0.0, 1.5, np.nan, np.inf, -np.inf, 2.0 ** 70]),
                rng.integers(-(10 ** 6), 10 ** 6, size=100).astype(np.float64),
            ])
        else:
            array = rng.integers(0, 2, size=64).astype(bool)
        hashed = hash_values(array)
        assert hashed.dtype == np.uint64
        for value, vector_hash in zip(array.tolist(), hashed.tolist()):
            assert hash_value(value) == vector_hash


class TestHyperLogLog:
    @pytest.mark.parametrize("distinct", [50, 1000, 20000])
    def test_estimate_within_error_bound(self, distinct):
        sketch = HyperLogLog()
        sketch.add_hashes([hash_value(f"v{i}") for i in range(distinct)])
        # Precision 12 gives a ~1.6% standard error; 3 sigma + the
        # small-range correction comfortably fits inside 6%.
        assert sketch.estimate() == pytest.approx(distinct, rel=0.06)

    def test_duplicates_do_not_inflate_the_estimate(self):
        once = HyperLogLog()
        thrice = HyperLogLog()
        hashes = [hash_value(i) for i in range(5000)]
        once.add_hashes(hashes)
        thrice.add_hashes(hashes * 3)
        assert once == thrice

    def test_fold_order_and_batching_are_irrelevant(self):
        values = _random_values(random.Random(2), 3000)
        one_shot = HyperLogLog()
        one_shot.add_hashes([hash_value(v) for v in values])

        shuffled = list(values)
        random.Random(3).shuffle(shuffled)
        incremental = HyperLogLog()
        for value in shuffled[:1000]:
            incremental.add_value(value)  # scalar folds
        incremental.add_hashes(
            np.array([hash_value(v) for v in shuffled[1000:]], dtype=np.uint64)
        )  # vectorized fold of the rest
        assert incremental == one_shot

    def test_merge_is_exactly_the_union(self):
        left_values = [f"a{i}" for i in range(2000)]
        right_values = [f"a{i}" for i in range(1000, 3000)]
        left = HyperLogLog()
        right = HyperLogLog()
        union = HyperLogLog()
        left.add_hashes([hash_value(v) for v in left_values])
        right.add_hashes([hash_value(v) for v in right_values])
        union.add_hashes(
            [hash_value(v) for v in left_values + right_values]
        )
        assert left.merge(right) == union
        assert left.merge(right) == right.merge(left)
        assert left.union_estimate(right) == union.estimate()

    def test_merge_rejects_mismatched_precision(self):
        with pytest.raises(ValueError):
            HyperLogLog(12).merge(HyperLogLog(10))

    def test_pickle_round_trip(self):
        sketch = HyperLogLog()
        sketch.add_hashes([hash_value(i) for i in range(500)])
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone == sketch
        assert clone.estimate() == sketch.estimate()


class TestBloomFilter:
    def test_with_capacity_sizes_power_of_two_within_clamps(self):
        for expected in (0, 1, 10, 1000, 10 ** 5, 10 ** 9):
            bloom = BloomFilter.with_capacity(expected)
            assert bloom.num_bits & (bloom.num_bits - 1) == 0
            assert BloomFilter.MIN_BITS <= bloom.num_bits <= BloomFilter.MAX_BITS
            if BloomFilter.MIN_BITS <= expected * BloomFilter.BITS_PER_KEY:
                assert (
                    bloom.num_bits >= expected * BloomFilter.BITS_PER_KEY
                    or bloom.num_bits == BloomFilter.MAX_BITS
                )

    def test_no_false_negatives_ever(self):
        values = _random_values(random.Random(4), 4000)
        bloom = BloomFilter.with_capacity(len(values))
        bloom.add_hashes([hash_value(v) for v in values])
        assert all(bloom.might_contain(v) for v in values)

    def test_no_false_negatives_across_appended_folds(self):
        # The delta-fold lifecycle: build for an expected capacity, then
        # keep folding appended keys in. Membership must keep holding
        # even past the sizing estimate.
        bloom = BloomFilter.with_capacity(1000)
        present = []
        rng = random.Random(5)
        for batch in range(4):
            appended = [rng.randrange(10 ** 12) for _ in range(1000)]
            if batch % 2:
                bloom.add_hashes(
                    np.array([hash_value(v) for v in appended], dtype=np.uint64)
                )
            else:
                for value in appended:
                    bloom.add_value(value)
            present.extend(appended)
            assert all(bloom.might_contain(v) for v in present)

    def test_false_positive_rate_under_sizing_target(self):
        keys = 4096
        bloom = BloomFilter.with_capacity(keys)
        bloom.add_hashes([hash_value(i) for i in range(keys)])
        absent = range(10 ** 7, 10 ** 7 + 20000)
        false_positives = sum(bloom.might_contain(i) for i in absent)
        # Sized at 16 bits/key the analytic rate is ~7e-4; allow 5x.
        assert false_positives / 20000 < 5e-3

    def test_vectorized_membership_matches_scalar(self):
        bloom = BloomFilter.with_capacity(500)
        bloom.add_hashes([hash_value(i) for i in range(500)])
        probes = np.array(
            [hash_value(i) for i in range(0, 1000)], dtype=np.uint64
        )
        mask = bloom.contains_hashes(probes)
        for hashed, kept in zip(probes.tolist(), mask.tolist()):
            assert bloom.might_contain_hash(hashed) == kept
        assert mask[:500].all()  # the present half, no false negatives

    def test_pickle_round_trip(self):
        bloom = BloomFilter.with_capacity(100)
        bloom.add_hashes([hash_value(i) for i in range(100)])
        clone = pickle.loads(pickle.dumps(bloom))
        assert clone == bloom
        assert all(clone.might_contain(i) for i in range(100))


class TestEquiDepthHistogram:
    def _skewed_values(self, count=5000):
        rng = random.Random(6)
        return [rng.paretovariate(1.2) * 10 for _ in range(count)]

    def test_cdf_is_monotone_and_bounded(self):
        histogram = EquiDepthHistogram.from_values(self._skewed_values())
        low, high = histogram.boundaries[0], histogram.boundaries[-1]
        probes = [
            low - 1.0,
            *(low + (high - low) * i / 200 for i in range(201)),
            high + 1.0,
        ]
        cdfs = [histogram.cdf(p) for p in probes]
        assert all(0.0 <= c <= 1.0 for c in cdfs)
        assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))
        assert histogram.cdf(low - 1.0) == 0.0
        assert histogram.cdf(high) == 1.0

    def test_build_is_order_insensitive(self):
        values = self._skewed_values()
        shuffled = list(values)
        random.Random(7).shuffle(shuffled)
        assert EquiDepthHistogram.from_values(
            values
        ) == EquiDepthHistogram.from_values(shuffled)

    def test_selectivity_edges(self):
        histogram = EquiDepthHistogram.from_values(self._skewed_values())
        assert histogram.selectivity(None, None) == pytest.approx(1.0)
        assert histogram.selectivity(5.0, 1.0) == 0.0
        low, high = histogram.boundaries[0], histogram.boundaries[-1]
        mid = (low + high) / 2
        split = histogram.selectivity(None, mid) + histogram.selectivity(
            mid, None
        )
        # The closed interval double-counts only the mass exactly at mid.
        assert split == pytest.approx(1.0, abs=0.05)

    def test_fold_keeps_cdf_monotone_and_counts_total(self):
        values = self._skewed_values(2000)
        histogram = EquiDepthHistogram.from_values(values)
        rng = random.Random(8)
        for _ in range(500):
            histogram.fold(rng.paretovariate(1.2) * 10 - 5.0)
        assert histogram.total == 2500
        low, high = histogram.boundaries[0], histogram.boundaries[-1]
        probes = [low + (high - low) * i / 100 for i in range(101)]
        cdfs = [histogram.cdf(p) for p in probes]
        assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))

    def test_fold_stretches_outer_boundaries(self):
        histogram = EquiDepthHistogram.from_values([1.0, 2.0, 3.0, 4.0])
        histogram.fold(-10.0)
        histogram.fold(50.0)
        assert histogram.boundaries[0] == -10.0
        assert histogram.boundaries[-1] == 50.0
        assert histogram.cdf(-10.0) >= 0.0
        assert histogram.cdf(50.0) == 1.0

    def test_non_numeric_input_is_rejected_gracefully(self):
        assert EquiDepthHistogram.from_values([]) is None
        assert EquiDepthHistogram.from_values(["a", "b"]) is None
        histogram = EquiDepthHistogram.from_values([1.0, 2.0])
        histogram.fold("not-a-number")  # ignored, not raised
        assert histogram.total == 2


def _sketch_refs(database):
    for table in database.tables.values():
        for column in table.columns:
            yield ColumnRef(table.name, column.name)


def _small_db(backend_kind: str, rows: int = 300):
    return generate_synthetic_database(
        num_tables=3,
        rows_per_table=rows,
        topology="chain",
        seed=11,
        skew=0.8,
        dangling_fk_fraction=0.3,
        backend=make_backend(backend_kind),
    )


class TestCatalogSketches:
    def test_backends_build_identical_sketches(self):
        catalogs = {
            kind: MetadataCatalog.build(_small_db(kind)) for kind in BACKENDS
        }
        refs = list(_sketch_refs(_small_db("python")))
        assert refs
        for ref in refs:
            python_sketches = catalogs["python"].sketches(ref)
            numpy_sketches = catalogs["numpy"].sketches(ref)
            assert python_sketches is not None
            assert python_sketches.hll == numpy_sketches.hll
            assert python_sketches.bloom == numpy_sketches.bloom
            assert python_sketches.histogram == numpy_sketches.histogram

    def test_join_keys_get_blooms_numerics_get_histograms(self):
        database = _small_db("python")
        catalog = MetadataCatalog.build(database)
        join_key_refs = set()
        for fk in database.foreign_keys:
            join_key_refs.add(ColumnRef(fk.child_table, fk.child_column))
            join_key_refs.add(ColumnRef(fk.parent_table, fk.parent_column))
        for ref in _sketch_refs(database):
            sketches = catalog.sketches(ref)
            assert (sketches.bloom is not None) == (ref in join_key_refs)
            if ref.column == "measure":
                assert sketches.histogram is not None
            if ref.column in ("label", "attr0", "attr1"):
                assert sketches.histogram is None

    @pytest.mark.parametrize("backend_kind", BACKENDS)
    def test_delta_fold_reaches_cold_rebuild_state(self, backend_kind):
        database = _small_db(backend_kind)
        catalog = MetadataCatalog.build(database)
        marks = database.storage_marks()
        assert marks is not None

        rng = random.Random(12)
        for table_name in ("T1", "T2"):
            table = database.table(table_name)
            base = table.num_rows
            table.insert_many(
                (
                    base + i,
                    f"label-{rng.randrange(40)}-new",
                    rng.random() * 100,
                    rng.randrange(600),  # parent_id, some dangling
                    f"attr-{rng.randrange(20)}",
                    f"attr-{rng.randrange(20)}",
                )
                for i in range(50)
            )
        deltas = database.storage_deltas_since(marks)
        assert deltas and set(deltas) == {"T1", "T2"}
        catalog.apply_delta(database, deltas, built_from=("test", 1))

        rebuilt = MetadataCatalog.build(database)
        for ref in _sketch_refs(database):
            folded = catalog.sketches(ref)
            cold = rebuilt.sketches(ref)
            # HLL registers and Bloom bits fold exactly; histogram
            # boundaries are frozen so only the totals must agree.
            assert folded.hll == cold.hll, ref
            assert folded.bloom == cold.bloom, ref
            if cold.histogram is not None:
                assert folded.histogram.total == cold.histogram.total

    def test_bloom_never_loses_keys_across_delta_folds(self):
        database = _small_db("numpy")
        catalog = MetadataCatalog.build(database)
        marks = database.storage_marks()
        table = database.table("T2")
        base = table.num_rows
        table.insert_many(
            (base + i, f"fresh-{i}", float(i), 10 ** 6 + i, "x", "y")
            for i in range(25)
        )
        catalog.apply_delta(
            database, database.storage_deltas_since(marks), built_from=("t", 2)
        )
        bloom = catalog.sketches(ColumnRef("T2", "parent_id")).bloom
        assert bloom is not None
        for parent in database.table("T2").column_values("parent_id"):
            assert bloom.might_contain(parent)

    @pytest.mark.parametrize("backend_kind", BACKENDS)
    def test_sketches_survive_pickling(self, backend_kind):
        database = _small_db(backend_kind)
        catalog = MetadataCatalog.build(database)
        clone = pickle.loads(pickle.dumps(catalog))
        for ref in _sketch_refs(database):
            original = catalog.sketches(ref)
            restored = clone.sketches(ref)
            assert restored is not None
            assert restored.hll == original.hll
            assert restored.bloom == original.bloom
            assert restored.histogram == original.histogram
