"""Unit tests for the metadata catalog."""

from __future__ import annotations

import pytest

from repro.dataset.catalog import MetadataCatalog
from repro.dataset.database import Database
from repro.dataset.schema import Column, ColumnRef
from repro.dataset.types import DataType
from repro.errors import SchemaError


@pytest.fixture()
def catalog(company_db):
    return MetadataCatalog.build(company_db)


class TestNumericStats:
    def test_min_max_mean(self, catalog):
        stats = catalog.stats(ColumnRef("Employee", "Salary"))
        assert stats.min_value == 67_000.0
        assert stats.max_value == 120_000.0
        assert stats.mean == pytest.approx(96_166.667, rel=1e-4)
        assert stats.stddev is not None and stats.stddev > 0

    def test_row_and_distinct_counts(self, catalog):
        stats = catalog.stats(ColumnRef("Employee", "Age"))
        assert stats.row_count == 6
        assert stats.null_count == 0
        assert stats.distinct_count == 6
        assert stats.is_numeric

    def test_int_column_type_recorded(self, catalog):
        assert catalog.stats(ColumnRef("Assignment", "Hours")).data_type is DataType.INT


class TestTextStats:
    def test_max_text_length(self, catalog):
        stats = catalog.stats(ColumnRef("Project", "Title"))
        assert stats.max_text_length == len("Query Optimizer")
        assert stats.mean is None

    def test_min_max_are_lexicographic(self, catalog):
        stats = catalog.stats(ColumnRef("Department", "Name"))
        assert stats.min_value == "Engineering"
        assert stats.max_value == "Sales"


class TestNullHandling:
    def test_null_fraction(self):
        database = Database("nulls")
        table = database.create_table(
            "T", [Column("x", DataType.INT), Column("y", DataType.TEXT)]
        )
        table.insert_many([(1, "a"), (None, None), (3, None), (None, "b")])
        catalog = MetadataCatalog.build(database)
        assert catalog.stats(ColumnRef("T", "x")).null_count == 2
        assert catalog.stats(ColumnRef("T", "x")).null_fraction == pytest.approx(0.5)
        assert catalog.stats(ColumnRef("T", "y")).non_null_count == 2

    def test_all_null_column_has_no_bounds(self):
        database = Database("allnull")
        table = database.create_table("T", [Column("x", DataType.DECIMAL)])
        table.insert_many([(None,), (None,)])
        catalog = MetadataCatalog.build(database)
        stats = catalog.stats(ColumnRef("T", "x"))
        assert stats.min_value is None
        assert stats.max_value is None
        assert stats.distinct_count == 0

    def test_empty_table_null_fraction_is_zero(self):
        database = Database("empty")
        database.create_table("T", [Column("x", DataType.INT)])
        catalog = MetadataCatalog.build(database)
        assert catalog.stats(ColumnRef("T", "x")).null_fraction == 0.0


class TestLookups:
    def test_columns_and_len(self, catalog, company_db):
        assert len(catalog) == len(company_db.all_column_refs())
        assert set(catalog.columns()) == set(company_db.all_column_refs())

    def test_columns_of_type(self, catalog):
        decimal_columns = catalog.columns_of_type(DataType.DECIMAL)
        assert ColumnRef("Department", "Budget") in decimal_columns
        assert ColumnRef("Employee", "Name") not in decimal_columns

    def test_table_row_count(self, catalog):
        assert catalog.table_row_count("Employee") == 6
        with pytest.raises(SchemaError):
            catalog.table_row_count("Ghost")

    def test_unknown_column_raises(self, catalog):
        with pytest.raises(SchemaError):
            catalog.stats(ColumnRef("Employee", "Ghost"))

    def test_has_column(self, catalog):
        assert catalog.has_column(ColumnRef("Employee", "Salary"))
        assert not catalog.has_column(ColumnRef("Employee", "Ghost"))
