"""Unit tests for CSV save/load round-tripping."""

from __future__ import annotations

import json

import pytest

from repro.dataset.loader import MANIFEST_NAME, load_database, save_database
from repro.errors import DataError


class TestRoundTrip:
    def test_round_trip_preserves_structure_and_rows(self, company_db, tmp_path):
        save_database(company_db, tmp_path)
        reloaded = load_database(tmp_path)
        assert reloaded.name == company_db.name
        assert set(reloaded.table_names) == set(company_db.table_names)
        for table in company_db:
            assert reloaded.table(table.name).num_rows == table.num_rows
            assert reloaded.table(table.name).column_names == table.column_names

    def test_round_trip_preserves_values_and_types(self, company_db, tmp_path):
        save_database(company_db, tmp_path)
        reloaded = load_database(tmp_path)
        original = sorted(company_db.table("Employee").rows)
        restored = sorted(reloaded.table("Employee").rows)
        assert restored == original

    def test_round_trip_preserves_foreign_keys(self, company_db, tmp_path):
        save_database(company_db, tmp_path)
        reloaded = load_database(tmp_path)
        assert set(
            (fk.child_table, fk.child_column, fk.parent_table, fk.parent_column)
            for fk in reloaded.foreign_keys
        ) == set(
            (fk.child_table, fk.child_column, fk.parent_table, fk.parent_column)
            for fk in company_db.foreign_keys
        )

    def test_null_cells_round_trip(self, tmp_path):
        from repro.dataset import Column, Database, DataType

        database = Database("nulls")
        table = database.create_table(
            "T", [Column("a", DataType.TEXT), Column("b", DataType.INT)]
        )
        table.insert_many([("x", 1), (None, None)])
        save_database(database, tmp_path)
        reloaded = load_database(tmp_path)
        assert reloaded.table("T").rows[1] == (None, None)

    def test_mondial_round_trips(self, mondial_db, tmp_path):
        save_database(mondial_db, tmp_path)
        reloaded = load_database(tmp_path)
        assert reloaded.total_rows == mondial_db.total_rows


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DataError):
            load_database(tmp_path)

    def test_manifest_missing_keys(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(json.dumps({"tables": {}}))
        with pytest.raises(DataError):
            load_database(tmp_path)

    def test_missing_csv_file(self, company_db, tmp_path):
        save_database(company_db, tmp_path)
        (tmp_path / "Employee.csv").unlink()
        with pytest.raises(DataError):
            load_database(tmp_path)

    def test_save_returns_manifest_path(self, company_db, tmp_path):
        manifest_path = save_database(company_db, tmp_path / "out")
        assert manifest_path.name == MANIFEST_NAME
        assert manifest_path.exists()
