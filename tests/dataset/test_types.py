"""Unit tests for data types, detection and coercion."""

from __future__ import annotations

import datetime

import pytest

from repro.dataset.types import (
    DataType,
    coerce_value,
    detect_type,
    infer_column_type,
    parse_date,
    parse_time,
    values_comparable,
)
from repro.errors import DataError


class TestDataTypeEnum:
    def test_from_name_canonical(self):
        assert DataType.from_name("int") is DataType.INT
        assert DataType.from_name("decimal") is DataType.DECIMAL
        assert DataType.from_name("text") is DataType.TEXT
        assert DataType.from_name("date") is DataType.DATE
        assert DataType.from_name("time") is DataType.TIME

    def test_from_name_aliases(self):
        assert DataType.from_name("integer") is DataType.INT
        assert DataType.from_name("float") is DataType.DECIMAL
        assert DataType.from_name("varchar") is DataType.TEXT
        assert DataType.from_name("bool") is DataType.BOOLEAN

    def test_from_name_is_case_insensitive(self):
        assert DataType.from_name("DECIMAL") is DataType.DECIMAL
        assert DataType.from_name("  Text ") is DataType.TEXT

    def test_from_name_unknown_raises(self):
        with pytest.raises(DataError):
            DataType.from_name("blob")

    def test_is_numeric(self):
        assert DataType.INT.is_numeric
        assert DataType.DECIMAL.is_numeric
        assert not DataType.TEXT.is_numeric
        assert not DataType.DATE.is_numeric


class TestDetectType:
    def test_none_is_null(self):
        assert detect_type(None) is None

    def test_bool_detected_before_int(self):
        assert detect_type(True) is DataType.BOOLEAN

    def test_int_and_float(self):
        assert detect_type(42) is DataType.INT
        assert detect_type(3.14) is DataType.DECIMAL

    def test_text(self):
        assert detect_type("Lake Tahoe") is DataType.TEXT

    def test_date_and_time(self):
        assert detect_type(datetime.date(2020, 1, 1)) is DataType.DATE
        assert detect_type(datetime.time(10, 30)) is DataType.TIME

    def test_unsupported_type_raises(self):
        with pytest.raises(DataError):
            detect_type([1, 2, 3])


class TestInferColumnType:
    def test_all_int(self):
        assert infer_column_type([1, 2, 3]) is DataType.INT

    def test_int_widened_to_decimal(self):
        assert infer_column_type([1, 2.5, 3]) is DataType.DECIMAL

    def test_mixed_falls_back_to_text(self):
        assert infer_column_type([1, "two", 3.0]) is DataType.TEXT

    def test_all_null_defaults_to_text(self):
        assert infer_column_type([None, None]) is DataType.TEXT

    def test_nulls_are_ignored(self):
        assert infer_column_type([None, 5, None]) is DataType.INT


class TestCoerceValue:
    def test_none_passthrough(self):
        assert coerce_value(None, DataType.INT) is None

    def test_int_from_string(self):
        assert coerce_value(" 42 ", DataType.INT) == 42

    def test_decimal_from_string(self):
        assert coerce_value("3.5", DataType.DECIMAL) == pytest.approx(3.5)

    def test_decimal_from_int(self):
        value = coerce_value(7, DataType.DECIMAL)
        assert isinstance(value, float) and value == 7.0

    def test_text_from_number(self):
        assert coerce_value(12, DataType.TEXT) == "12"

    def test_date_from_string(self):
        assert coerce_value("2020-06-14", DataType.DATE) == datetime.date(2020, 6, 14)

    def test_time_from_string(self):
        assert coerce_value("09:30", DataType.TIME) == datetime.time(9, 30)

    def test_boolean_from_text(self):
        assert coerce_value("yes", DataType.BOOLEAN) is True
        assert coerce_value("0", DataType.BOOLEAN) is False

    def test_bad_int_raises(self):
        with pytest.raises(DataError):
            coerce_value("not a number", DataType.INT)

    def test_bad_boolean_raises(self):
        with pytest.raises(DataError):
            coerce_value("perhaps", DataType.BOOLEAN)


class TestParseDateTime:
    def test_parse_date_formats(self):
        assert parse_date("2021-03-04") == datetime.date(2021, 3, 4)
        assert parse_date("2021/03/04") == datetime.date(2021, 3, 4)
        assert parse_date("04.03.2021") == datetime.date(2021, 3, 4)

    def test_parse_date_invalid(self):
        with pytest.raises(DataError):
            parse_date("yesterday")

    def test_parse_time_formats(self):
        assert parse_time("10:15:30") == datetime.time(10, 15, 30)
        assert parse_time("10:15") == datetime.time(10, 15)

    def test_parse_time_invalid(self):
        with pytest.raises(DataError):
            parse_time("noon")


class TestValuesComparable:
    def test_numerics_are_comparable(self):
        assert values_comparable(1, 2.5)

    def test_none_is_never_comparable(self):
        assert not values_comparable(None, 3)
        assert not values_comparable("a", None)

    def test_mixed_types_are_not_comparable(self):
        assert not values_comparable("a", 3)

    def test_same_type_is_comparable(self):
        assert values_comparable("a", "b")
