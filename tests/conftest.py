"""Shared pytest fixtures.

Heavy objects (the synthetic demo databases and a preprocessed Prism
engine) are session-scoped; the hand-crafted ``company`` database is small
and rebuilt per test module so tests can rely on exact contents.
"""

from __future__ import annotations

import pytest

from repro.dataset import Column, Database, DataType
from repro.datasets import load_imdb, load_mondial, load_nba
from repro.discovery import GenerationLimits, Prism


def build_company_database() -> Database:
    """A tiny, fully known database used by precise unit tests.

    Schema: Department ← Employee ← Assignment → Project, mirroring the
    classic employee/department example; every row is hand written so tests
    can assert exact results.
    """
    database = Database("company")
    department = database.create_table(
        "Department",
        [
            Column("Name", DataType.TEXT, primary_key=True),
            Column("City", DataType.TEXT),
            Column("Budget", DataType.DECIMAL),
        ],
    )
    employee = database.create_table(
        "Employee",
        [
            Column("Id", DataType.INT, primary_key=True),
            Column("Name", DataType.TEXT),
            Column("Department", DataType.TEXT),
            Column("Salary", DataType.DECIMAL),
            Column("Age", DataType.INT),
        ],
    )
    project = database.create_table(
        "Project",
        [
            Column("Code", DataType.TEXT, primary_key=True),
            Column("Title", DataType.TEXT),
            Column("Budget", DataType.DECIMAL),
        ],
    )
    assignment = database.create_table(
        "Assignment",
        [
            Column("EmployeeId", DataType.INT),
            Column("ProjectCode", DataType.TEXT),
            Column("Hours", DataType.INT),
        ],
    )

    department.insert_many(
        [
            ("Engineering", "Ann Arbor", 1_200_000.0),
            ("Marketing", "Detroit", 300_000.0),
            ("Research", "Ann Arbor", 900_000.0),
            ("Sales", "Chicago", 450_000.0),
        ]
    )
    employee.insert_many(
        [
            (1, "Alice Chen", "Engineering", 120_000.0, 34),
            (2, "Bob Diaz", "Engineering", 98_000.0, 29),
            (3, "Carol Evans", "Marketing", 76_000.0, 41),
            (4, "Dan Fox", "Research", 105_000.0, 38),
            (5, "Eve Gupta", "Research", 111_000.0, 27),
            (6, "Frank Hill", "Sales", 67_000.0, 45),
        ]
    )
    project.insert_many(
        [
            ("P1", "Query Optimizer", 500_000.0),
            ("P2", "Brand Refresh", 120_000.0),
            ("P3", "Schema Mapping", 640_000.0),
            ("P4", "Field Outreach", 90_000.0),
        ]
    )
    assignment.insert_many(
        [
            (1, "P1", 300),
            (1, "P3", 150),
            (2, "P1", 420),
            (3, "P2", 380),
            (4, "P3", 500),
            (5, "P3", 460),
            (6, "P4", 200),
        ]
    )

    database.link("Employee.Department", "Department.Name")
    database.link("Assignment.EmployeeId", "Employee.Id")
    database.link("Assignment.ProjectCode", "Project.Code")
    return database


@pytest.fixture()
def company_db() -> Database:
    """Fresh tiny company database (fully known contents)."""
    return build_company_database()


@pytest.fixture(scope="session")
def company_db_session() -> Database:
    """Session-scoped company database for read-only tests."""
    return build_company_database()


@pytest.fixture(scope="session")
def company_prism(company_db_session) -> Prism:
    """Preprocessed Prism engine over the company database."""
    return Prism(company_db_session)


@pytest.fixture(scope="session")
def mondial_db() -> Database:
    """The synthetic Mondial database (read-only in tests)."""
    return load_mondial()


@pytest.fixture(scope="session")
def imdb_db() -> Database:
    """The synthetic IMDB database (read-only in tests)."""
    return load_imdb()


@pytest.fixture(scope="session")
def nba_db() -> Database:
    """The synthetic NBA database (read-only in tests)."""
    return load_nba()


@pytest.fixture(scope="session")
def mondial_prism(mondial_db) -> Prism:
    """Preprocessed Prism engine over Mondial with modest search bounds."""
    return Prism(
        mondial_db,
        limits=GenerationLimits(max_candidates=400, max_assignments=800),
    )
