"""Unit tests for value constraints (the row-level language)."""

from __future__ import annotations

import pytest

from repro.constraints.resolution import Resolution
from repro.constraints.values import (
    AnyValue,
    Conjunction,
    Disjunction,
    ExactValue,
    OneOf,
    Predicate,
    Range,
)
from repro.errors import ConstraintError


class TestExactValue:
    def test_exact_string_match_is_case_insensitive(self):
        constraint = ExactValue("Lake Tahoe")
        assert constraint.matches("Lake Tahoe")
        assert constraint.matches("lake tahoe")
        assert not constraint.matches("Lake Michigan")

    def test_keyword_matches_whole_word_inside_text(self):
        assert ExactValue("Tahoe").matches("Lake Tahoe")
        assert not ExactValue("Tah").matches("Lake Tahoe")

    def test_cell_containing_keyword_phrase(self):
        assert ExactValue("Lake Tahoe").matches("Greater Lake Tahoe Area")

    def test_numeric_match_int_vs_float(self):
        assert ExactValue(497).matches(497.0)
        assert ExactValue(497.0).matches(497)
        assert not ExactValue(497).matches(498)

    def test_null_never_matches(self):
        assert not ExactValue("x").matches(None)

    def test_null_exact_value_rejected(self):
        with pytest.raises(ConstraintError):
            ExactValue(None)

    def test_resolution_is_high(self):
        assert ExactValue("x").resolution is Resolution.HIGH

    def test_seed_values(self):
        assert ExactValue("California").seed_values() == ["California"]

    def test_equality_and_hash(self):
        assert ExactValue("a") == ExactValue("a")
        assert hash(ExactValue("a")) == hash(ExactValue("a"))
        assert ExactValue("a") != ExactValue("b")
        assert ExactValue("a") != OneOf(["a"])


class TestOneOf:
    def test_matches_any_member(self):
        constraint = OneOf(["California", "Nevada"])
        assert constraint.matches("Nevada")
        assert constraint.matches("california")
        assert not constraint.matches("Oregon")

    def test_resolution_medium_for_true_disjunction(self):
        assert OneOf(["a", "b"]).resolution is Resolution.MEDIUM
        assert OneOf(["a"]).resolution is Resolution.HIGH

    def test_requires_at_least_one_value(self):
        with pytest.raises(ConstraintError):
            OneOf([])
        with pytest.raises(ConstraintError):
            OneOf([None])

    def test_seed_values_and_describe(self):
        constraint = OneOf(["California", "Nevada"])
        assert constraint.seed_values() == ["California", "Nevada"]
        assert constraint.describe() == "California || Nevada"


class TestRange:
    def test_inclusive_bounds(self):
        constraint = Range(400, 600)
        assert constraint.matches(400)
        assert constraint.matches(600)
        assert constraint.matches(497.0)
        assert not constraint.matches(399.99)

    def test_exclusive_bounds(self):
        constraint = Range(0, 10, low_inclusive=False, high_inclusive=False)
        assert not constraint.matches(0)
        assert not constraint.matches(10)
        assert constraint.matches(5)

    def test_open_ended_ranges(self):
        assert Range(low=100).matches(1_000_000)
        assert not Range(low=100).matches(99)
        assert Range(high=10).matches(-5)

    def test_requires_some_bound(self):
        with pytest.raises(ConstraintError):
            Range()

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConstraintError):
            Range(10, 5)

    def test_non_numeric_cell_does_not_match(self):
        assert not Range(0, 10).matches("five")
        assert not Range(0, 10).matches(None)

    def test_resolution_medium(self):
        assert Range(0, 1).resolution is Resolution.MEDIUM


class TestPredicate:
    def test_comparison_operators(self):
        assert Predicate(">=", 0).matches(0)
        assert Predicate(">", 0).matches(1)
        assert not Predicate(">", 0).matches(0)
        assert Predicate("<=", 10).matches(10)
        assert Predicate("<", 10).matches(9.5)
        assert Predicate("!=", 5).matches(6)
        assert Predicate("==", 5).matches(5)

    def test_equals_alias(self):
        assert Predicate("=", "x").op == "=="

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConstraintError):
            Predicate("~", 5)

    def test_type_mismatch_is_false_not_error(self):
        assert not Predicate(">=", 0).matches("abc")

    def test_resolution(self):
        assert Predicate("==", 5).resolution is Resolution.HIGH
        assert Predicate(">=", 5).resolution is Resolution.MEDIUM

    def test_seed_values_only_for_equality(self):
        assert Predicate("==", 5).seed_values() == [5]
        assert Predicate(">=", 5).seed_values() == []


class TestCompositeConstraints:
    def test_conjunction_requires_all(self):
        constraint = Conjunction([Predicate(">=", 0), Predicate("<", 100)])
        assert constraint.matches(50)
        assert not constraint.matches(150)
        assert not constraint.matches(-1)

    def test_disjunction_requires_any(self):
        constraint = Disjunction([ExactValue("California"), Range(0, 10)])
        assert constraint.matches("California")
        assert constraint.matches(5)
        assert not constraint.matches("Oregon")

    def test_composites_require_two_parts(self):
        with pytest.raises(ConstraintError):
            Conjunction([ExactValue("x")])
        with pytest.raises(ConstraintError):
            Disjunction([ExactValue("x")])

    def test_conjunction_resolution_is_strictest_part(self):
        constraint = Conjunction([ExactValue("x"), Predicate(">=", 0)])
        assert constraint.resolution is Resolution.HIGH

    def test_disjunction_resolution_is_loosest_part(self):
        constraint = Disjunction([ExactValue("x"), Range(0, 1)])
        assert constraint.resolution is Resolution.MEDIUM

    def test_seed_values_are_collected_from_parts(self):
        constraint = Disjunction([ExactValue("a"), ExactValue("b")])
        assert constraint.seed_values() == ["a", "b"]

    def test_describe_round_trips_shape(self):
        constraint = Conjunction([Predicate(">=", 0), Predicate("<=", 10)])
        assert constraint.describe() == ">= 0 && <= 10"


class TestAnyValue:
    def test_matches_everything_but_null(self):
        constraint = AnyValue()
        assert constraint.matches("x")
        assert constraint.matches(0)
        assert not constraint.matches(None)

    def test_resolution_low(self):
        assert AnyValue().resolution is Resolution.LOW

    def test_describe(self):
        assert AnyValue().describe() == "*"


class TestConstraintIdentityTypes:
    """Constraint identity must not collide across Python's cross-type
    equalities (True == 1, 1 == 1.0): matching semantics differ, and the
    keys feed hashing and the executor's existence-memo cache."""

    def test_bool_and_int_exact_values_are_distinct(self):
        assert ExactValue(1) != ExactValue(True)
        assert hash(ExactValue(1)) != hash(ExactValue(True))
        # Sanity: their matching semantics genuinely differ.
        assert ExactValue(1).matches(1)
        assert not ExactValue(True).matches(1)

    def test_int_and_float_exact_values_are_distinct(self):
        assert ExactValue(1) != ExactValue(1.0)
        # They differ on text cells: "1" vs "1.0" keyword matching.
        assert ExactValue(1).matches("1")
        assert not ExactValue(1.0).matches("1")

    def test_one_of_and_predicate_keys_are_typed(self):
        assert OneOf([1, 2]) != OneOf([True, 2])
        assert Predicate("==", 1) != Predicate("==", True)

    def test_equal_constraints_still_compare_equal(self):
        assert ExactValue(1) == ExactValue(1)
        assert OneOf(["a", "b"]) == OneOf(["a", "b"])
        assert hash(Range(1, 5)) == hash(Range(1, 5))
