"""Tests for user-defined metadata constraints (the paper's §2.1 extension)."""

from __future__ import annotations

import pytest

from repro.constraints.metadata import (
    MetadataConjunction,
    MetadataField,
    MetadataPredicate,
    UserDefinedConstraint,
)
from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue
from repro.dataset.schema import ColumnRef
from repro.errors import ConstraintError


class TestUserDefinedConstraint:
    def test_requires_a_callable_and_a_name(self):
        with pytest.raises(ConstraintError):
            UserDefinedConstraint("not callable")  # type: ignore[arg-type]
        with pytest.raises(ConstraintError):
            UserDefinedConstraint(lambda stats: True, name="  ")

    def test_matches_delegates_to_the_predicate(self, company_prism):
        stats = company_prism.catalog.stats(ColumnRef("Employee", "Salary"))
        mostly_unique = UserDefinedConstraint(
            lambda s: s.distinct_count >= 0.9 * s.non_null_count,
            name="mostly_unique",
        )
        assert mostly_unique.matches(stats)
        never = UserDefinedConstraint(lambda s: False, name="never")
        assert not never.matches(stats)

    def test_raising_predicate_is_wrapped(self, company_prism):
        stats = company_prism.catalog.stats(ColumnRef("Employee", "Salary"))
        broken = UserDefinedConstraint(lambda s: 1 / 0, name="broken")
        with pytest.raises(ConstraintError):
            broken.matches(stats)

    def test_describe_and_equality(self):
        predicate = lambda s: True  # noqa: E731 - identity matters for the key
        first = UserDefinedConstraint(predicate, name="always")
        second = UserDefinedConstraint(predicate, name="always")
        assert first.describe() == "UDF(always)"
        assert first == second
        assert first != UserDefinedConstraint(lambda s: True, name="always")

    def test_composes_with_builtin_predicates(self, company_prism):
        stats = company_prism.catalog.stats(ColumnRef("Department", "Budget"))
        constraint = MetadataConjunction(
            [
                MetadataPredicate(MetadataField.DATA_TYPE, "==", "decimal"),
                UserDefinedConstraint(lambda s: s.null_fraction == 0.0,
                                      name="no_nulls"),
            ]
        )
        assert constraint.matches(stats)


class TestUserDefinedConstraintInDiscovery:
    def test_udf_restricts_related_columns(self, company_prism):
        # 'looks like a yearly salary': numeric, always above 50k.
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Alice Chen"), None])
        spec.set_metadata(
            1,
            UserDefinedConstraint(
                lambda s: s.is_numeric and s.min_value is not None
                and float(s.min_value) > 50_000,
                name="salary_like",
            ),
        )
        result = company_prism.discover(spec)
        assert result.num_queries >= 1
        # Every mapped column must genuinely satisfy the user-defined
        # predicate (salaries and the two budget columns do; ages, hours and
        # all text columns do not).
        allowed = {
            ColumnRef("Employee", "Salary"),
            ColumnRef("Department", "Budget"),
            ColumnRef("Project", "Budget"),
        }
        mapped = {query.projections[1] for query in result.queries}
        assert mapped <= allowed
        assert ColumnRef("Employee", "Salary") in mapped

    def test_unsatisfiable_udf_yields_no_queries(self, company_prism):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Alice Chen"), None])
        spec.set_metadata(
            1, UserDefinedConstraint(lambda s: False, name="nothing_matches")
        )
        result = company_prism.discover(spec)
        assert result.is_empty
