"""Unit tests for mapping specifications."""

from __future__ import annotations

import pytest

from repro.constraints.metadata import MetadataField, MetadataPredicate
from repro.constraints.resolution import Resolution
from repro.constraints.sample import SampleConstraint
from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue, OneOf
from repro.errors import SpecError


def metadata_decimal() -> MetadataPredicate:
    return MetadataPredicate(MetadataField.DATA_TYPE, "==", "decimal")


class TestConstruction:
    def test_requires_positive_width(self):
        with pytest.raises(SpecError):
            MappingSpec(0)

    def test_add_sample_checks_width(self):
        spec = MappingSpec(3)
        with pytest.raises(SpecError):
            spec.add_sample(SampleConstraint([ExactValue("a")]))

    def test_add_sample_requires_sample_constraint(self):
        spec = MappingSpec(1)
        with pytest.raises(SpecError):
            spec.add_sample("not a sample")  # type: ignore[arg-type]

    def test_add_sample_cells_convenience(self):
        spec = MappingSpec(2).add_sample_cells([ExactValue("a"), None])
        assert len(spec.samples) == 1

    def test_set_metadata_validates_position(self):
        spec = MappingSpec(2)
        with pytest.raises(SpecError):
            spec.set_metadata(5, metadata_decimal())
        with pytest.raises(SpecError):
            spec.set_metadata(-1, metadata_decimal())

    def test_set_metadata_requires_metadata_constraint(self):
        spec = MappingSpec(2)
        with pytest.raises(SpecError):
            spec.set_metadata(0, ExactValue("a"))  # type: ignore[arg-type]

    def test_constructor_accepts_samples_and_metadata(self):
        spec = MappingSpec(
            2,
            samples=[SampleConstraint([ExactValue("a"), None])],
            metadata={1: metadata_decimal()},
        )
        assert len(spec.samples) == 1
        assert spec.metadata_for(1) is not None


class TestIntrospection:
    def test_value_constraints_for_position(self):
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("a"), None])
        spec.add_sample_cells([OneOf(["b", "c"]), ExactValue("d")])
        assert len(spec.value_constraints_for(0)) == 2
        assert len(spec.value_constraints_for(1)) == 1

    def test_constrained_positions_unions_samples_and_metadata(self):
        spec = MappingSpec(3)
        spec.add_sample_cells([ExactValue("a"), None, None])
        spec.set_metadata(2, metadata_decimal())
        assert spec.constrained_positions() == [0, 2]

    def test_resolution_reflects_loosest_constraint(self):
        exact_only = MappingSpec(1).add_sample_cells([ExactValue("a")])
        assert exact_only.resolution is Resolution.HIGH
        with_metadata = MappingSpec(2).add_sample_cells([ExactValue("a"), None])
        with_metadata.set_metadata(1, metadata_decimal())
        assert with_metadata.resolution is Resolution.LOW

    def test_empty_spec_resolution_is_low(self):
        assert MappingSpec(1).resolution is Resolution.LOW

    def test_describe_lists_everything(self):
        spec = MappingSpec(2).add_sample_cells([ExactValue("a"), None])
        spec.set_metadata(1, metadata_decimal())
        text = spec.describe()
        assert "target columns: 2" in text
        assert "sample 1" in text
        assert "metadata[col 1]" in text


class TestValidation:
    def test_empty_spec_fails_validation(self):
        with pytest.raises(SpecError):
            MappingSpec(2).validate()

    def test_spec_with_sample_passes(self):
        spec = MappingSpec(2).add_sample_cells([ExactValue("a"), None])
        spec.validate()

    def test_spec_with_only_metadata_passes(self):
        spec = MappingSpec(1)
        spec.set_metadata(0, metadata_decimal())
        spec.validate()

    def test_has_constraints(self):
        assert not MappingSpec(1).has_constraints()
        assert MappingSpec(1).add_sample_cells([ExactValue("x")]).has_constraints()
