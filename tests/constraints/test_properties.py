"""Property-based tests (hypothesis) for the constraint language.

These pin down the invariants the discovery pipeline relies on: exact
constraints always match their own value, disjunctions behave like unions,
ranges contain their endpoints and everything in between, and the textual
parser round-trips through ``describe()``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.parser import parse_value_constraint
from repro.constraints.sample import SampleConstraint
from repro.constraints.values import ExactValue, OneOf, Predicate, Range

# Text that survives the demo's cell syntax unambiguously: no reserved
# characters (|, &, brackets, quotes), not purely numeric-looking, no
# leading/trailing whitespace.
_keyword = st.from_regex(r"[A-Za-z][A-Za-z ]{0,18}[A-Za-z]", fullmatch=True)
_numbers = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(min_value=-10**6, max_value=10**6,
              allow_nan=False, allow_infinity=False),
)


class TestExactValueProperties:
    @given(_keyword)
    def test_exact_text_matches_itself(self, keyword):
        assert ExactValue(keyword).matches(keyword)

    @given(_keyword)
    def test_exact_text_matches_case_variants(self, keyword):
        assert ExactValue(keyword).matches(keyword.upper())
        assert ExactValue(keyword.lower()).matches(keyword)

    @given(_numbers)
    def test_exact_number_matches_itself(self, number):
        assert ExactValue(number).matches(number)

    @given(_numbers)
    def test_exact_number_never_matches_none(self, number):
        assert not ExactValue(number).matches(None)


class TestOneOfProperties:
    @given(st.lists(_keyword, min_size=1, max_size=5), st.data())
    def test_oneof_matches_every_member(self, values, data):
        constraint = OneOf(values)
        chosen = data.draw(st.sampled_from(values))
        assert constraint.matches(chosen)

    @given(st.lists(_numbers, min_size=2, max_size=5))
    def test_oneof_is_union_of_exacts(self, values):
        constraint = OneOf(values)
        for value in values:
            assert constraint.matches(value) == any(
                ExactValue(v).matches(value) for v in values
            )


class TestRangeProperties:
    @given(_numbers, _numbers)
    def test_range_contains_endpoints_and_midpoint(self, a, b):
        low, high = sorted((a, b))
        constraint = Range(low, high)
        assert constraint.matches(low)
        assert constraint.matches(high)
        assert constraint.matches((low + high) / 2)

    @given(_numbers, _numbers, _numbers)
    def test_range_agrees_with_interval_arithmetic(self, a, b, probe):
        low, high = sorted((a, b))
        constraint = Range(low, high)
        assert constraint.matches(probe) == (low <= probe <= high)

    @given(_numbers, _numbers)
    def test_predicate_pair_equivalent_to_range(self, a, b):
        low, high = sorted((a, b))
        ge = Predicate(">=", low)
        le = Predicate("<=", high)
        probe = (low + high) / 2
        assert (ge.matches(probe) and le.matches(probe)) == Range(low, high).matches(probe)


class TestParserRoundTrip:
    @given(_keyword)
    def test_keyword_round_trips(self, keyword):
        constraint = parse_value_constraint(keyword)
        assert isinstance(constraint, ExactValue)
        assert constraint.matches(keyword)

    @given(st.lists(_keyword, min_size=2, max_size=4))
    @settings(max_examples=50)
    def test_disjunction_round_trips(self, keywords):
        text = " || ".join(keywords)
        constraint = parse_value_constraint(text)
        assert isinstance(constraint, OneOf)
        for keyword in keywords:
            assert constraint.matches(keyword)
        reparsed = parse_value_constraint(constraint.describe())
        for keyword in keywords:
            assert reparsed.matches(keyword)

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_range_text_round_trips(self, a, b):
        low, high = sorted((a, b))
        constraint = parse_value_constraint(f"[{low}, {high}]")
        assert isinstance(constraint, Range)
        assert constraint.matches(low) and constraint.matches(high)


class TestSampleProperties:
    @given(st.lists(_keyword, min_size=1, max_size=5))
    def test_sample_built_from_row_is_satisfied_by_it(self, row):
        sample = SampleConstraint.from_values(row)
        assert sample.satisfied_by_row(tuple(row))

    @given(st.lists(_keyword, min_size=2, max_size=5))
    def test_sample_restriction_preserves_satisfaction(self, row):
        sample = SampleConstraint.from_values(row)
        positions = list(range(0, len(row), 2))
        restricted = sample.restrict(positions)
        assert restricted.satisfied_by_row(tuple(row[i] for i in positions))
