"""Unit tests for metadata (column-level) constraints."""

from __future__ import annotations

import pytest

from repro.constraints.metadata import (
    MetadataConjunction,
    MetadataDisjunction,
    MetadataField,
    MetadataPredicate,
)
from repro.constraints.resolution import Resolution
from repro.dataset.catalog import ColumnStats
from repro.dataset.schema import ColumnRef
from repro.dataset.types import DataType
from repro.errors import ConstraintError


def make_stats(
    column: str = "Area",
    data_type: DataType = DataType.DECIMAL,
    min_value=0.5,
    max_value=58_030.0,
    max_text_length=None,
) -> ColumnStats:
    return ColumnStats(
        ref=ColumnRef("Lake", column),
        data_type=data_type,
        row_count=100,
        null_count=0,
        distinct_count=90,
        min_value=min_value,
        max_value=max_value,
        max_text_length=max_text_length,
    )


class TestMetadataField:
    def test_from_name_aliases(self):
        assert MetadataField.from_name("datatype") is MetadataField.DATA_TYPE
        assert MetadataField.from_name("ColumnName") is MetadataField.COLUMN_NAME
        assert MetadataField.from_name("MinValue") is MetadataField.MIN_VALUE
        assert MetadataField.from_name("max_value") is MetadataField.MAX_VALUE
        assert MetadataField.from_name("MaxTextLength") is MetadataField.MAX_LENGTH

    def test_unknown_field_raises(self):
        with pytest.raises(ConstraintError):
            MetadataField.from_name("Cardinality")


class TestDataTypePredicate:
    def test_matching_type(self):
        predicate = MetadataPredicate(MetadataField.DATA_TYPE, "==", "decimal")
        assert predicate.matches(make_stats())
        assert not predicate.matches(make_stats(data_type=DataType.TEXT))

    def test_int_column_satisfies_decimal_requirement(self):
        predicate = MetadataPredicate(MetadataField.DATA_TYPE, "==", "decimal")
        assert predicate.matches(make_stats(data_type=DataType.INT))

    def test_negation(self):
        predicate = MetadataPredicate(MetadataField.DATA_TYPE, "!=", "text")
        assert predicate.matches(make_stats())
        assert not predicate.matches(make_stats(data_type=DataType.TEXT))

    def test_only_equality_operators_allowed(self):
        with pytest.raises(ConstraintError):
            MetadataPredicate(MetadataField.DATA_TYPE, ">=", "decimal")

    def test_constant_accepts_datatype_instance(self):
        predicate = MetadataPredicate(MetadataField.DATA_TYPE, "==", DataType.TEXT)
        assert predicate.matches(make_stats(data_type=DataType.TEXT))


class TestColumnNamePredicate:
    def test_case_insensitive_equality(self):
        predicate = MetadataPredicate(MetadataField.COLUMN_NAME, "==", "area")
        assert predicate.matches(make_stats())
        assert not predicate.matches(make_stats(column="Depth"))

    def test_inequality(self):
        predicate = MetadataPredicate(MetadataField.COLUMN_NAME, "!=", "Depth")
        assert predicate.matches(make_stats())

    def test_range_operator_rejected(self):
        with pytest.raises(ConstraintError):
            MetadataPredicate(MetadataField.COLUMN_NAME, "<", "Area")


class TestBoundPredicates:
    def test_min_value(self):
        predicate = MetadataPredicate(MetadataField.MIN_VALUE, ">=", 0)
        assert predicate.matches(make_stats(min_value=0.5))
        assert not predicate.matches(make_stats(min_value=-3.0))

    def test_min_value_accepts_string_constant(self):
        predicate = MetadataPredicate(MetadataField.MIN_VALUE, ">=", "0")
        assert predicate.matches(make_stats(min_value=0.5))

    def test_max_value(self):
        predicate = MetadataPredicate(MetadataField.MAX_VALUE, "<=", 100_000)
        assert predicate.matches(make_stats())
        assert not predicate.matches(make_stats(max_value=200_000.0))

    def test_max_length(self):
        predicate = MetadataPredicate(MetadataField.MAX_LENGTH, "<=", 30)
        stats = make_stats(data_type=DataType.TEXT, max_text_length=20,
                           min_value="a", max_value="z")
        assert predicate.matches(stats)
        assert not predicate.matches(
            make_stats(data_type=DataType.TEXT, max_text_length=45,
                       min_value="a", max_value="z")
        )

    def test_missing_statistic_never_matches(self):
        predicate = MetadataPredicate(MetadataField.MIN_VALUE, ">=", 0)
        assert not predicate.matches(make_stats(min_value=None, max_value=None))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConstraintError):
            MetadataPredicate(MetadataField.MIN_VALUE, "~", 0)


class TestComposites:
    def test_conjunction(self):
        constraint = MetadataConjunction(
            [
                MetadataPredicate(MetadataField.DATA_TYPE, "==", "decimal"),
                MetadataPredicate(MetadataField.MIN_VALUE, ">=", 0),
            ]
        )
        assert constraint.matches(make_stats())
        assert not constraint.matches(make_stats(min_value=-1.0))

    def test_disjunction(self):
        constraint = MetadataDisjunction(
            [
                MetadataPredicate(MetadataField.COLUMN_NAME, "==", "Area"),
                MetadataPredicate(MetadataField.COLUMN_NAME, "==", "Depth"),
            ]
        )
        assert constraint.matches(make_stats(column="Depth"))
        assert not constraint.matches(make_stats(column="Altitude"))

    def test_composites_require_two_parts(self):
        predicate = MetadataPredicate(MetadataField.MIN_VALUE, ">=", 0)
        with pytest.raises(ConstraintError):
            MetadataConjunction([predicate])
        with pytest.raises(ConstraintError):
            MetadataDisjunction([predicate])

    def test_resolution_is_low(self):
        predicate = MetadataPredicate(MetadataField.MIN_VALUE, ">=", 0)
        assert predicate.resolution is Resolution.LOW

    def test_describe_matches_demo_syntax(self):
        constraint = MetadataConjunction(
            [
                MetadataPredicate(MetadataField.DATA_TYPE, "==", "decimal"),
                MetadataPredicate(MetadataField.MIN_VALUE, ">=", 0),
            ]
        )
        assert constraint.describe() == "DataType == 'decimal' AND MinValue >= 0"

    def test_equality_and_hash(self):
        first = MetadataPredicate(MetadataField.MIN_VALUE, ">=", 0)
        second = MetadataPredicate(MetadataField.MIN_VALUE, ">=", 0)
        assert first == second
        assert hash(first) == hash(second)
