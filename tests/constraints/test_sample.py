"""Unit tests for sample constraints (rows of value constraints)."""

from __future__ import annotations

import pytest

from repro.constraints.resolution import Resolution
from repro.constraints.sample import SampleConstraint
from repro.constraints.values import AnyValue, ExactValue, OneOf, Range
from repro.errors import ConstraintError


class TestConstruction:
    def test_from_values_builds_exact_cells(self):
        sample = SampleConstraint.from_values(["California", "Lake Tahoe", None])
        assert sample.width == 3
        assert isinstance(sample.cell(0), ExactValue)
        assert sample.cell(2) is None

    def test_requires_at_least_one_constrained_cell(self):
        with pytest.raises(ConstraintError):
            SampleConstraint([None, None])
        with pytest.raises(ConstraintError):
            SampleConstraint([AnyValue(), None])
        with pytest.raises(ConstraintError):
            SampleConstraint([])

    def test_rejects_non_constraint_cells(self):
        with pytest.raises(ConstraintError):
            SampleConstraint(["raw string"])  # type: ignore[list-item]

    def test_constrained_positions(self):
        sample = SampleConstraint([ExactValue("a"), None, Range(0, 1)])
        assert sample.constrained_positions() == [0, 2]


class TestMatching:
    def test_satisfied_by_row_checks_each_cell(self):
        sample = SampleConstraint(
            [OneOf(["California", "Nevada"]), ExactValue("Lake Tahoe"), None]
        )
        assert sample.satisfied_by_row(("Nevada", "Lake Tahoe", 497.0))
        assert not sample.satisfied_by_row(("Oregon", "Lake Tahoe", 497.0))
        assert not sample.satisfied_by_row(("Nevada", "Crater Lake", 53.2))

    def test_unconstrained_cells_accept_anything_including_null(self):
        sample = SampleConstraint([ExactValue("a"), None])
        assert sample.satisfied_by_row(("a", None))

    def test_row_width_mismatch_raises(self):
        sample = SampleConstraint([ExactValue("a"), None])
        with pytest.raises(ConstraintError):
            sample.satisfied_by_row(("a",))

    def test_satisfied_by_result_requires_only_one_matching_row(self):
        sample = SampleConstraint([ExactValue("California"), ExactValue("Lake Tahoe")])
        rows = [
            ("Oregon", "Crater Lake"),
            ("California", "Lake Tahoe"),
            ("Montana", "Fort Peck Lake"),
        ]
        assert sample.satisfied_by_result(rows)
        assert not sample.satisfied_by_result(rows[:1])
        assert not sample.satisfied_by_result([])


class TestRestriction:
    def test_restrict_keeps_selected_positions(self):
        sample = SampleConstraint([ExactValue("a"), ExactValue("b"), Range(0, 1)])
        restricted = sample.restrict([0, 2])
        assert restricted.width == 2
        assert restricted.cell(0) == ExactValue("a")
        assert isinstance(restricted.cell(1), Range)

    def test_restrict_to_unconstrained_positions_raises(self):
        sample = SampleConstraint([ExactValue("a"), None])
        with pytest.raises(ConstraintError):
            sample.restrict([1])


class TestResolutionAndIntrospection:
    def test_complete_exact_sample_is_high_resolution(self):
        sample = SampleConstraint([ExactValue("a"), ExactValue("b")])
        assert sample.resolution is Resolution.HIGH
        assert sample.is_complete

    def test_incomplete_sample_is_at_most_medium(self):
        sample = SampleConstraint([ExactValue("a"), None])
        assert sample.resolution is Resolution.MEDIUM
        assert not sample.is_complete

    def test_loosest_cell_dominates(self):
        sample = SampleConstraint([ExactValue("a"), Range(0, 1)])
        assert sample.resolution is Resolution.MEDIUM

    def test_describe_and_equality(self):
        sample = SampleConstraint([ExactValue("a"), None])
        assert sample.describe() == "a | "
        assert sample == SampleConstraint([ExactValue("a"), None])
        assert hash(sample) == hash(SampleConstraint([ExactValue("a"), None]))
