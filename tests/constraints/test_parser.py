"""Unit tests for the textual constraint parser (Figure 1 syntax)."""

from __future__ import annotations

import pytest

from repro.constraints.metadata import (
    MetadataConjunction,
    MetadataDisjunction,
    MetadataField,
    MetadataPredicate,
)
from repro.constraints.parser import (
    parse_literal,
    parse_metadata_constraint,
    parse_value_constraint,
)
from repro.constraints.values import (
    Conjunction,
    ExactValue,
    OneOf,
    Predicate,
    Range,
)
from repro.dataset.types import DataType
from repro.errors import ConstraintParseError


class TestParseLiteral:
    def test_quoted_strings_keep_content(self):
        assert parse_literal("'decimal'") == "decimal"
        assert parse_literal('"Lake Tahoe"') == "Lake Tahoe"

    def test_numbers_are_converted(self):
        assert parse_literal("42") == 42
        assert parse_literal("-3.5") == -3.5
        assert isinstance(parse_literal("42"), int)

    def test_plain_text_passes_through(self):
        assert parse_literal("Lake Tahoe") == "Lake Tahoe"


class TestParseValueConstraint:
    def test_blank_and_wildcard_mean_unconstrained(self):
        assert parse_value_constraint(None) is None
        assert parse_value_constraint("") is None
        assert parse_value_constraint("   ") is None
        assert parse_value_constraint("*") is None
        assert parse_value_constraint("?") is None

    def test_plain_keyword_is_exact(self):
        constraint = parse_value_constraint("Lake Tahoe")
        assert isinstance(constraint, ExactValue)
        assert constraint.value == "Lake Tahoe"

    def test_numeric_keyword_is_exact_number(self):
        constraint = parse_value_constraint("497")
        assert isinstance(constraint, ExactValue)
        assert constraint.value == 497

    def test_disjunction_of_keywords(self):
        constraint = parse_value_constraint("California || Nevada")
        assert isinstance(constraint, OneOf)
        assert constraint.values == ("California", "Nevada")

    def test_disjunction_of_three(self):
        constraint = parse_value_constraint("a || b || c")
        assert isinstance(constraint, OneOf)
        assert len(constraint.values) == 3

    def test_bracket_range(self):
        constraint = parse_value_constraint("[400, 600]")
        assert isinstance(constraint, Range)
        assert constraint.low == 400 and constraint.high == 600
        assert constraint.low_inclusive and constraint.high_inclusive

    def test_half_open_range(self):
        constraint = parse_value_constraint("(0, 100]")
        assert isinstance(constraint, Range)
        assert not constraint.low_inclusive
        assert constraint.high_inclusive

    def test_open_ended_range(self):
        constraint = parse_value_constraint("[100, ]")
        assert isinstance(constraint, Range)
        assert constraint.low == 100 and constraint.high is None

    def test_dotdot_range(self):
        constraint = parse_value_constraint("400 .. 600")
        assert isinstance(constraint, Range)
        assert constraint.matches(500)

    def test_comparison_predicate(self):
        constraint = parse_value_constraint(">= 0")
        assert isinstance(constraint, Predicate)
        assert constraint.matches(0) and not constraint.matches(-1)

    def test_conjunction_of_predicates(self):
        constraint = parse_value_constraint(">= 0 && < 100")
        assert isinstance(constraint, Conjunction)
        assert constraint.matches(50) and not constraint.matches(150)

    def test_disjunction_of_mixed_terms(self):
        constraint = parse_value_constraint("California || >= 1000")
        assert constraint.matches("California")
        assert constraint.matches(2_000)
        assert not constraint.matches(500)

    def test_empty_range_rejected(self):
        with pytest.raises(ConstraintParseError):
            parse_value_constraint("[ , ]")

    def test_describe_round_trip_for_disjunction(self):
        text = "California || Nevada"
        assert parse_value_constraint(text).describe() == text


class TestParseMetadataConstraint:
    def test_blank_means_unconstrained(self):
        assert parse_metadata_constraint(None) is None
        assert parse_metadata_constraint("  ") is None

    def test_paper_example(self):
        constraint = parse_metadata_constraint("DataType=='decimal' AND MinValue>='0'")
        assert isinstance(constraint, MetadataConjunction)
        parts = constraint.parts
        assert isinstance(parts[0], MetadataPredicate)
        assert parts[0].field is MetadataField.DATA_TYPE
        assert parts[0].constant is DataType.DECIMAL
        assert parts[1].field is MetadataField.MIN_VALUE

    def test_single_predicate(self):
        constraint = parse_metadata_constraint("ColumnName == 'Area'")
        assert isinstance(constraint, MetadataPredicate)
        assert constraint.field is MetadataField.COLUMN_NAME
        assert constraint.constant == "Area"

    def test_or_with_lower_precedence_than_and(self):
        constraint = parse_metadata_constraint(
            "DataType=='text' AND MaxLength<=40 OR ColumnName=='Area'"
        )
        assert isinstance(constraint, MetadataDisjunction)
        assert isinstance(constraint.parts[0], MetadataConjunction)
        assert isinstance(constraint.parts[1], MetadataPredicate)

    def test_symbolic_logical_operators(self):
        constraint = parse_metadata_constraint("MinValue>=0 && MaxValue<=100")
        assert isinstance(constraint, MetadataConjunction)

    def test_case_insensitive_keywords(self):
        constraint = parse_metadata_constraint("minvalue >= 0 and maxvalue <= 10")
        assert isinstance(constraint, MetadataConjunction)

    def test_numeric_constants_are_parsed(self):
        constraint = parse_metadata_constraint("MaxLength <= 40")
        assert constraint.constant == 40

    def test_unknown_field_raises(self):
        with pytest.raises(ConstraintParseError):
            parse_metadata_constraint("Cardinality >= 10")

    def test_garbage_raises(self):
        with pytest.raises(ConstraintParseError):
            parse_metadata_constraint("DataType decimal")
