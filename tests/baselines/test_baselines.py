"""Unit tests for the MWeaver-style and Filter baselines."""

from __future__ import annotations

import pytest

from repro.baselines.filter_baseline import FilterBaseline
from repro.baselines.mweaver import MWeaverBaseline, UnsupportedSpecError
from repro.constraints.metadata import MetadataField, MetadataPredicate
from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue, OneOf, Range


@pytest.fixture(scope="module")
def mweaver(company_db_session):
    return MWeaverBaseline(company_db_session)


@pytest.fixture(scope="module")
def filter_baseline(company_db_session):
    return FilterBaseline(company_db_session)


def exact_spec() -> MappingSpec:
    spec = MappingSpec(2)
    spec.add_sample_cells([ExactValue("Engineering"), ExactValue("Query Optimizer")])
    return spec


class TestMWeaverSupport:
    def test_exact_complete_spec_is_supported(self, mweaver):
        assert mweaver.supports(exact_spec())
        mweaver.check_supported(exact_spec())

    def test_incomplete_sample_rejected(self, mweaver):
        spec = MappingSpec(2).add_sample_cells([ExactValue("Engineering"), None])
        assert not mweaver.supports(spec)
        with pytest.raises(UnsupportedSpecError):
            mweaver.check_supported(spec)

    def test_disjunction_rejected(self, mweaver):
        spec = MappingSpec(2).add_sample_cells(
            [OneOf(["Engineering", "Research"]), ExactValue("Query Optimizer")]
        )
        with pytest.raises(UnsupportedSpecError):
            mweaver.check_supported(spec)

    def test_range_rejected(self, mweaver):
        spec = MappingSpec(1).add_sample_cells([Range(0, 10)])
        with pytest.raises(UnsupportedSpecError):
            mweaver.check_supported(spec)

    def test_metadata_rejected(self, mweaver):
        spec = exact_spec()
        spec.set_metadata(
            0, MetadataPredicate(MetadataField.DATA_TYPE, "==", "text")
        )
        with pytest.raises(UnsupportedSpecError):
            mweaver.check_supported(spec)

    def test_spec_without_samples_rejected(self, mweaver):
        with pytest.raises(UnsupportedSpecError):
            mweaver.check_supported(MappingSpec(1))

    def test_discover_refuses_unsupported_spec(self, mweaver):
        spec = MappingSpec(2).add_sample_cells([ExactValue("Engineering"), None])
        with pytest.raises(UnsupportedSpecError):
            mweaver.discover(spec)


class TestMWeaverDiscovery:
    def test_exact_spec_recovers_mapping(self, mweaver):
        result = mweaver.discover(exact_spec())
        assert result.num_queries >= 1
        assert result.stats.scheduler_name == "naive"

    def test_agrees_with_prism_on_exact_specs(self, mweaver, company_prism):
        baseline_sqls = sorted(mweaver.discover(exact_spec()).sql())
        prism_sqls = sorted(company_prism.discover(exact_spec()).sql())
        assert baseline_sqls == prism_sqls

    def test_database_property(self, mweaver, company_db_session):
        assert mweaver.database is company_db_session


class TestFilterBaseline:
    def test_supports_multiresolution_specs(self, filter_baseline):
        spec = MappingSpec(2)
        spec.add_sample_cells(
            [OneOf(["Engineering", "Research"]), ExactValue("Query Optimizer")]
        )
        result = filter_baseline.discover(spec)
        assert result.num_queries >= 1
        assert result.stats.scheduler_name == "filter"

    def test_agrees_with_prism_results(self, filter_baseline, company_prism):
        spec = exact_spec()
        assert sorted(filter_baseline.discover(spec).sql()) == sorted(
            company_prism.discover(spec).sql()
        )

    def test_database_property(self, filter_baseline, company_db_session):
        assert filter_baseline.database is company_db_session
