"""Smoke tests: every shipped example script runs to completion.

The examples double as executable documentation; these tests keep them in
sync with the public API.  Each example is executed in-process with its
``main()`` entry point.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

_EXAMPLES = [
    "quickstart.py",
    "imdb_actors.py",
    "nba_roster.py",
    "custom_database.py",
    "concurrent_service.py",
    "incremental_updates.py",
]


def _load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("script", _EXAMPLES)
def test_example_runs_to_completion(script, capsys):
    module = _load_example(script)
    module.main()
    output = capsys.readouterr().out
    assert "satisfying" in output or "mappings" in output


def test_examples_directory_contains_the_documented_scripts():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart.py", "mondial_lakes.py", "imdb_actors.py",
            "nba_roster.py", "custom_database.py",
            "scheduler_comparison.py", "concurrent_service.py",
            "incremental_updates.py"} <= names
