"""Golden refresh/rebuild-equivalence tests for incremental maintenance.

Following the equivalence-coverage argument of *Test Coverage for Network
Configurations* (PAPERS.md): an incremental update path is only
trustworthy when it is continuously proven equivalent to the
from-scratch path it replaces.  These tests append randomized batches to
a database, refresh the cached bundle via the delta path, and assert the
refreshed artifacts match a cold build of the grown database — exactly
for every integer/string statistic, to float equality for the running
numeric moments, and **bit-for-bit on discovery results**.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue
from repro.dataset.schema import Column
from repro.dataset.types import DataType
from repro.discovery.engine import Prism
from repro.service import ArtifactKey, ArtifactStore
from tests.conftest import build_company_database

_FIRST = ["Ada", "Grace", "Alan", "Edsger", "Barbara", "Donald", "Tony",
          "Radia", "Lynn", "Ken"]
_LAST = ["Lovelace", "Hopper", "Turing", "Dijkstra", "Liskov", "Knuth",
         "Hoare", "Perlman", "Conway", "Thompson"]
_DEPARTMENTS = ["Engineering", "Marketing", "Research", "Sales"]
_CITIES = ["Ann Arbor", "Detroit", "Chicago", "Flint", "Lansing"]


def _append_random_batch(rng: random.Random, database, max_rows: int = 4) -> int:
    """Append a small random batch across random tables; returns rows added."""
    added = 0
    for _ in range(rng.randint(1, max_rows)):
        table_name = rng.choice(
            ["Department", "Employee", "Project", "Assignment"]
        )
        table = database.table(table_name)
        if table_name == "Department":
            table.insert((
                f"Dept{rng.randrange(10_000)}",
                rng.choice(_CITIES),
                float(rng.randrange(50, 2_000) * 1_000),
            ))
        elif table_name == "Employee":
            table.insert((
                1_000 + rng.randrange(1_000_000),
                f"{rng.choice(_FIRST)} {rng.choice(_LAST)}",
                rng.choice(_DEPARTMENTS),
                float(rng.randrange(40, 200) * 1_000),
                rng.randrange(21, 70),
            ))
        elif table_name == "Project":
            table.insert((
                f"P{rng.randrange(100_000)}",
                f"{rng.choice(_LAST)} initiative",
                float(rng.randrange(10, 900) * 1_000),
            ))
        else:
            table.insert((
                rng.randrange(1, 7),
                rng.choice(["P100", "P200", "P300"]),
                rng.randrange(1, 40),
            ))
        added += 1
    return added


def _assert_indexes_equal(refreshed, cold):
    """Term → posting-multiset equality (list order is never observed)."""
    for attribute in ("_exact", "_tokens"):
        got = {
            term: sorted((p.table, p.column, p.row_index) for p in postings)
            for term, postings in getattr(refreshed, attribute).items()
            if postings
        }
        want = {
            term: sorted((p.table, p.column, p.row_index) for p in postings)
            for term, postings in getattr(cold, attribute).items()
            if postings
        }
        assert got == want
    assert refreshed.indexed_cells == cold.indexed_cells
    assert refreshed.num_terms == cold.num_terms


def _assert_catalogs_equal(refreshed, cold):
    assert set(refreshed.columns()) == set(cold.columns())
    for ref in cold.columns():
        got, want = refreshed.stats(ref), cold.stats(ref)
        for field in ("data_type", "row_count", "null_count",
                      "distinct_count", "min_value", "max_value",
                      "max_text_length"):
            assert getattr(got, field) == getattr(want, field), (ref, field)
        # The running moments may differ from the cold two-pass by
        # floating-point rounding only.
        for field in ("mean", "stddev"):
            got_value, want_value = getattr(got, field), getattr(want, field)
            assert (got_value is None) == (want_value is None), (ref, field)
            if got_value is not None:
                assert got_value == pytest.approx(want_value, rel=1e-12,
                                                 abs=1e-9), (ref, field)
        # Sketches must survive the delta fold: HLL registers fold to
        # exactly the cold-rebuild state; Bloom bits do too whenever the
        # cold build sizes the filter the same way (sizing is fixed at
        # build time from the then-current distinct count, so a rebuild
        # over a grown column may legitimately pick a larger filter).
        got_sketches = refreshed.sketches(ref)
        want_sketches = cold.sketches(ref)
        assert (got_sketches is None) == (want_sketches is None), ref
        if got_sketches is not None:
            assert got_sketches.hll == want_sketches.hll, ref
            assert (got_sketches.bloom is None) == \
                (want_sketches.bloom is None), ref
            if (
                want_sketches.bloom is not None
                and got_sketches.bloom.num_bits == want_sketches.bloom.num_bits
            ):
                assert got_sketches.bloom == want_sketches.bloom, ref
            if (
                want_sketches.histogram is not None
                and got_sketches.histogram is not None
            ):
                assert got_sketches.histogram.total == \
                    want_sketches.histogram.total, ref


def _assert_models_equal(refreshed, cold):
    assert set(refreshed.relation_models) == set(cold.relation_models)
    for table_name, want in cold.relation_models.items():
        got = refreshed.relation_models[table_name]
        assert got.row_count == want.row_count
        for column_name, want_dist in want._distributions.items():
            got_dist = got._distributions[column_name]
            assert got_dist._frequencies == want_dist._frequencies, (
                table_name, column_name)
            assert got_dist._token_frequencies == want_dist._token_frequencies
            assert got_dist.row_count == want_dist.row_count
            assert got_dist.non_null_count == want_dist.non_null_count
            assert got_dist.null_fraction == want_dist.null_fraction
            if want_dist._numeric is None:
                assert got_dist._numeric is None
            else:
                # The multiset is what probabilities read; order differs.
                assert np.array_equal(np.sort(got_dist._numeric),
                                      np.sort(want_dist._numeric))
                assert np.array_equal(got_dist._histogram[0],
                                      want_dist._histogram[0])
                assert np.array_equal(got_dist._histogram[1],
                                      want_dist._histogram[1])
    assert set(refreshed.join_models) == set(cold.join_models)
    for key, want in cold.join_models.items():
        got = refreshed.join_models[key]
        for field in ("join_probability", "expected_join_size",
                      "child_match_fraction", "parent_match_fraction"):
            assert getattr(got, field) == getattr(want, field), (key, field)


def _assert_bundles_equivalent(refreshed, cold):
    _assert_indexes_equal(refreshed.index, cold.index)
    _assert_catalogs_equal(refreshed.catalog, cold.catalog)
    _assert_models_equal(refreshed.models, cold.models)
    assert refreshed.index.built_from == cold.index.built_from
    assert refreshed.catalog.built_from == cold.catalog.built_from
    assert refreshed.models.trained_on == cold.models.trained_on


def _specs():
    """Specs spanning single-table, join and metadata-free discovery."""
    by_name = MappingSpec(2)
    by_name.add_sample_cells([ExactValue("Alice Chen"), None])
    by_department = MappingSpec(2)
    by_department.add_sample_cells([ExactValue("Engineering"), None])
    join = MappingSpec(2)
    join.add_sample_cells([ExactValue("Alice Chen"), ExactValue("Ann Arbor")])
    return [by_name, by_department, join]


class TestRefreshEquivalence:
    @pytest.mark.parametrize("seed", [3, 17, 92])
    def test_randomized_appends_match_cold_build(self, seed):
        rng = random.Random(seed)
        database = build_company_database()
        store = ArtifactStore(max_delta_fraction=0.9)
        store.get(database)
        # Several append → refresh cycles so deltas chain across marks.
        for _ in range(3):
            _append_random_batch(rng, database)
            refreshed = store.refresh(database)
        assert store.stats.refreshes == 3
        assert store.stats.rebuild_fallbacks == 0
        assert store.stats.delta_rows_applied > 0
        assert refreshed.key == ArtifactKey.for_database(database)

        cold = ArtifactStore().build(database)
        _assert_bundles_equivalent(refreshed, cold)

    @pytest.mark.parametrize("seed", [5, 31])
    def test_discovery_results_are_bit_for_bit_identical(self, seed):
        rng = random.Random(seed)
        database = build_company_database()
        store = ArtifactStore(max_delta_fraction=0.9)
        store.get(database)
        _append_random_batch(rng, database, max_rows=6)
        refreshed = store.refresh(database)
        assert store.stats.refreshes == 1
        cold = ArtifactStore().build(database)
        for spec in _specs():
            got = Prism.from_artifacts(refreshed).discover(spec)
            want = Prism.from_artifacts(cold).discover(spec)
            assert got.sql() == want.sql()
            assert got.num_queries == want.num_queries

    def test_refresh_of_untrained_store(self):
        database = build_company_database()
        store = ArtifactStore(train_bayesian=False, max_delta_fraction=0.9)
        store.get(database)
        database.table("Employee").insert(
            (42, "Grace Hopper", "Research", 130_000.0, 36)
        )
        refreshed = store.refresh(database)
        assert store.stats.refreshes == 1
        assert refreshed.models is None
        cold = ArtifactStore(train_bayesian=False).build(database)
        _assert_indexes_equal(refreshed.index, cold.index)
        _assert_catalogs_equal(refreshed.catalog, cold.catalog)


class TestRefreshBookkeeping:
    def test_refresh_counters_and_key_progression(self):
        database = build_company_database()
        store = ArtifactStore(max_delta_fraction=0.9)
        first = store.refresh(database)           # nothing cached: build
        assert store.stats.builds == 1
        again = store.refresh(database)           # unchanged: hit
        assert again is first
        assert store.stats.hits == 1
        database.table("Project").insert(("P900", "Skunkworks", 1_000.0))
        upgraded = store.refresh(database)
        assert store.stats.refreshes == 1
        assert store.stats.delta_rows_applied == 1
        assert store.stats.refreshes_by_database["company"] == 1
        assert upgraded.key != first.key
        snapshot = store.stats.as_dict()
        assert snapshot["refreshes"] == 1
        assert snapshot["delta_rows_applied"] == 1
        assert snapshot["rebuild_fallbacks"] == 0

    def test_refreshed_bundle_is_persisted(self, tmp_path):
        database = build_company_database()
        store = ArtifactStore(persist_dir=tmp_path, max_delta_fraction=0.9)
        store.get(database)
        database.table("Project").insert(("P901", "Moonshot", 2_000.0))
        upgraded = store.refresh(database)
        assert store.stats.refreshes == 1
        # A cold store warm-starts from the refreshed bundle on disk.
        other = ArtifactStore(persist_dir=tmp_path)
        warm = other.get(database)
        assert other.stats.disk_loads == 1
        assert other.stats.builds == 0
        assert warm.key == upgraded.key

    def test_service_metrics_expose_refresh_counters(self):
        from repro.service import DiscoveryRequest, DiscoveryService

        database = build_company_database()
        store = ArtifactStore(max_delta_fraction=0.9)
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Alice Chen"), None])
        with DiscoveryService(
            databases={"company": database},
            store=store,
            num_workers=1,
            refresh_artifacts=True,
        ) as service:
            assert service.submit(DiscoveryRequest("company", spec)).result().ok
            database.table("Project").insert(("P902", "Iceberg", 500.0))
            assert service.submit(DiscoveryRequest("company", spec)).result().ok
            metrics = service.metrics()
        assert metrics.artifacts["refreshes"] == 1
        assert metrics.artifacts["delta_rows_applied"] == 1
        assert metrics.artifacts["rebuild_fallbacks"] == 0


class TestRebuildFallbacks:
    def test_schema_change_falls_back(self):
        database = build_company_database()
        store = ArtifactStore(max_delta_fraction=0.9)
        store.get(database)
        database.create_table("Audit", [Column("Entry", DataType.TEXT)])
        database.table("Audit").insert(("created",))
        bundle = store.refresh(database)
        assert store.stats.refreshes == 0
        assert store.stats.rebuild_fallbacks == 1
        assert store.stats.fallback_reasons["schema_change"] == 1
        assert store.stats.builds == 2
        assert bundle.key == ArtifactKey.for_database(database)
        _assert_bundles_equivalent(bundle, ArtifactStore().build(database))

    def test_drop_table_falls_back(self):
        database = build_company_database()
        store = ArtifactStore(max_delta_fraction=0.9)
        store.get(database)
        database.drop_table("Assignment")
        bundle = store.refresh(database)
        assert store.stats.rebuild_fallbacks == 1
        assert store.stats.fallback_reasons["schema_change"] == 1
        assert bundle.key == ArtifactKey.for_database(database)
        assert not bundle.catalog.has_column(
            type(bundle.catalog.columns()[0])("Assignment", "Hours")
        )

    def test_drop_and_recreate_same_name_falls_back(self):
        """The delete/recreate path: same table name, different rows."""
        database = build_company_database()
        store = ArtifactStore(max_delta_fraction=0.9)
        store.get(database)
        database.drop_table("Project")
        database.create_table("Project", [
            Column("Code", DataType.TEXT, primary_key=True),
            Column("Title", DataType.TEXT),
            Column("Budget", DataType.DECIMAL),
        ])
        database.table("Project").insert(("P1", "Fresh start", 10.0))
        bundle = store.refresh(database)
        assert store.stats.refreshes == 0
        assert store.stats.fallback_reasons["schema_change"] == 1
        _assert_bundles_equivalent(bundle, ArtifactStore().build(database))

    def test_delta_overflow_falls_back(self):
        database = build_company_database()
        store = ArtifactStore(max_delta_fraction=0.05)
        store.get(database)
        for i in range(5):  # 5 rows > 5% of the ~19-row company database
            database.table("Project").insert((f"P5{i}", f"Bulk {i}", 1.0))
        bundle = store.refresh(database)
        assert store.stats.refreshes == 0
        assert store.stats.rebuild_fallbacks == 1
        assert store.stats.fallback_reasons["delta_overflow"] == 1
        assert bundle.key == ArtifactKey.for_database(database)

    def test_disk_loaded_bundle_falls_back_then_reattaches(self, tmp_path):
        database = build_company_database()
        ArtifactStore(persist_dir=tmp_path).get(database)
        store = ArtifactStore(persist_dir=tmp_path, max_delta_fraction=0.9)
        loaded = store.get(database)  # private unpickled database copy
        assert store.stats.disk_loads == 1
        frozen_rows = loaded.database.table("Project").num_rows
        database.table("Project").insert(("P904", "Detached", 1.0))
        store.refresh(database)
        assert store.stats.refreshes == 0
        assert store.stats.rebuild_fallbacks == 1
        assert store.stats.fallback_reasons["detached_database"] == 1
        # The disk-loaded bundle's artifacts were never mutated: a reader
        # still holding it sees no posting past its own database's rows.
        assert not any(
            posting.table == "Project" and posting.row_index >= frozen_rows
            for postings in loaded.index._exact.values()
            for posting in postings
        )
        # The rebuild re-attached the cache to the live database, so the
        # next append upgrades incrementally again.
        database.table("Project").insert(("P905", "Reattached", 2.0))
        upgraded = store.refresh(database)
        assert store.stats.refreshes == 1
        assert upgraded.key == ArtifactKey.for_database(database)

    def test_unexpected_apply_error_evicts_bundle(self, monkeypatch):
        from repro.dataset.index import InvertedIndex

        database = build_company_database()
        store = ArtifactStore(max_delta_fraction=0.9)
        store.get(database)
        database.table("Project").insert(("P906", "Boom", 3.0))

        def interrupted(self, *args, **kwargs):
            raise RuntimeError("interrupted mid-apply")

        monkeypatch.setattr(InvertedIndex, "apply_delta", interrupted)
        with pytest.raises(RuntimeError):
            store.refresh(database)
        # The possibly half-upgraded bundle must not stay cached under its
        # old marks — a later refresh would fold the same delta in twice.
        assert store.cached_bundle("company") is None
        monkeypatch.undo()
        rebuilt = store.refresh(database)
        assert rebuilt.key == ArtifactKey.for_database(database)
        _assert_bundles_equivalent(rebuilt, ArtifactStore().build(database))

    def test_bundle_without_marks_falls_back(self):
        from dataclasses import replace

        database = build_company_database()
        store = ArtifactStore(max_delta_fraction=0.9)
        bundle = store.get(database)
        store._bundles["company"] = replace(bundle, marks=None)
        database.table("Project").insert(("P903", "Legacy", 1.0))
        store.refresh(database)
        assert store.stats.refreshes == 0
        assert store.stats.fallback_reasons["unsupported_bundle"] == 1

    def test_fallback_serves_correct_results(self):
        database = build_company_database()
        store = ArtifactStore(max_delta_fraction=0.9)
        store.get(database)
        database.create_table("Audit", [Column("Entry", DataType.TEXT)])
        bundle = store.refresh(database)
        spec = MappingSpec(2)
        spec.add_sample_cells([ExactValue("Alice Chen"), None])
        result = Prism.from_artifacts(bundle).discover(spec)
        assert result.num_queries >= 1
