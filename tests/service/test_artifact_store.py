"""Unit tests for the preprocessing-artifact store."""

from __future__ import annotations

import threading

import pytest

from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue
from repro.errors import DiscoveryError
from repro.service import ArtifactKey, ArtifactStore


def _company_spec() -> MappingSpec:
    spec = MappingSpec(2)
    spec.add_sample_cells([ExactValue("Alice Chen"), ExactValue("Engineering")])
    return spec


class TestArtifactKey:
    def test_key_reflects_database_state(self, company_db):
        key = ArtifactKey.for_database(company_db)
        assert key.database == "company"
        assert key == ArtifactKey.for_database(company_db)
        company_db.table("Employee").insert(
            (7, "Grace Ito", "Research", 99_000.0, 31)
        )
        assert key != ArtifactKey.for_database(company_db)

    def test_filename_is_filesystem_safe(self):
        key = ArtifactKey("weird/db name", 3, (3, 2, 10))
        name = key.filename()
        assert "/" not in name and " " not in name
        assert name.endswith(".artifacts.pkl")


class TestArtifactStore:
    def test_builds_once_then_hits(self, company_db):
        store = ArtifactStore()
        first = store.get(company_db)
        second = store.get(company_db)
        assert first is second
        assert store.stats.builds == 1
        assert store.stats.hits == 1
        assert store.stats.builds_by_database["company"] == 1

    def test_bundle_contents_are_complete(self, company_db):
        store = ArtifactStore()
        bundle = store.get(company_db)
        assert bundle.database is company_db
        assert bundle.key == ArtifactKey.for_database(company_db)
        assert bundle.index.built_from == company_db.artifact_key()
        assert bundle.catalog.built_from == company_db.artifact_key()
        assert bundle.schema_graph.built_from == company_db.artifact_key()
        assert bundle.models is not None
        assert bundle.models.trained_on == company_db.artifact_key()

    def test_engine_over_bundle_discovers(self, company_db):
        store = ArtifactStore()
        engine = store.get(company_db).engine()
        result = engine.discover(_company_spec())
        assert result.num_queries >= 1
        # The engine shares the bundle's artifacts instead of rebuilding.
        assert engine.index is store.get(company_db).index

    def test_untrained_store_builds_model_free_bundles(self, company_db):
        store = ArtifactStore(train_bayesian=False)
        bundle = store.get(company_db)
        assert bundle.models is None
        engine = bundle.engine(scheduler="filter")
        assert engine.discover(_company_spec()).num_queries >= 1
        with pytest.raises(DiscoveryError):
            bundle.engine(scheduler="bayesian").discover(_company_spec())

    def test_invalidation_rebuilds_on_new_data_version(self, company_db):
        store = ArtifactStore()
        stale = store.get(company_db)
        company_db.table("Employee").insert(
            (7, "Grace Ito", "Research", 99_000.0, 31)
        )
        fresh = store.get(company_db)
        assert fresh is not stale
        assert fresh.key != stale.key
        assert store.stats.builds == 2
        assert store.stats.invalidations == 1
        # The fresh bundle indexes the inserted row; the stale one did not.
        assert fresh.index.columns_containing("Grace Ito")
        assert not stale.index.columns_containing("Grace Ito")

    def test_invalidation_on_schema_change(self, company_db):
        store = ArtifactStore()
        store.get(company_db)
        company_db.drop_table("Assignment")
        fresh = store.get(company_db)
        assert store.stats.builds == 2
        assert "Assignment" not in fresh.schema_graph.tables

    def test_concurrent_gets_build_exactly_once(self, company_db):
        store = ArtifactStore()
        barrier = threading.Barrier(8)
        bundles = []
        errors = []

        def worker():
            try:
                barrier.wait()
                bundles.append(store.get(company_db))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.stats.builds == 1
        assert len({id(bundle) for bundle in bundles}) == 1

    def test_evict_drops_memory_only(self, company_db):
        store = ArtifactStore()
        store.get(company_db)
        assert store.evict("company")
        assert not store.evict("company")
        store.get(company_db)
        assert store.stats.builds == 2


class TestPersistence:
    def test_restart_warm_starts_from_disk(self, company_db, tmp_path):
        first_store = ArtifactStore(persist_dir=tmp_path)
        built = first_store.get(company_db)
        path = first_store.persisted_path(built.key)
        assert path is not None and path.exists()
        assert first_store.stats.disk_writes == 1

        # A second store simulates a process restart: same directory, no
        # in-memory state.  It must load instead of rebuilding.
        second_store = ArtifactStore(persist_dir=tmp_path)
        loaded = second_store.get(company_db)
        assert second_store.stats.builds == 0
        assert second_store.stats.disk_loads == 1
        assert loaded.key == built.key
        # Loaded bundles own a private database copy, isolated from the
        # caller's objects, and still answer discovery correctly.
        assert loaded.database is not company_db
        result = loaded.engine().discover(_company_spec())
        assert result.num_queries >= 1

    def test_stale_persisted_bundle_is_not_loaded(self, company_db, tmp_path):
        store = ArtifactStore(persist_dir=tmp_path)
        store.get(company_db)
        company_db.table("Employee").insert(
            (7, "Grace Ito", "Research", 99_000.0, 31)
        )
        restarted = ArtifactStore(persist_dir=tmp_path)
        restarted.get(company_db)
        # The old file's key no longer matches, so a rebuild happened.
        assert restarted.stats.disk_loads == 0
        assert restarted.stats.builds == 1

    def test_corrupt_persisted_bundle_degrades_to_rebuild(
        self, company_db, tmp_path
    ):
        store = ArtifactStore(persist_dir=tmp_path)
        key = store.get(company_db).key
        store.persisted_path(key).write_bytes(b"not a pickle")
        restarted = ArtifactStore(persist_dir=tmp_path)
        bundle = restarted.get(company_db)
        # The bad file is a cache miss, not a poisoned database: the store
        # rebuilds, counts the failure, and heals the file on disk.
        assert bundle.key == key
        assert restarted.stats.disk_errors == 1
        assert restarted.stats.builds == 1
        assert restarted.stats.disk_writes == 1
        healed = ArtifactStore(persist_dir=tmp_path)
        healed.get(company_db)
        assert healed.stats.disk_loads == 1
        assert healed.stats.builds == 0

    def test_unwritable_persist_dir_still_serves(self, company_db, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where a directory must go", encoding="utf-8")
        store = ArtifactStore(persist_dir=blocked / "nested")
        bundle = store.get(company_db)
        assert bundle.key.database == "company"
        assert store.stats.disk_errors == 1
        assert store.stats.disk_writes == 0

    def test_no_persist_dir_means_no_files(self, company_db):
        store = ArtifactStore()
        bundle = store.get(company_db)
        assert store.persisted_path(bundle.key) is None
        assert store.stats.disk_writes == 0
