"""The process-shard executor: routing, front door, metrics and recovery.

These tests cross a real process boundary — each one spawns worker
processes via :class:`~repro.api.DiscoveryService` with
``shard_mode="process"``.  The start-method matrix is driven by the
``PRISM_TEST_START_METHODS`` environment variable (comma separated; CI
runs the suite once under ``fork`` and once under ``spawn``), defaulting
to the cheapest method the platform offers.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue
from repro.api import (
    ArtifactStore,
    DiscoveryRequest,
    DiscoveryService,
    ShardAssignment,
    demo_requests,
)
from repro.datasets import load_imdb, load_mondial, load_nba
from repro.discovery.candidates import GenerationLimits
from repro.errors import ServiceError

_LIMITS = GenerationLimits(max_candidates=200, max_assignments=400)


def _start_methods() -> list[str]:
    configured = os.environ.get("PRISM_TEST_START_METHODS")
    if configured:
        return [m.strip() for m in configured.split(",") if m.strip()]
    available = multiprocessing.get_all_start_methods()
    return ["fork"] if "fork" in available else ["spawn"]


START_METHODS = _start_methods()


def _company_request(**overrides) -> DiscoveryRequest:
    spec = MappingSpec(2)
    spec.add_sample_cells([ExactValue("Alice Chen"), ExactValue("Engineering")])
    fields = dict(database="company", spec=spec)
    fields.update(overrides)
    return DiscoveryRequest(**fields)


def _company_service(company_db, **overrides) -> DiscoveryService:
    fields = dict(
        databases={"company": company_db},
        workers=1,
        shard_mode="process",
        limits=_LIMITS,
    )
    fields.update(overrides)
    return DiscoveryService(**fields)


class TestShardAssignment:
    def test_no_replication_means_every_shard_owns_everything(self):
        assignment = ShardAssignment(["a", "b", "c"], num_shards=2)
        assert assignment.owners("a") == {0, 1}
        assert assignment.databases_for(0) == ["a", "b", "c"]
        assert assignment.databases_for(1) == ["a", "b", "c"]

    def test_replication_partitions_round_robin(self):
        assignment = ShardAssignment(
            ["a", "b", "c", "d"], num_shards=3, replication=1
        )
        owned = [assignment.databases_for(shard) for shard in range(3)]
        assert owned == [["a", "d"], ["b"], ["c"]]
        assert assignment.owners("b") == {1}

    def test_replication_two_spreads_to_adjacent_shards(self):
        assignment = ShardAssignment(["a", "b"], num_shards=3, replication=2)
        assert assignment.owners("a") == {0, 1}
        assert assignment.owners("b") == {1, 2}

    def test_invalid_replication_rejected(self):
        with pytest.raises(ServiceError):
            ShardAssignment(["a"], num_shards=2, replication=0)
        with pytest.raises(ServiceError):
            ShardAssignment(["a"], num_shards=2, replication=3)


@pytest.mark.parametrize("start_method", START_METHODS)
class TestProcessServing:
    def test_serves_and_reports_shard_metrics(self, company_db, start_method):
        with _company_service(
            company_db, workers=2, start_method=start_method
        ) as svc:
            assert svc.shard_mode == "process"
            tickets = [svc.submit(_company_request()) for _ in range(4)]
            responses = [t.result(timeout=120) for t in tickets]
            metrics = svc.metrics()
        assert [r.status for r in responses] == ["ok"] * 4
        assert all(r.num_queries >= 1 for r in responses)
        assert set(metrics.shards) == {0, 1}
        assert (
            sum(info["served"] for info in metrics.shards.values())
            == metrics.completed
            == 4
        )
        # Each shard that served anything warmed its own bundle exactly once.
        for info in metrics.shards.values():
            assert info["artifacts"]["builds"] == 1
        assert metrics.artifacts["builds"] == sum(
            info["artifacts"]["builds"] for info in metrics.shards.values()
        )

    def test_front_door_cancellation_and_deadline_while_queued(
        self, company_db, start_method
    ):
        svc = _company_service(company_db, start_method=start_method)
        svc.start()
        try:
            # Hold the single shard's dispatch lock so its worker thread
            # blocks mid-flight: everything submitted after `first` stays
            # in the parent-side queue, where the front door still owns it.
            shard_lock = svc._pool._shards[0].lock
            with shard_lock:
                first = svc.submit(_company_request())
                time.sleep(0.2)  # let the worker pick `first` up and block
                queued = svc.submit(_company_request())
                assert queued.cancel()
                starved = svc.submit(_company_request(deadline_s=0.05))
                time.sleep(0.2)  # burn the starved request's budget in queue
            assert first.result(timeout=120).ok
            cancelled = queued.result(timeout=120)
            assert cancelled.status == "cancelled"
            assert cancelled.result is None
            response = starved.result(timeout=120)
            assert response.status == "timeout"
            assert "queued" in response.error
            assert response.queued_seconds >= 0.05
        finally:
            svc.shutdown()

    def test_crashed_shard_is_respawned_and_recovers(
        self, company_db, start_method
    ):
        with _company_service(company_db, start_method=start_method) as svc:
            assert svc.submit(_company_request()).result(timeout=120).ok
            svc._pool.crash_shard(0)
            failed = svc.submit(_company_request()).result(timeout=120)
            assert failed.status == "error"
            assert "shard" in failed.error
            recovered = svc.submit(_company_request()).result(timeout=120)
            assert recovered.ok
            assert svc._pool.respawns >= 1

    def test_warm_start_from_persisted_bundles(
        self, company_db, start_method, tmp_path
    ):
        store = ArtifactStore(persist_dir=tmp_path)
        store.get(company_db)  # parent writes the bundle to disk once
        with _company_service(
            company_db, start_method=start_method, store=store
        ) as svc:
            assert svc.submit(_company_request()).result(timeout=120).ok
            metrics = svc.metrics()
        assert metrics.artifacts["disk_loads"] >= 1
        assert metrics.artifacts["builds"] == 0


class TestMetricsMergeAcrossPartitionedShards:
    def test_totals_equal_sum_over_shards(self):
        svc = DiscoveryService(
            loaders={
                "mondial": load_mondial,
                "imdb": load_imdb,
                "nba": load_nba,
            },
            workers=3,
            shard_mode="process",
            replication=1,
            limits=_LIMITS,
        )
        with svc:
            tickets = [svc.submit(r) for r in demo_requests()]
            responses = [t.result(timeout=300) for t in tickets]
            metrics = svc.metrics()
        assert [r.status for r in responses] == ["ok"] * 3
        # replication=1 partitions the three databases one per shard, so
        # each shard builds exactly its own bundle and the merged totals
        # are the sums over shards.
        assert metrics.artifacts["builds"] == 3
        for info in metrics.shards.values():
            assert info["artifacts"]["builds"] == 1
            assert info["served"] == 1
        assert metrics.artifacts["builds"] == sum(
            info["artifacts"]["builds"] for info in metrics.shards.values()
        )
        assert metrics.completed == sum(
            info["served"] for info in metrics.shards.values()
        )
        by_db = metrics.artifacts["builds_by_database"]
        assert sorted(by_db) == ["imdb", "mondial", "nba"]


class TestGoldenEquality:
    def test_thread_and_process_results_are_identical(self):
        """Same demo workload, bit-for-bit equal results across executors."""

        def run(shard_mode: str):
            svc = DiscoveryService(
                loaders={
                    "mondial": load_mondial,
                    "imdb": load_imdb,
                    "nba": load_nba,
                },
                workers=2,
                shard_mode=shard_mode,
                limits=_LIMITS,
            )
            with svc:
                tickets = [svc.submit(r) for r in demo_requests()]
                return [t.result(timeout=300) for t in tickets]

        thread_responses = run("thread")
        process_responses = run("process")
        assert len(thread_responses) == len(process_responses) == 3
        for ours, theirs in zip(thread_responses, process_responses):
            assert ours.request_id == theirs.request_id
            assert ours.status == theirs.status == "ok"
            assert ours.result.sql() == theirs.result.sql()
            ours_stats = ours.result.stats.as_dict()
            theirs_stats = theirs.result.stats.as_dict()
            # Wall-clock timings legitimately differ across executors.
            for volatile in (
                "elapsed_seconds",
                "related_column_seconds",
                "candidate_seconds",
                "validation_seconds",
            ):
                ours_stats.pop(volatile, None)
                theirs_stats.pop(volatile, None)
            assert ours_stats == theirs_stats
