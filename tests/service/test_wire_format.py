"""The v1 wire format: strict, versioned, loss-free for requests/responses.

Everything that crosses the process-shard boundary goes through
``repro.service.wire``; these tests pin the codec's round-trip fidelity
and its strictness (unknown fields, missing fields and wrong versions are
structured :class:`~repro.errors.WireFormatError`\\ s, never silent drops).
"""

from __future__ import annotations

import json

import pytest

from repro.constraints.parser import parse_metadata_constraint
from repro.constraints.spec import MappingSpec
from repro.constraints.values import (
    AnyValue,
    Conjunction,
    Disjunction,
    ExactValue,
    OneOf,
    Predicate,
    Range,
)
from repro.discovery.result import DiscoveryStats
from repro.errors import ServiceError, WireFormatError
from repro.service import wire
from repro.service.service import DiscoveryRequest, DiscoveryResponse


def _rich_spec() -> MappingSpec:
    spec = MappingSpec(3)
    spec.add_sample_cells(
        [
            Conjunction([OneOf(["California", "Nevada"]), AnyValue()]),
            Disjunction([ExactValue("Lake Tahoe"), Predicate("!=", "x")]),
            Range(low=0, high=500.5, low_inclusive=False),
        ]
    )
    spec.add_sample_cells([ExactValue("plain"), None, None])
    spec.set_metadata(
        2, parse_metadata_constraint("DataType=='decimal' AND MinValue>=0")
    )
    spec.set_metadata(0, parse_metadata_constraint("ColumnName=='Name'"))
    return spec


def _request(**overrides) -> DiscoveryRequest:
    fields = dict(
        database="mondial",
        spec=_rich_spec(),
        scheduler="bayesian",
        deadline_s=12.5,
        request_id="req-wire-1",
    )
    fields.update(overrides)
    return DiscoveryRequest(**fields)


class TestRequestRoundTrip:
    def test_round_trip_preserves_every_field(self):
        request = _request()
        clone = DiscoveryRequest.from_json(request.to_json())
        assert clone.database == "mondial"
        assert clone.scheduler == "bayesian"
        assert clone.deadline_s == 12.5
        assert clone.request_id == "req-wire-1"
        assert clone.spec.num_columns == 3
        assert len(clone.spec.samples) == 2
        # Constraint trees survive verbatim, including nesting and bounds.
        assert clone.spec.samples[0].cells == request.spec.samples[0].cells
        assert clone.spec.samples[1].cells == request.spec.samples[1].cells
        assert clone.spec.metadata_for(0) == request.spec.metadata_for(0)
        assert clone.spec.metadata_for(2) == request.spec.metadata_for(2)

    def test_optional_fields_may_be_absent(self):
        request = _request(scheduler=None, deadline_s=None, request_id=None)
        clone = DiscoveryRequest.from_json(request.to_json())
        assert clone.scheduler is None
        assert clone.deadline_s is None
        assert clone.request_id is None

    def test_wire_payload_is_versioned_and_typed(self):
        payload = json.loads(_request().to_json())
        assert payload["api_version"] == wire.API_VERSION == 1
        assert payload["kind"] == "discovery_request"

    def test_every_value_constraint_shape_round_trips(self):
        shapes = [
            ExactValue("x"),
            OneOf(["a", "b", 3]),
            Range(low=1, high=5, low_inclusive=False, high_inclusive=True),
            Range(low=None, high=9),
            Predicate(">=", 3),
            Conjunction([ExactValue("x"), Range(low=0)]),
            Disjunction([ExactValue("a"), AnyValue()]),
            AnyValue(),
        ]
        for constraint in shapes:
            payload = wire.value_constraint_to_wire(constraint)
            assert wire.value_constraint_from_wire(payload) == constraint


class TestResponseRoundTrip:
    def _stats(self) -> DiscoveryStats:
        return DiscoveryStats(
            scheduler_name="bayesian",
            num_candidates=7,
            validations=5,
            elapsed_seconds=0.25,
            timed_out=False,
        )

    def test_ok_response_round_trips_with_remote_result(self):
        result = wire.RemoteDiscoveryResult(
            sql_strings=["SELECT 1", "SELECT 2"], stats=self._stats()
        )
        response = DiscoveryResponse(
            request_id="req-1",
            database="nba",
            status="ok",
            result=result,
            error=None,
            queued_seconds=0.01,
            execution_seconds=0.2,
        )
        clone = DiscoveryResponse.from_json(response.to_json())
        assert clone.ok and clone.status == "ok"
        assert clone.request_id == "req-1"
        assert clone.database == "nba"
        assert isinstance(clone.result, wire.RemoteDiscoveryResult)
        assert clone.result.sql() == ["SELECT 1", "SELECT 2"]
        assert clone.result.num_queries == 2
        assert not clone.result.is_empty
        assert clone.result.stats.num_candidates == 7
        assert "2 satisfying" in clone.result.describe()
        assert "SELECT 1" in clone.result.describe()
        assert clone.queued_seconds == 0.01
        assert clone.execution_seconds == 0.2

    def test_error_response_round_trips(self):
        response = DiscoveryResponse(
            request_id="req-2",
            database="nba",
            status="error",
            result=None,
            error="unknown scheduling policy 'nope'",
            queued_seconds=0.0,
            execution_seconds=0.0,
        )
        clone = DiscoveryResponse.from_json(response.to_json())
        assert clone.status == "error"
        assert clone.result is None
        assert "nope" in clone.error

    def test_remote_result_queries_are_not_materialized(self):
        result = wire.RemoteDiscoveryResult(
            sql_strings=[], stats=self._stats()
        )
        assert result.is_empty
        assert result.num_queries == 0
        assert result.queries == []


class TestStrictness:
    def test_unknown_field_is_rejected(self):
        payload = json.loads(_request().to_json())
        payload["surprise"] = 1
        with pytest.raises(WireFormatError, match="unknown field"):
            DiscoveryRequest.from_json(json.dumps(payload))

    def test_missing_field_is_rejected(self):
        payload = json.loads(_request().to_json())
        del payload["database"]
        with pytest.raises(WireFormatError, match="missing field"):
            DiscoveryRequest.from_json(json.dumps(payload))

    def test_wrong_api_version_is_rejected(self):
        payload = json.loads(_request().to_json())
        payload["api_version"] = 2
        with pytest.raises(WireFormatError, match="api_version"):
            DiscoveryRequest.from_json(json.dumps(payload))

    def test_wrong_kind_is_rejected(self):
        payload = json.loads(_request().to_json())
        payload["kind"] = "discovery_response"
        with pytest.raises(WireFormatError):
            DiscoveryRequest.from_json(json.dumps(payload))

    def test_malformed_json_is_a_wire_format_error(self):
        with pytest.raises(WireFormatError):
            DiscoveryRequest.from_json("{not json")

    def test_non_mapping_payload_is_rejected(self):
        with pytest.raises(WireFormatError):
            DiscoveryRequest.from_json("[1, 2, 3]")

    def test_unknown_constraint_type_is_rejected(self):
        with pytest.raises(WireFormatError, match="constraint type"):
            wire.value_constraint_from_wire({"type": "wavelet"})

    def test_bad_response_status_is_rejected(self):
        with pytest.raises(WireFormatError, match="status"):
            wire.response_from_wire(
                {
                    "api_version": 1,
                    "kind": "discovery_response",
                    "request_id": "r",
                    "database": "nba",
                    "status": "maybe",
                    "result": None,
                    "error": None,
                    "queued_seconds": 0.0,
                    "execution_seconds": 0.0,
                }
            )

    def test_wire_format_error_is_a_service_error(self):
        # Callers that already catch ServiceError keep working.
        assert issubclass(WireFormatError, ServiceError)
