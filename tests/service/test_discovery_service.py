"""Unit tests for the concurrent discovery service front door."""

from __future__ import annotations

import threading
import time

import pytest

from repro.constraints.spec import MappingSpec
from repro.constraints.values import ExactValue
from repro.errors import ServiceError, ServiceOverloaded
from repro.service import (
    ArtifactStore,
    DiscoveryRequest,
    DiscoveryService,
    demo_requests,
    request_from_dict,
)


def _company_request(**overrides) -> DiscoveryRequest:
    spec = MappingSpec(2)
    spec.add_sample_cells([ExactValue("Alice Chen"), ExactValue("Engineering")])
    fields = dict(database="company", spec=spec)
    fields.update(overrides)
    return DiscoveryRequest(**fields)


@pytest.fixture()
def service(company_db):
    svc = DiscoveryService(databases={"company": company_db}, num_workers=2)
    yield svc
    svc.shutdown()


class TestSubmission:
    def test_submit_and_result(self, service):
        ticket = service.submit(_company_request())
        response = ticket.result(timeout=30)
        assert response.ok
        assert response.status == "ok"
        assert response.num_queries >= 1
        assert response.request_id.startswith("req-")
        assert response.database == "company"
        assert response.execution_seconds >= 0

    def test_execute_synchronous_path(self, service):
        response = service.execute(_company_request())
        assert response.ok
        assert response.queued_seconds == 0.0

    def test_run_batch_preserves_order(self, service):
        requests = [
            _company_request(request_id=f"batch-{index}") for index in range(6)
        ]
        responses = service.run_batch(requests)
        assert [response.request_id for response in responses] == [
            f"batch-{index}" for index in range(6)
        ]
        assert all(response.ok for response in responses)

    def test_unknown_database_is_rejected_at_submit(self, service):
        with pytest.raises(ServiceError, match="unknown database"):
            service.submit(_company_request(database="nope"))

    def test_engine_error_becomes_error_response(self, service):
        response = service.execute(
            _company_request(scheduler="not-a-policy")
        )
        assert response.status == "error"
        assert response.result is None
        assert "not-a-policy" in response.error

    def test_submit_after_shutdown_raises(self, company_db):
        svc = DiscoveryService(databases={"company": company_db})
        svc.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            svc.submit(_company_request())

    def test_context_manager_runs_and_drains(self, company_db):
        with DiscoveryService(databases={"company": company_db}) as svc:
            tickets = [svc.submit(_company_request()) for _ in range(3)]
        assert all(ticket.result(timeout=1).ok for ticket in tickets)


class TestTimeouts:
    def test_tiny_budget_yields_structured_timeout(self, service):
        response = service.execute(_company_request(time_limit=1e-9))
        assert response.status == "timeout"
        assert response.result is not None
        assert response.result.timed_out
        # Partial stats are attached, never an opaque error.
        assert response.result.stats.scheduler_name == "bayesian"

    def test_budget_spent_in_queue_times_out_without_running(self, company_db):
        release = threading.Event()

        def blocking_loader():
            release.wait(30)
            return company_db

        svc = DiscoveryService(
            databases={"company": company_db},
            loaders={"slow": blocking_loader},
            num_workers=1,
            queue_size=8,
        )
        try:
            blocker = svc.submit(_company_request(database="slow"))
            starved = svc.submit(_company_request(time_limit=0.05))
            time.sleep(0.2)
            release.set()
            assert blocker.result(timeout=30).ok
            response = starved.result(timeout=30)
            assert response.status == "timeout"
            assert "queued" in response.error
            assert response.result.timed_out
            assert response.queued_seconds >= 0.05
        finally:
            release.set()
            svc.shutdown()


class TestBackpressureAndCancellation:
    def _blocked_service(self, company_db):
        release = threading.Event()

        def blocking_loader():
            release.wait(30)
            return company_db

        svc = DiscoveryService(
            databases={"company": company_db},
            loaders={"slow": blocking_loader},
            num_workers=1,
            queue_size=1,
        )
        return svc, release

    def test_full_queue_rejects_with_service_overloaded(self, company_db):
        svc, release = self._blocked_service(company_db)
        try:
            svc.submit(_company_request(database="slow"))  # occupies the worker
            time.sleep(0.1)
            svc.submit(_company_request())  # fills the queue slot
            with pytest.raises(ServiceOverloaded):
                svc.submit(_company_request())
            assert svc.metrics().rejected == 1
        finally:
            release.set()
            svc.shutdown()

    def test_cancel_queued_request(self, company_db):
        svc, release = self._blocked_service(company_db)
        try:
            svc.submit(_company_request(database="slow"))
            time.sleep(0.1)
            queued = svc.submit(_company_request())
            assert queued.cancel()
            release.set()
            response = queued.result(timeout=30)
            assert response.status == "cancelled"
            assert response.result is None
        finally:
            release.set()
            svc.shutdown()

    def test_cannot_cancel_completed_request(self, service):
        ticket = service.submit(_company_request())
        ticket.result(timeout=30)
        assert not ticket.cancel()


class TestMetrics:
    def test_counters_and_latency(self, service):
        for _ in range(4):
            service.submit(_company_request())
        # Drain by waiting on a final marker request.
        service.submit(_company_request()).result(timeout=30)
        deadline = time.monotonic() + 30
        while service.metrics().completed < 5 and time.monotonic() < deadline:
            time.sleep(0.01)
        metrics = service.metrics()
        assert metrics.submitted == 5
        assert metrics.completed == 5
        assert metrics.ok == 5
        assert metrics.in_flight == 0
        assert metrics.latency_count == 5
        assert metrics.latency_max_seconds >= metrics.latency_min_seconds > 0
        assert metrics.latency_p95_seconds >= metrics.latency_p50_seconds
        assert metrics.artifacts["builds"] == 1
        assert metrics.artifacts["hits"] == 4

    def test_shared_store_is_visible_in_metrics(self, company_db):
        store = ArtifactStore()
        store.get(company_db)
        svc = DiscoveryService(databases={"company": company_db}, store=store)
        try:
            assert svc.execute(_company_request()).ok
            assert svc.metrics().artifacts["builds"] == 1
            assert svc.metrics().artifacts["hits"] >= 1
        finally:
            svc.shutdown()


class TestConfigurationValidation:
    def test_invalid_pool_parameters(self, company_db):
        with pytest.raises(ServiceError):
            DiscoveryService(databases={"company": company_db}, num_workers=0)
        with pytest.raises(ServiceError):
            DiscoveryService(databases={"company": company_db}, queue_size=0)
        with pytest.raises(ServiceError):
            DiscoveryService(
                databases={"company": company_db}, default_time_limit=0
            )

    def test_nonpositive_request_budget_rejected(self, service):
        with pytest.raises(ServiceError, match="deadline_s"):
            service.submit(_company_request(deadline_s=0))

    def test_default_service_serves_bundled_databases(self):
        svc = DiscoveryService()
        try:
            assert svc.available_databases() == ["imdb", "mondial", "nba"]
        finally:
            svc.shutdown()


class TestWorkloadBuilders:
    def test_request_from_dict_round_trip(self):
        request = request_from_dict(
            {
                "database": "nba",
                "columns": 2,
                "samples": [["Lakers", "LeBron James"], ["", ""]],
                "metadata": {"0": "DataType=='text'"},
                "scheduler": "filter",
                "time_limit": 5,
                "request_id": "r1",
            }
        )
        assert request.database == "nba"
        assert request.spec.num_columns == 2
        assert len(request.spec.samples) == 1
        assert request.spec.metadata_for(0) is not None
        assert request.scheduler == "filter"
        assert request.time_limit == 5.0
        assert request.request_id == "r1"

    def test_request_from_dict_requires_core_keys(self):
        with pytest.raises(ServiceError, match="missing key"):
            request_from_dict({"columns": 2})

    def test_demo_requests_cover_all_bundled_databases(self):
        requests = demo_requests(rounds=2)
        assert len(requests) == 6
        assert {request.database for request in requests} == {
            "mondial",
            "imdb",
            "nba",
        }
        for request in requests:
            request.spec.validate()

    def test_demo_requests_filter_and_validation(self):
        assert len(demo_requests(databases=["nba"], rounds=3)) == 3
        with pytest.raises(ServiceError):
            demo_requests(databases=["unknown"])
        with pytest.raises(ServiceError):
            demo_requests(rounds=0)
