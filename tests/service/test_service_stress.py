"""Concurrency stress tests for the discovery service.

The acceptance bar for the service layer: many concurrent mixed-database
rounds through one :class:`DiscoveryService`, with the artifact store's
counters proving each database's preprocessing bundle was built exactly
once — every later request is a cache hit over shared immutable state.
"""

from __future__ import annotations

import threading

import pytest

from repro.discovery.candidates import GenerationLimits
from repro.service import ArtifactStore, DiscoveryService, demo_requests

# Keep every individual round fast while still validating real candidates.
STRESS_LIMITS = GenerationLimits(
    max_candidates=100,
    max_assignments=200,
    max_trees_per_assignment=4,
)

ROUNDS = 4  # 4 rounds x 3 bundled databases = 12 requests


@pytest.fixture(scope="module")
def stress_databases(mondial_db, imdb_db, nba_db):
    return {"mondial": mondial_db, "imdb": imdb_db, "nba": nba_db}


class TestServiceStress:
    def test_concurrent_mixed_database_requests_build_each_bundle_once(
        self, stress_databases
    ):
        store = ArtifactStore()
        service = DiscoveryService(
            databases=stress_databases,
            store=store,
            num_workers=8,
            queue_size=32,
            limits=STRESS_LIMITS,
        )
        requests = demo_requests(rounds=ROUNDS)
        assert len(requests) >= 8
        assert len({request.database for request in requests}) >= 2
        with service:
            # Submit everything before consuming any response so the pool
            # genuinely races: all 8 workers contend for the same bundles.
            tickets = [service.submit(request, block=True) for request in requests]
            responses = [ticket.result(timeout=120) for ticket in tickets]

        assert [response.status for response in responses] == ["ok"] * len(requests)
        for response in responses:
            assert response.num_queries >= 1

        # The proof: one build per database, every other request a hit.
        stats = store.stats
        assert dict(stats.builds_by_database) == {
            "mondial": 1,
            "imdb": 1,
            "nba": 1,
        }
        assert stats.builds == 3
        assert stats.hits == len(requests) - stats.builds
        assert stats.invalidations == 0

        metrics = service.metrics()
        assert metrics.completed == len(requests)
        assert metrics.ok == len(requests)
        assert metrics.in_flight == 0

    def test_many_client_threads_share_one_service(self, stress_databases):
        store = ArtifactStore()
        service = DiscoveryService(
            databases=stress_databases,
            store=store,
            num_workers=4,
            queue_size=64,
            limits=STRESS_LIMITS,
        )
        num_clients = 8
        per_client = demo_requests(rounds=1)
        barrier = threading.Barrier(num_clients)
        failures: list[str] = []

        def client(client_index: int) -> None:
            try:
                barrier.wait(timeout=30)
                responses = service.run_batch(per_client)
                for response in responses:
                    if not response.ok:
                        failures.append(
                            f"client {client_index}: {response.status} "
                            f"({response.error})"
                        )
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(f"client {client_index}: {exc!r}")

        with service:
            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(num_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        assert not failures
        assert store.stats.builds == 3
        assert store.stats.hits == num_clients * len(per_client) - 3
        # Every client saw identical shared bundles, so identical results
        # modulo scheduling: spot-check deterministic query counts per db.
        assert service.metrics().completed == num_clients * len(per_client)
