"""Unit tests for the bundled synthetic databases."""

from __future__ import annotations

import pytest

from repro.dataset.schema import ColumnRef
from repro.dataset.schema_graph import SchemaGraph
from repro.datasets import (
    available_databases,
    generate_synthetic_database,
    load_database_by_name,
    load_imdb,
    load_mondial,
    load_nba,
)
from repro.errors import WorkloadError


class TestRegistry:
    def test_available_databases(self):
        assert available_databases() == ["imdb", "mondial", "nba"]

    def test_load_by_name_is_case_insensitive(self):
        assert load_database_by_name("Mondial").name == "mondial"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_database_by_name("oracle")


class TestMondial:
    def test_schema_shape(self, mondial_db):
        assert {"Country", "Province", "City", "Lake", "geo_lake", "River",
                "geo_river", "Mountain", "geo_mountain"} == set(mondial_db.table_names)
        assert len(mondial_db.foreign_keys) == 12

    def test_motivating_example_entities_are_present(self, mondial_db):
        lake = mondial_db.table("Lake")
        rows = lake.select(columns=["Area"], where={"Name": "Lake Tahoe"})
        assert rows == [(497.0,)]
        geo = mondial_db.table("geo_lake")
        provinces = {row[0] for row in geo.select(columns=["Province"],
                                                  where={"Lake": "Lake Tahoe"})}
        assert provinces == {"California", "Nevada"}

    def test_every_geo_lake_row_references_an_existing_lake(self, mondial_db):
        lakes = mondial_db.table("Lake").distinct_values("Name")
        for (lake_name,) in mondial_db.table("geo_lake").select(columns=["Lake"]):
            assert lake_name in lakes

    def test_provinces_reference_existing_countries(self, mondial_db):
        countries = mondial_db.table("Country").distinct_values("Name")
        for (country,) in mondial_db.table("Province").select(columns=["Country"]):
            assert country in countries

    def test_schema_graph_is_connected(self, mondial_db):
        graph = SchemaGraph(mondial_db)
        assert graph.is_connected(mondial_db.table_names)

    def test_generation_is_deterministic(self):
        assert load_mondial(seed=7).total_rows == load_mondial(seed=7).total_rows
        first = load_mondial(seed=7).table("Province").rows
        second = load_mondial(seed=7).table("Province").rows
        assert first == second

    def test_size_parameters_scale_content(self):
        small = load_mondial(extra_lakes=5, extra_rivers=5, extra_mountains=5)
        assert small.table("Lake").num_rows < load_mondial().table("Lake").num_rows


class TestImdb:
    def test_schema_and_links(self, imdb_db):
        assert {"Movie", "Person", "Cast", "Directs", "Genre", "MovieGenre"} == set(
            imdb_db.table_names
        )
        assert len(imdb_db.foreign_keys) == 6

    def test_cast_references_are_consistent(self, imdb_db):
        movie_ids = imdb_db.table("Movie").distinct_values("Id")
        person_ids = imdb_db.table("Person").distinct_values("Id")
        for movie_id, person_id in imdb_db.table("Cast").select(
            columns=["MovieId", "PersonId"]
        ):
            assert movie_id in movie_ids
            assert person_id in person_ids

    def test_known_movie_present(self, imdb_db):
        rows = imdb_db.table("Movie").select(columns=["Year"],
                                             where={"Title": "Inception"})
        assert rows == [(2010,)]

    def test_ratings_are_bounded(self, imdb_db):
        ratings = [r for r in imdb_db.table("Movie").column_values("Rating")]
        assert all(0.0 <= rating <= 10.0 for rating in ratings)


class TestNba:
    def test_schema_and_links(self, nba_db):
        assert {"Team", "Player", "Coach", "Game"} == set(nba_db.table_names)
        assert len(nba_db.foreign_keys) == 4

    def test_players_reference_existing_teams(self, nba_db):
        teams = nba_db.table("Team").distinct_values("Name")
        for (team,) in nba_db.table("Player").select(columns=["Team"]):
            assert team in teams

    def test_games_never_pair_a_team_with_itself(self, nba_db):
        for home, away in nba_db.table("Game").select(columns=["HomeTeam", "AwayTeam"]):
            assert home != away

    def test_known_player_present(self, nba_db):
        rows = nba_db.table("Player").select(columns=["Team"],
                                             where={"Name": "LeBron James"})
        assert rows == [("Lakers",)]


class TestSyntheticGenerator:
    def test_chain_topology(self):
        database = generate_synthetic_database(num_tables=4, rows_per_table=50,
                                               topology="chain", seed=1)
        assert len(database.table_names) == 4
        assert len(database.foreign_keys) == 3
        graph = SchemaGraph(database)
        assert graph.distance("T0", "T3") == 3

    def test_star_topology(self):
        database = generate_synthetic_database(num_tables=5, topology="star", seed=2)
        graph = SchemaGraph(database)
        assert all(graph.distance("T0", f"T{i}") == 1 for i in range(1, 5))

    def test_random_topology_is_connected(self):
        database = generate_synthetic_database(num_tables=6, topology="random", seed=3)
        graph = SchemaGraph(database)
        assert graph.is_connected(database.table_names)

    def test_foreign_keys_resolve(self):
        database = generate_synthetic_database(num_tables=3, rows_per_table=30, seed=4)
        parent_ids = database.table("T0").distinct_values("id")
        for (parent_id,) in database.table("T1").select(columns=["parent_id"]):
            assert parent_id in parent_ids

    def test_determinism(self):
        first = generate_synthetic_database(seed=9).table("T1").rows
        second = generate_synthetic_database(seed=9).table("T1").rows
        assert first == second

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            generate_synthetic_database(num_tables=0)
        with pytest.raises(WorkloadError):
            generate_synthetic_database(rows_per_table=0)
        with pytest.raises(WorkloadError):
            generate_synthetic_database(topology="ring")

    def test_single_table_database(self):
        database = generate_synthetic_database(num_tables=1, rows_per_table=10)
        assert database.foreign_keys == []
        assert database.table("T0").num_rows == 10
