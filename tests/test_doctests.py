"""Tier-1 doctest wiring for the key public entry points.

The docstring examples on :class:`~repro.discovery.engine.Prism`,
:class:`~repro.constraints.spec.MappingSpec`,
:class:`~repro.service.ArtifactStore` and
:class:`~repro.service.DiscoveryService` double as the documentation's
quickstart snippets (see ``docs/``); this module executes them on every
test run so they can never drift from the API.  CI additionally runs the
same modules through ``pytest --doctest-modules`` in the ``docs`` job.
"""

from __future__ import annotations

import doctest

import pytest

import repro.constraints.spec
import repro.discovery.engine
import repro.service.artifacts
import repro.service.service

DOCTESTED_MODULES = [
    repro.constraints.spec,
    repro.discovery.engine,
    repro.service.artifacts,
    repro.service.service,
]


@pytest.mark.parametrize(
    "module", DOCTESTED_MODULES, ids=lambda module: module.__name__
)
def test_module_doctests_pass(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module.__name__}"
    )
    # Each of these modules is required to carry runnable examples; a
    # zero here means the docstring example was deleted, not that it
    # passed.
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
