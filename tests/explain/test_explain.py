"""Unit tests for query explanation graphs and renderers."""

from __future__ import annotations

import json

import pytest

from repro.constraints.parser import parse_metadata_constraint, parse_value_constraint
from repro.constraints.spec import MappingSpec
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.explain.graph import (
    NODE_ATTRIBUTE,
    NODE_CONSTRAINT,
    NODE_RELATION,
    QueryGraph,
)
from repro.explain.render import to_ascii, to_dict, to_dot, to_json
from repro.query.pj_query import ProjectJoinQuery


@pytest.fixture()
def lake_query() -> ProjectJoinQuery:
    return ProjectJoinQuery(
        (
            ColumnRef("geo_lake", "Province"),
            ColumnRef("Lake", "Name"),
            ColumnRef("Lake", "Area"),
        ),
        (ForeignKey("geo_lake", "Lake", "Lake", "Name"),),
    )


@pytest.fixture()
def lake_spec() -> MappingSpec:
    spec = MappingSpec(3)
    spec.add_sample_cells(
        [
            parse_value_constraint("California || Nevada"),
            parse_value_constraint("Lake Tahoe"),
            None,
        ]
    )
    spec.set_metadata(
        2, parse_metadata_constraint("DataType=='decimal' AND MinValue>=0")
    )
    return spec


class TestQueryGraph:
    def test_relations_and_attributes_match_paper_colors(self, lake_query):
        graph = QueryGraph.from_query(lake_query)
        assert len(graph.relation_nodes) == 2
        assert len(graph.attribute_nodes) == 3
        for node in graph.relation_nodes:
            assert graph.graph.nodes[node]["color"] == "orange"
            assert graph.graph.nodes[node]["shape"] == "box"
        for node in graph.attribute_nodes:
            assert graph.graph.nodes[node]["color"] == "green"
            assert graph.graph.nodes[node]["shape"] == "ellipse"

    def test_join_edges_connect_relations(self, lake_query):
        graph = QueryGraph.from_query(lake_query)
        edges = graph.join_edges()
        assert len(edges) == 1
        left, right = edges[0]
        assert {graph.graph.nodes[left]["label"], graph.graph.nodes[right]["label"]} == {
            "Lake",
            "geo_lake",
        }

    def test_constraints_attach_to_their_attributes(self, lake_query, lake_spec):
        graph = QueryGraph.from_query(lake_query, spec=lake_spec)
        constraint_nodes = graph.constraint_nodes
        assert len(constraint_nodes) == 3  # two sample cells + one metadata
        for node in constraint_nodes:
            assert graph.graph.nodes[node]["color"] == "blue"
            neighbors = list(graph.graph.neighbors(node))
            assert len(neighbors) == 1
            assert graph.graph.nodes[neighbors[0]]["kind"] == NODE_ATTRIBUTE

    def test_constraint_positions_can_be_restricted(self, lake_query, lake_spec):
        graph = QueryGraph.from_query(
            lake_query, spec=lake_spec, constraint_positions=[1]
        )
        assert len(graph.constraint_nodes) == 1
        only = graph.constraint_nodes[0]
        assert graph.graph.nodes[only]["label"] == "Lake Tahoe"

    def test_no_spec_means_no_constraint_nodes(self, lake_query):
        graph = QueryGraph.from_query(lake_query)
        assert graph.constraint_nodes == []

    def test_nodes_of_kind(self, lake_query):
        graph = QueryGraph.from_query(lake_query)
        assert set(graph.nodes_of_kind(NODE_RELATION)) == set(graph.relation_nodes)
        assert graph.nodes_of_kind(NODE_CONSTRAINT) == []


class TestRenderers:
    def test_dot_output_contains_all_nodes_and_styles(self, lake_query, lake_spec):
        dot = to_dot(QueryGraph.from_query(lake_query, spec=lake_spec))
        assert dot.startswith("graph")
        assert dot.rstrip().endswith("}")
        assert "orange" in dot and "palegreen" in dot and "lightblue" in dot
        assert "Lake Tahoe" in dot
        assert "geo_lake.Lake = Lake.Name" in dot

    def test_ascii_output_mentions_query_and_constraints(self, lake_query, lake_spec):
        text = to_ascii(QueryGraph.from_query(lake_query, spec=lake_spec))
        assert "SELECT geo_lake.Province, Lake.Name, Lake.Area" in text
        assert "constraints:" in text
        assert "California || Nevada" in text
        assert "satisfied at" in text

    def test_dict_output_is_json_serialisable(self, lake_query, lake_spec):
        data = to_dict(QueryGraph.from_query(lake_query, spec=lake_spec))
        payload = json.loads(to_json(QueryGraph.from_query(lake_query, spec=lake_spec)))
        assert payload["sql"] == data["sql"]
        assert len(data["nodes"]) == 2 + 3 + 3
        kinds = {node["kind"] for node in data["nodes"]}
        assert kinds == {NODE_RELATION, NODE_ATTRIBUTE, NODE_CONSTRAINT}

    def test_quotes_in_labels_are_escaped_in_dot(self):
        query = ProjectJoinQuery((ColumnRef("T", 'weird"col'),))
        dot = to_dot(QueryGraph.from_query(query))
        assert '\\"' in dot
