"""Unit tests for the Project-Join query model."""

from __future__ import annotations

import pytest

from repro.dataset.schema import ColumnRef, ForeignKey
from repro.errors import QueryError
from repro.query.pj_query import ProjectJoinQuery


EMP_DEPT = ForeignKey("Employee", "Department", "Department", "Name")
ASSIGN_EMP = ForeignKey("Assignment", "EmployeeId", "Employee", "Id")
ASSIGN_PROJ = ForeignKey("Assignment", "ProjectCode", "Project", "Code")


def single_table_query() -> ProjectJoinQuery:
    return ProjectJoinQuery((ColumnRef("Employee", "Name"),))


def two_table_query() -> ProjectJoinQuery:
    return ProjectJoinQuery(
        (ColumnRef("Department", "City"), ColumnRef("Employee", "Name")),
        (EMP_DEPT,),
    )


def four_table_query() -> ProjectJoinQuery:
    return ProjectJoinQuery(
        (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
        (EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ),
    )


class TestStructure:
    def test_requires_projections(self):
        with pytest.raises(QueryError):
            ProjectJoinQuery(())

    def test_tables_union_of_projections_and_joins(self):
        query = four_table_query()
        assert query.tables == frozenset(
            {"Department", "Employee", "Assignment", "Project"}
        )

    def test_width_and_join_size(self):
        assert single_table_query().width == 1
        assert single_table_query().join_size == 0
        assert four_table_query().join_size == 3

    def test_projection_positions(self):
        query = two_table_query()
        assert query.projection_positions("Employee") == [1]
        assert query.projection_positions("Department") == [0]
        assert query.projection_positions("Project") == []


class TestTreeValidation:
    def test_single_table_is_tree(self):
        assert single_table_query().is_tree()

    def test_two_projections_without_join_is_not_tree(self):
        query = ProjectJoinQuery(
            (ColumnRef("Employee", "Name"), ColumnRef("Department", "City"))
        )
        assert not query.is_tree()

    def test_chain_is_tree(self):
        assert four_table_query().is_tree()

    def test_cycle_is_not_tree(self):
        duplicate = ForeignKey("Employee", "Department", "Department", "Capital")
        query = ProjectJoinQuery(
            (ColumnRef("Employee", "Name"),), (EMP_DEPT, duplicate)
        )
        assert not query.is_tree()

    def test_validate_against_database(self, company_db):
        two_table_query().validate(company_db)
        four_table_query().validate(company_db)

    def test_validate_rejects_unknown_column(self, company_db):
        query = ProjectJoinQuery((ColumnRef("Employee", "Ghost"),))
        with pytest.raises(QueryError):
            query.validate(company_db)

    def test_validate_rejects_unknown_join_column(self, company_db):
        bad_edge = ForeignKey("Employee", "Ghost", "Department", "Name")
        query = ProjectJoinQuery((ColumnRef("Employee", "Name"),), (bad_edge,))
        with pytest.raises(QueryError):
            query.validate(company_db)

    def test_validate_rejects_projection_outside_join_tree(self, company_db):
        query = ProjectJoinQuery(
            (ColumnRef("Project", "Title"), ColumnRef("Employee", "Name")),
            (EMP_DEPT,),
        )
        with pytest.raises(QueryError):
            query.validate(company_db)


class TestDerivation:
    def test_subquery_restricts_tables_and_projections(self):
        query = four_table_query()
        sub = query.subquery({"Department", "Employee"})
        assert sub.projections == (ColumnRef("Department", "Name"),)
        assert sub.joins == (EMP_DEPT,)

    def test_subquery_with_explicit_positions(self):
        query = two_table_query()
        sub = query.subquery({"Employee", "Department"}, positions=[1])
        assert sub.projections == (ColumnRef("Employee", "Name"),)

    def test_subquery_without_projection_raises(self):
        query = two_table_query()
        with pytest.raises(QueryError):
            query.subquery({"Assignment"})

    def test_signature_ignores_join_order(self):
        first = ProjectJoinQuery(
            (ColumnRef("Department", "Name"),), (EMP_DEPT, ASSIGN_EMP)
        )
        second = ProjectJoinQuery(
            (ColumnRef("Department", "Name"),), (ASSIGN_EMP, EMP_DEPT)
        )
        assert first.signature() == second.signature()

    def test_signature_distinguishes_projection_order(self):
        first = ProjectJoinQuery(
            (ColumnRef("Department", "City"), ColumnRef("Employee", "Name")),
            (EMP_DEPT,),
        )
        second = ProjectJoinQuery(
            (ColumnRef("Employee", "Name"), ColumnRef("Department", "City")),
            (EMP_DEPT,),
        )
        assert first.signature() != second.signature()

    def test_str_is_sql(self):
        assert str(single_table_query()).startswith("SELECT Employee.Name")
