"""Unit tests for the hash-join executor."""

from __future__ import annotations

import pytest

from repro.dataset import Column, Database, DataType
from repro.dataset.schema import ColumnRef, ForeignKey
from repro.errors import QueryError
from repro.query.executor import Executor
from repro.query.pj_query import ProjectJoinQuery


EMP_DEPT = ForeignKey("Employee", "Department", "Department", "Name")
ASSIGN_EMP = ForeignKey("Assignment", "EmployeeId", "Employee", "Id")
ASSIGN_PROJ = ForeignKey("Assignment", "ProjectCode", "Project", "Code")


@pytest.fixture()
def executor(company_db):
    return Executor(company_db)


class TestSingleTable:
    def test_projection(self, executor):
        query = ProjectJoinQuery((ColumnRef("Department", "City"),))
        rows = executor.execute(query)
        assert sorted(rows) == [
            ("Ann Arbor",), ("Ann Arbor",), ("Chicago",), ("Detroit",),
        ]

    def test_multi_column_projection_preserves_order(self, executor):
        query = ProjectJoinQuery(
            (ColumnRef("Employee", "Salary"), ColumnRef("Employee", "Name"))
        )
        rows = executor.execute(query)
        assert (120_000.0, "Alice Chen") in rows

    def test_limit(self, executor):
        query = ProjectJoinQuery((ColumnRef("Employee", "Name"),))
        assert len(executor.execute(query, limit=2)) == 2

    def test_count(self, executor):
        query = ProjectJoinQuery((ColumnRef("Assignment", "Hours"),))
        assert executor.count(query) == 7


class TestJoins:
    def test_two_table_join(self, executor):
        query = ProjectJoinQuery(
            (ColumnRef("Department", "City"), ColumnRef("Employee", "Name")),
            (EMP_DEPT,),
        )
        rows = executor.execute(query)
        assert ("Ann Arbor", "Alice Chen") in rows
        assert ("Detroit", "Carol Evans") in rows
        assert len(rows) == 6  # every employee joins exactly one department

    def test_chain_join_across_four_tables(self, executor):
        query = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ),
        )
        rows = executor.execute(query)
        assert ("Engineering", "Query Optimizer") in rows
        assert ("Research", "Schema Mapping") in rows
        assert ("Marketing", "Query Optimizer") not in rows
        assert len(rows) == 7  # one row per assignment

    def test_join_order_is_irrelevant(self, executor):
        forward = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ),
        )
        backward = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (ASSIGN_PROJ, ASSIGN_EMP, EMP_DEPT),
        )
        assert sorted(executor.execute(forward)) == sorted(executor.execute(backward))

    def test_null_join_keys_never_match(self):
        database = Database("nulljoin")
        left = database.create_table(
            "L", [Column("k", DataType.TEXT), Column("v", DataType.INT)]
        )
        right = database.create_table(
            "R", [Column("k", DataType.TEXT), Column("w", DataType.INT)]
        )
        left.insert_many([("a", 1), (None, 2)])
        right.insert_many([("a", 10), (None, 20)])
        database.link("L.k", "R.k")
        query = ProjectJoinQuery(
            (ColumnRef("L", "v"), ColumnRef("R", "w")),
            (ForeignKey("L", "k", "R", "k"),),
        )
        rows = Executor(database).execute(query)
        assert rows == [(1, 10)]

    def test_empty_join_result(self, executor):
        # Sales has an employee but that employee's only assignment joins a
        # project; restrict via predicate to force an empty result instead.
        query = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ),
        )
        rows = executor.execute(
            query,
            cell_predicates={0: lambda v: v == "Marketing", 1: lambda v: v == "Field Outreach"},
        )
        assert rows == []


class TestPredicates:
    def test_predicate_pushdown_filters_results(self, executor):
        query = ProjectJoinQuery(
            (ColumnRef("Department", "City"), ColumnRef("Employee", "Name")),
            (EMP_DEPT,),
        )
        rows = executor.execute(query, cell_predicates={0: lambda v: v == "Ann Arbor"})
        assert len(rows) == 4
        assert all(city == "Ann Arbor" for city, __ in rows)

    def test_exists_short_circuits(self, executor):
        query = ProjectJoinQuery(
            (ColumnRef("Department", "Name"), ColumnRef("Project", "Title")),
            (EMP_DEPT, ASSIGN_EMP, ASSIGN_PROJ),
        )
        assert executor.exists(
            query, cell_predicates={1: lambda v: v == "Schema Mapping"}
        )
        assert not executor.exists(
            query, cell_predicates={1: lambda v: v == "No Such Project"}
        )

    def test_predicates_on_same_table_combine_with_and(self, executor):
        query = ProjectJoinQuery(
            (ColumnRef("Employee", "Name"), ColumnRef("Employee", "Age"))
        )
        rows = executor.execute(
            query,
            cell_predicates={0: lambda v: "Alice" in v, 1: lambda v: v > 40},
        )
        assert rows == []

    def test_out_of_range_predicate_position_raises(self, executor):
        query = ProjectJoinQuery((ColumnRef("Employee", "Name"),))
        with pytest.raises(QueryError):
            executor.execute(query, cell_predicates={3: lambda v: True})

    def test_predicates_never_match_null_cells(self):
        database = Database("nullpred")
        table = database.create_table(
            "T", [Column("a", DataType.TEXT), Column("b", DataType.INT)]
        )
        table.insert_many([("x", None), ("y", 5)])
        query = ProjectJoinQuery((ColumnRef("T", "a"), ColumnRef("T", "b")))
        rows = Executor(database).execute(
            query, cell_predicates={1: lambda v: True}
        )
        assert rows == [("y", 5)]


class TestStats:
    def test_stats_accumulate(self, executor):
        query = ProjectJoinQuery((ColumnRef("Employee", "Name"),))
        executor.execute(query)
        executor.execute(query)
        assert executor.stats.queries_executed == 2
        assert executor.stats.rows_emitted == 12
        assert executor.stats.rows_scanned >= 12

    def test_stats_merge(self, executor):
        from repro.query.executor import ExecutionStats

        other = ExecutionStats(queries_executed=3, rows_scanned=10,
                               rows_emitted=5, joins_performed=2)
        executor.stats.merge(other)
        assert executor.stats.queries_executed == 3
        assert executor.stats.joins_performed == 2

    def test_validate_is_enforced(self, executor):
        query = ProjectJoinQuery((ColumnRef("Ghost", "x"),))
        with pytest.raises(Exception):
            executor.execute(query)
